"""HDR-style log-bucketed histograms for latency recording.

A :class:`LogHistogram` records non-negative durations into
fixed-relative-precision buckets: values are quantized to integer
microsecond *ticks*, and each power-of-two octave of the tick range is
split into ``2**precision`` equal sub-buckets. That gives

- O(1) ``record`` with no allocation on the hot path (a list index
  bump), cheap enough to sit inside the server's batch dispatch;
- a guaranteed relative quantization error of at most ``2**-precision``
  for any percentile query (plus the 1 us tick floor);
- exact mergeability - the bucket layout depends only on ``precision``,
  so histograms recorded in different worker processes merge by
  element-wise addition and the merged percentiles are exactly the
  percentiles of the union of the recorded values (up to the same
  bucket quantization). This is what lets the coordinator aggregate
  per-partition latency into service-level p50/p99/p999.

Ticks below ``2**(precision + 1)`` are stored exactly (one bucket per
tick); above that, a tick with highest set bit ``e`` lands in octave
``e - precision`` at sub-bucket ``(ticks >> (e - precision)) -
2**precision``. Buckets therefore never span an octave boundary, which
the Prometheus exporter relies on to emit exact cumulative counts at
power-of-two ``le`` edges.
"""

from __future__ import annotations

from typing import Any, Iterator

__all__ = ["LogHistogram"]

_TICKS_PER_SECOND = 1_000_000


class LogHistogram:
    """Log-linear histogram of durations in seconds.

    ``precision`` trades memory for accuracy: ``2**precision``
    sub-buckets per octave bound the relative error of any percentile
    at ``2**-precision`` (default 5 -> ~3.1%, ~1.2k buckets across 12
    days of microsecond range, grown lazily).
    """

    __slots__ = ("precision", "counts", "count", "sum_ticks", "max_tick")

    def __init__(self, precision: int = 5) -> None:
        if not 0 <= precision <= 12:
            raise ValueError(
                f"precision must be in [0, 12], got {precision}"
            )
        self.precision = precision
        self.counts: list[int] = []
        self.count = 0
        self.sum_ticks = 0
        self.max_tick = 0

    # -- recording ---------------------------------------------------------

    def record(self, seconds: float) -> None:
        """Record one duration (negative values clamp to zero)."""
        ticks = int(seconds * _TICKS_PER_SECOND)
        self.record_ticks(ticks if ticks > 0 else 0)

    def record_ticks(self, ticks: int, n: int = 1) -> None:
        """Record ``n`` occurrences of an integer microsecond value."""
        index = self._index_of(ticks)
        counts = self.counts
        if index >= len(counts):
            counts.extend([0] * (index + 1 - len(counts)))
        counts[index] += n
        self.count += n
        self.sum_ticks += ticks * n
        if ticks > self.max_tick:
            self.max_tick = ticks

    def _index_of(self, ticks: int) -> int:
        p = self.precision
        if ticks < 2 << p:  # exact region: one bucket per tick
            return ticks
        e = ticks.bit_length() - 1
        octave = e - p  # >= 1 here
        sub = (ticks >> octave) - (1 << p)
        return (2 << p) + ((octave - 1) << p) + sub

    def _bucket_bounds_ticks(self, index: int) -> tuple[int, int]:
        """Inclusive-lower / exclusive-upper tick range of a bucket."""
        p = self.precision
        if index < 2 << p:
            return index, index + 1
        rel = index - (2 << p)
        octave = (rel >> p) + 1
        sub = (1 << p) + (rel & ((1 << p) - 1))
        return sub << octave, (sub + 1) << octave

    # -- queries -----------------------------------------------------------

    @property
    def sum(self) -> float:
        """Total recorded time in seconds."""
        return self.sum_ticks / _TICKS_PER_SECOND

    @property
    def mean(self) -> float:
        if not self.count:
            return 0.0
        return self.sum_ticks / self.count / _TICKS_PER_SECOND

    @property
    def max(self) -> float:
        return self.max_tick / _TICKS_PER_SECOND

    def percentile(self, q: float) -> float:
        """Quantile ``q`` in [0, 1], in seconds.

        Returns the upper edge of the bucket holding the q-th recorded
        value (conservative: true value <= result <= true value *
        ``(1 + 2**-precision)`` plus the 1 us tick floor). Zero when
        nothing has been recorded.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        # Rank of the target value, 1-based ceil: q=0 -> first value.
        rank = max(1, -(-self.count * q // 1))
        seen = 0
        for index, n in enumerate(self.counts):
            if not n:
                continue
            seen += n
            if seen >= rank:
                hi = self._bucket_bounds_ticks(index)[1]
                # Never report past the recorded maximum.
                return min(hi - 1, self.max_tick) / _TICKS_PER_SECOND
        return self.max  # pragma: no cover - defensive
    def percentiles(self, qs: "list[float] | tuple[float, ...]") -> list[float]:
        return [self.percentile(q) for q in qs]

    def iter_buckets(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(lo_ticks, hi_ticks, count)`` for non-empty buckets."""
        for index, n in enumerate(self.counts):
            if n:
                lo, hi = self._bucket_bounds_ticks(index)
                yield lo, hi, n

    def cumulative_ticks(self, edges: "list[int]") -> list[int]:
        """Cumulative counts at inclusive tick upper-bounds.

        ``edges`` must be ascending. Exact whenever every edge + 1 is a
        bucket boundary; power-of-two-minus-one edges (the Prometheus
        exporter's ladder) always are. A bucket straddling an edge is
        attributed below it.
        """
        out = []
        total = 0
        buckets = self.iter_buckets()
        pending: "tuple[int, int, int] | None" = next(buckets, None)
        for edge in edges:
            while pending is not None and pending[0] <= edge:
                total += pending[2]
                pending = next(buckets, None)
            out.append(total)
        return out

    # -- merge / serialization ---------------------------------------------

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Element-wise add ``other`` into this histogram (same precision)."""
        if other.precision != self.precision:
            raise ValueError(
                f"cannot merge precision {other.precision} into "
                f"{self.precision}"
            )
        counts = self.counts
        if len(other.counts) > len(counts):
            counts.extend([0] * (len(other.counts) - len(counts)))
        for index, n in enumerate(other.counts):
            if n:
                counts[index] += n
        self.count += other.count
        self.sum_ticks += other.sum_ticks
        if other.max_tick > self.max_tick:
            self.max_tick = other.max_tick
        return self

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe sparse snapshot (wire format for W_STATS)."""
        return {
            "precision": self.precision,
            "count": self.count,
            "sum_ticks": self.sum_ticks,
            "max_tick": self.max_tick,
            "buckets": {
                str(index): n
                for index, n in enumerate(self.counts)
                if n
            },
        }

    @classmethod
    def from_snapshot(cls, data: dict[str, Any]) -> "LogHistogram":
        hist = cls(precision=int(data["precision"]))
        buckets = data.get("buckets", {})
        if buckets:
            top = max(int(k) for k in buckets)
            hist.counts = [0] * (top + 1)
            for key, n in buckets.items():
                hist.counts[int(key)] = int(n)
        hist.count = int(data["count"])
        hist.sum_ticks = int(data["sum_ticks"])
        hist.max_tick = int(data["max_tick"])
        return hist

    @classmethod
    def merged(
        cls, snapshots: "list[dict[str, Any]]", precision: int = 5
    ) -> "LogHistogram":
        """Merge wire snapshots (e.g. one per partition) into one."""
        out: "LogHistogram | None" = None
        for snap in snapshots:
            hist = cls.from_snapshot(snap)
            out = hist if out is None else out.merge(hist)
        return out if out is not None else cls(precision=precision)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogHistogram(precision={self.precision}, count={self.count}, "
            f"mean={self.mean:.6f}s, max={self.max:.6f}s)"
        )
