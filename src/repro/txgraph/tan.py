"""The TaN online DAG.

Nodes arrive one at a time carrying their input edges; edges always point
from the new node ``u`` to earlier nodes ``v`` (``u`` spends an output of
``v``). Following the paper's notation:

- ``Nin(u)``  - *input transactions* of ``u``: the targets of ``u``'s
  outgoing edges (the transactions ``u`` spends from).
- ``Nout(v)`` - *output transactions* of ``v``: the sources of edges into
  ``v`` (the transactions spending ``v``'s outputs). ``|Nout(v)|`` grows
  over time as spenders arrive; the T2S recurrence divides by it.

The structure is optimized for the two access patterns that dominate the
reproduction: appending a node with its edges (dataset replay) and reading
``Nin``/``Nout`` of a recent node (T2S scoring). Node ids must be dense
integers in arrival order - the invariant the paper leans on ("the order
of appearance of transactions ... exactly reflects the topological
order"), enforced here so everything downstream can index by txid.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import CycleError, DuplicateNodeError, MissingNodeError
from repro.utxo.transaction import Transaction, TxId


class TaNGraph:
    """Online Transactions-as-Nodes DAG with dense integer node ids."""

    def __init__(self) -> None:
        # _inputs[u] = tuple of v with edge (u, v): u spends from v.
        self._inputs: list[tuple[TxId, ...]] = []
        # _spenders[v] = list of u with edge (u, v), in arrival order.
        self._spenders: list[list[TxId]] = []

    # -- construction ----------------------------------------------------

    def add_node(self, txid: TxId, input_txids: Sequence[TxId]) -> None:
        """Append node ``txid`` with edges to each id in ``input_txids``.

        ``txid`` must equal the current node count (dense arrival order);
        every input id must already be present (DAG property). Duplicate
        input ids are collapsed - multiple outputs of the same parent
        spent by one transaction form a single TaN edge, matching the
        paper's graph construction.
        """
        expected = len(self._inputs)
        if txid < expected:
            raise DuplicateNodeError(
                f"node {txid} already present (next id is {expected})"
            )
        if txid > expected:
            raise MissingNodeError(
                f"node ids must be dense and in arrival order: got {txid}, "
                f"expected {expected}"
            )
        unique: dict[TxId, None] = {}
        for parent in input_txids:
            if parent >= txid:
                raise CycleError(
                    f"node {txid} cannot depend on non-earlier node {parent}"
                )
            if parent < 0:
                raise MissingNodeError(f"negative input txid {parent}")
            unique.setdefault(parent, None)
        parents = tuple(unique)
        self._inputs.append(parents)
        self._spenders.append([])
        for parent in parents:
            self._spenders[parent].append(txid)

    def add_transaction(self, tx: Transaction) -> None:
        """Append a node for ``tx`` using its distinct input txids."""
        self.add_node(tx.txid, tx.input_txids)

    @classmethod
    def from_transactions(cls, txs: Iterable[Transaction]) -> "TaNGraph":
        """Build a graph from a full transaction stream."""
        graph = cls()
        for tx in txs:
            graph.add_transaction(tx)
        return graph

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._inputs)

    def __contains__(self, txid: TxId) -> bool:
        return 0 <= txid < len(self._inputs)

    @property
    def n_nodes(self) -> int:
        """Number of transactions in the graph."""
        return len(self._inputs)

    @property
    def n_edges(self) -> int:
        """Number of distinct (spender, parent) edges."""
        return sum(len(parents) for parents in self._inputs)

    def inputs_of(self, txid: TxId) -> tuple[TxId, ...]:
        """``Nin(u)``: transactions ``txid`` spends from."""
        self._require(txid)
        return self._inputs[txid]

    def spenders_of(self, txid: TxId) -> tuple[TxId, ...]:
        """``Nout(v)``: transactions spending ``txid``'s outputs so far."""
        self._require(txid)
        return tuple(self._spenders[txid])

    def in_degree(self, txid: TxId) -> int:
        """``|Nin(u)|``: number of distinct parent transactions."""
        self._require(txid)
        return len(self._inputs[txid])

    def out_degree(self, txid: TxId) -> int:
        """``|Nout(v)|``: number of spender transactions observed so far."""
        self._require(txid)
        return len(self._spenders[txid])

    def is_coinbase(self, txid: TxId) -> bool:
        """True when the node has no parents (coinbase transaction)."""
        return not self.inputs_of(txid)

    def nodes(self) -> range:
        """All node ids in arrival (= topological) order."""
        return range(len(self._inputs))

    def edges(self) -> Iterator[tuple[TxId, TxId]]:
        """Iterate ``(u, v)`` edges: ``u`` spends from ``v``."""
        for u, parents in enumerate(self._inputs):
            for v in parents:
                yield (u, v)

    def coinbase_nodes(self) -> list[TxId]:
        """All nodes without parents."""
        return [u for u, parents in enumerate(self._inputs) if not parents]

    def unspent_frontier(self) -> list[TxId]:
        """Nodes with no spenders yet (txs whose outputs are all unspent,
        in TaN terms: no incoming edges)."""
        return [v for v, spenders in enumerate(self._spenders) if not spenders]

    def undirected_neighbors(self, txid: TxId) -> list[TxId]:
        """Parents and spenders combined - used by offline partitioners,
        which treat the TaN as an undirected graph."""
        self._require(txid)
        return list(self._inputs[txid]) + self._spenders[txid]

    def _require(self, txid: TxId) -> None:
        if not 0 <= txid < len(self._inputs):
            raise MissingNodeError(
                f"node {txid} not in graph of {len(self._inputs)} nodes"
            )
