"""Transaction workloads: synthetic generation and file IO.

The paper evaluates on the first 10M transactions of the MIT Bitcoin
dataset. That dataset is not redistributable here, so
:mod:`repro.datasets.synthetic` generates a Bitcoin-like stream matching
the TaN statistics the paper reports (power-law degrees averaging about
2.3, coinbase cadence, wallet locality); see DESIGN.md §4 for the
substitution rationale. :mod:`repro.datasets.io` reads and writes streams
in a simple edge-list format compatible with the MIT dump layout, so real
data can be dropped in unchanged.
"""

from repro.datasets.account_model import (
    AccountModelConfig,
    AccountModelGenerator,
    account_model_stream,
)
from repro.datasets.io import (
    load_edge_list,
    load_stream_jsonl,
    save_edge_list,
    save_stream_jsonl,
)
from repro.datasets.replay import chunk_stream, round_robin_chunks
from repro.datasets.synthetic import (
    BitcoinLikeGenerator,
    GeneratorConfig,
    synthetic_stream,
)
from repro.datasets.wallets import WalletModel

__all__ = [
    "AccountModelConfig",
    "AccountModelGenerator",
    "BitcoinLikeGenerator",
    "GeneratorConfig",
    "WalletModel",
    "account_model_stream",
    "chunk_stream",
    "round_robin_chunks",
    "load_edge_list",
    "load_stream_jsonl",
    "save_edge_list",
    "save_stream_jsonl",
    "synthetic_stream",
]
