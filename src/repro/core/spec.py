"""The strategy-spec language: one parsed description of a placer.

A spec names a strategy plus its strategy-level options in a single
string, e.g.::

    optchain
    optchain-topk:cap=4
    optchain-topk:cap=auto:0.01,backend=numpy
    optchain:backend=auto

Grammar: ``<method>[:<key>=<value>[,<key>=<value>...]]``. Known keys:

``cap``
    Bounded-support cap for the top-k strategies (``optchain-topk``,
    ``t2s-topk``): a positive integer or the adaptive form
    ``auto:<rate>`` (:func:`repro.core.scorer.parse_support_cap`).
``backend``
    Execution backend: ``python`` (the golden reference, default),
    ``numpy`` (typed-array state + compiled kernel,
    :mod:`repro.core.backends`), or ``auto`` (numpy when available for
    the method, python otherwise).

Every surface that names a strategy - the CLI, the experiments runner,
snapshot headers, engine stats, the sharded service's worker specs -
goes through this one type, so a spec string observed anywhere can be
fed back to :func:`repro.core.placement.make_placer` and reproduce the
same configuration. ``str(spec)`` is canonical and round-trips through
:meth:`StrategySpec.parse`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.errors import ConfigurationError

#: Strategies that accept a support cap.
TOPK_METHODS = frozenset({"optchain-topk", "t2s-topk"})

#: Strategies with a numpy backend implementation.
NUMPY_METHODS = frozenset({"optchain", "optchain-topk"})

BACKENDS = ("auto", "python", "numpy")

_KNOWN_KEYS = ("backend", "cap")


@dataclass(frozen=True)
class StrategySpec:
    """Parsed placement-strategy description (method, cap, backend)."""

    method: str
    cap: "int | str | None" = None
    backend: str = "auto"

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "StrategySpec":
        """Parse a spec string; raises ``ConfigurationError`` on errors."""
        if not isinstance(text, str) or not text.strip():
            raise ConfigurationError(f"empty strategy spec {text!r}")
        method, _, opts = text.strip().partition(":")
        if not method:
            raise ConfigurationError(f"strategy spec {text!r} has no method")
        cap: "int | str | None" = None
        backend = "auto"
        if opts:
            for item in opts.split(","):
                key, sep, value = item.partition("=")
                key = key.strip()
                value = value.strip()
                if not sep or not value:
                    raise ConfigurationError(
                        f"malformed spec option {item!r} in {text!r} "
                        f"(expected key=value)"
                    )
                if key == "cap":
                    cap = cls._parse_cap(value)
                elif key == "backend":
                    backend = value
                else:
                    known = ", ".join(_KNOWN_KEYS)
                    raise ConfigurationError(
                        f"unknown spec option {key!r} in {text!r}; "
                        f"known: {known}"
                    )
        spec = cls(method=method, cap=cap, backend=backend)
        spec.validate()
        return spec

    @staticmethod
    def _parse_cap(value: str) -> "int | str":
        if value.startswith("auto:"):
            # Rate range-checked by parse_support_cap in validate().
            return value
        try:
            cap = int(value)
        except ValueError:
            raise ConfigurationError(
                f"support cap must be an integer or 'auto:<rate>', "
                f"got {value!r}"
            ) from None
        if cap < 1:
            raise ConfigurationError(
                f"support cap must be >= 1, got {cap}"
            )
        return cap

    def validate(self) -> None:
        """Check internal consistency; raises ``ConfigurationError``."""
        if self.backend not in BACKENDS:
            known = ", ".join(BACKENDS)
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; known: {known}"
            )
        if self.cap is not None:
            if self.method not in TOPK_METHODS:
                supported = ", ".join(sorted(TOPK_METHODS))
                raise ConfigurationError(
                    f"strategy {self.method!r} does not take a support "
                    f"cap (only {supported} do)"
                )
            from repro.core.scorer import parse_support_cap

            mode, value = parse_support_cap(self.cap)
            if mode == "fixed" and value < 1:
                raise ConfigurationError(
                    f"support cap must be >= 1, got {value}"
                )

    # -- derivation --------------------------------------------------------

    def with_cap(self, cap: "int | str | None") -> "StrategySpec":
        """Copy with a different support cap."""
        spec = replace(self, cap=cap)
        spec.validate()
        return spec

    def with_backend(self, backend: str) -> "StrategySpec":
        """Copy with a different backend."""
        spec = replace(self, backend=backend)
        spec.validate()
        return spec

    @classmethod
    def of_placer(cls, placer) -> "StrategySpec":
        """Canonical spec of a live placer instance.

        The reconstruction preserves the *configured* form: an adaptive
        cap reads back as ``auto:<rate>`` (not the currently grown
        value), so restoring from the spec reproduces the same future
        behavior.
        """
        from repro.core.t2s import AdaptiveTopKT2SScorer

        method = type(placer).name or type(placer).__name__
        cap: "int | str | None" = None
        if method in TOPK_METHODS:
            scorer = getattr(placer, "scorer", None)
            if isinstance(scorer, AdaptiveTopKT2SScorer):
                rate = scorer.target_rate
                cap = f"auto:{rate:g}"
            else:
                cap = getattr(placer, "support_cap", None)
        backend = getattr(placer, "backend", "python")
        return cls(method=method, cap=cap, backend=backend)

    # -- rendering ---------------------------------------------------------

    def __str__(self) -> str:
        parts = []
        if self.cap is not None:
            parts.append(f"cap={self.cap}")
        if self.backend != "auto":
            parts.append(f"backend={self.backend}")
        if parts:
            return f"{self.method}:{','.join(parts)}"
        return self.method

    # -- resolution --------------------------------------------------------

    def resolve_backend(self) -> str:
        """The concrete backend this spec runs on here (never ``auto``).

        ``auto`` resolves to numpy when numpy is importable and the
        method has a numpy implementation, else python. An explicit
        ``numpy`` raises when it cannot be honored - silently degrading
        an explicit request would make benchmarks lie.
        """
        from repro.core.backends import backend_unavailable_reason

        if self.backend == "python":
            return "python"
        if self.backend == "numpy":
            if self.method not in NUMPY_METHODS:
                supported = ", ".join(sorted(NUMPY_METHODS))
                raise ConfigurationError(
                    f"strategy {self.method!r} has no numpy backend "
                    f"(only {supported} do)"
                )
            reason = backend_unavailable_reason("numpy")
            if reason is not None:
                raise ConfigurationError(
                    f"backend 'numpy' is unavailable: {reason}"
                )
            return "numpy"
        # auto
        if (
            self.method in NUMPY_METHODS
            and backend_unavailable_reason("numpy") is None
        ):
            return "numpy"
        return "python"

    def build(self, n_shards: int, **kwargs: Any):
        """Construct the placer this spec describes.

        Extra keyword arguments pass through to the strategy
        constructor (``latency_provider``, ``support_window``, ...).
        """
        from repro.core.placement import PlacementStrategy

        if self.cap is not None:
            if "support_cap" in kwargs:
                raise ConfigurationError(
                    "support cap given both in the spec and as a keyword"
                )
            kwargs["support_cap"] = self.cap
        backend = self.resolve_backend()
        if backend == "numpy":
            from repro.core.backends.numpy_backend import (
                NumpyOptChainPlacer,
                NumpyTopKOptChainPlacer,
            )

            cls = {
                "optchain": NumpyOptChainPlacer,
                "optchain-topk": NumpyTopKOptChainPlacer,
            }[self.method]
            return cls(n_shards=n_shards, **kwargs)
        try:
            cls = PlacementStrategy.registry[self.method]
        except KeyError:
            known = ", ".join(sorted(PlacementStrategy.registry))
            raise ConfigurationError(
                f"unknown placement strategy {self.method!r}; "
                f"known: {known}"
            ) from None
        return cls(n_shards=n_shards, **kwargs)


def make_placer_from_spec(spec, n_shards: int, **kwargs: Any):
    """Build a placer from a spec string or :class:`StrategySpec`."""
    if isinstance(spec, str):
        spec = StrategySpec.parse(spec)
    return spec.build(n_shards, **kwargs)


__all__ = [
    "StrategySpec",
    "make_placer_from_spec",
    "TOPK_METHODS",
    "NUMPY_METHODS",
    "BACKENDS",
]
