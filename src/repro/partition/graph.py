"""Static weighted undirected graph for offline partitioning.

The multilevel partitioner works on an undirected, weighted view of the
TaN network: node weights count collapsed original vertices (so balance
constraints survive coarsening) and edge weights count collapsed parallel
edges (so heavy-edge matching prefers strongly connected clusters).

The representation is adjacency lists of ``(neighbor, weight)`` pairs -
simple, cache-friendly enough for the scales the reproduction targets,
and cheap to rebuild during coarsening.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import GraphError, MissingNodeError
from repro.txgraph.tan import TaNGraph


class StaticGraph:
    """Undirected weighted graph with integer node ids ``0..n-1``."""

    def __init__(self, n_nodes: int, node_weights: Sequence[int] | None = None):
        if n_nodes < 0:
            raise GraphError(f"n_nodes must be >= 0, got {n_nodes}")
        self._adj: list[list[tuple[int, int]]] = [[] for _ in range(n_nodes)]
        if node_weights is None:
            self._node_weights = [1] * n_nodes
        else:
            if len(node_weights) != n_nodes:
                raise GraphError(
                    f"{len(node_weights)} node weights for {n_nodes} nodes"
                )
            self._node_weights = list(node_weights)
        self._n_edges = 0

    # -- construction ----------------------------------------------------

    def add_edge(self, u: int, v: int, weight: int = 1) -> None:
        """Add an undirected edge; parallel edges merge their weights.

        Self-loops are ignored (they carry no cut information).
        """
        self._require(u)
        self._require(v)
        if u == v:
            return
        if weight <= 0:
            raise GraphError(f"edge weight must be > 0, got {weight}")
        for index, (neighbor, existing) in enumerate(self._adj[u]):
            if neighbor == v:
                self._adj[u][index] = (v, existing + weight)
                for jndex, (back, back_weight) in enumerate(self._adj[v]):
                    if back == u:
                        self._adj[v][jndex] = (u, back_weight + weight)
                        break
                return
        self._adj[u].append((v, weight))
        self._adj[v].append((u, weight))
        self._n_edges += 1

    @classmethod
    def from_tan(cls, tan: TaNGraph) -> "StaticGraph":
        """Undirected view of a TaN graph (unit node and edge weights)."""
        graph = cls(tan.n_nodes)
        for u, v in tan.edges():
            graph.add_edge(u, v)
        return graph

    @classmethod
    def from_edges(
        cls, n_nodes: int, edges: Iterable[tuple[int, int]]
    ) -> "StaticGraph":
        """Build from an edge iterable (test/experiment helper)."""
        graph = cls(n_nodes)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    # -- queries ---------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def n_edges(self) -> int:
        """Number of distinct undirected edges."""
        return self._n_edges

    @property
    def total_node_weight(self) -> int:
        """Sum of node weights (== original vertex count after coarsening)."""
        return sum(self._node_weights)

    def node_weight(self, u: int) -> int:
        """Weight of node ``u`` (collapsed original vertices)."""
        self._require(u)
        return self._node_weights[u]

    def neighbors(self, u: int) -> list[tuple[int, int]]:
        """List of ``(neighbor, edge_weight)`` pairs."""
        self._require(u)
        return self._adj[u]

    def degree(self, u: int) -> int:
        """Number of distinct neighbors."""
        self._require(u)
        return len(self._adj[u])

    def weighted_degree(self, u: int) -> int:
        """Total weight of incident edges."""
        self._require(u)
        return sum(weight for _, weight in self._adj[u])

    def edges(self) -> Iterable[tuple[int, int, int]]:
        """Iterate each undirected edge once as ``(u, v, weight)``."""
        for u, adj in enumerate(self._adj):
            for v, weight in adj:
                if u < v:
                    yield (u, v, weight)

    def _require(self, u: int) -> None:
        if not 0 <= u < len(self._adj):
            raise MissingNodeError(
                f"node {u} not in graph of {len(self._adj)} nodes"
            )
