"""Metric collection and the live latency observer.

:class:`MetricsCollector` records the raw series every figure of §V is
derived from: per-transaction issue/commit times (latency, throughput,
Fig. 5/8/9/10), periodic queue-size samples (Figs. 6/7), and per-shard
block statistics.

The per-commit hot path writes into preallocated ``array('d')`` slots
instead of growing dicts: workload generators assign dense integer
transaction ids (arrival order), so the engine passes ``txid_base`` and
every record becomes one bounds check plus one indexed store, with a NaN
sentinel standing in for "not recorded yet". Callers that construct a
collector directly with arbitrary (possibly sparse) ids - unit tests,
ad-hoc harnesses - omit ``txid_base`` and get the seed's dict-based
bookkeeping; both modes derive bit-identical series
(:class:`repro.simulator._seed_reference.SeedMetricsCollector` is the
golden reference).

:class:`LatencyObserver` is the bridge between the simulator and
OptChain's L2S score: it plays the role of the wallet software that
samples shard round trips and watches queue sizes (§IV-C), producing one
:class:`~repro.core.l2s.ShardLatencyModel` per shard on demand.
"""

from __future__ import annotations

from array import array
from typing import Sequence

from repro.core.l2s import ShardLatencyModel
from repro.errors import SimulationError
from repro.simulator.config import SimulationConfig
from repro.simulator.events import EventQueue
from repro.simulator.network import Network
from repro.simulator.shard import Shard

_NAN = float("nan")


class MetricsCollector:
    """Accumulates the raw measurement series of one simulation run."""

    __slots__ = (
        "n_transactions",
        "_base",
        "_clock",
        "_issue_arr",
        "_commit_arr",
        "_issue_time",
        "_commit_time",
        "_n_issued",
        "_n_committed",
        "_min_issue",
        "_max_commit",
        "_aborted",
        "queue_sample_times",
        "queue_samples",
    )

    def __init__(
        self,
        n_transactions: int,
        txid_base: int | None = None,
        clock: EventQueue | None = None,
    ) -> None:
        if n_transactions < 0:
            raise SimulationError(
                f"n_transactions must be >= 0, got {n_transactions}"
            )
        self.n_transactions = n_transactions
        self._base = txid_base
        self._clock = clock
        if txid_base is None:
            # Sparse ids: dict bookkeeping, the seed behaviour.
            self._issue_arr = None
            self._commit_arr = None
            self._issue_time: dict[int, float] = {}
            self._commit_time: dict[int, float] = {}
        else:
            # Dense ids [txid_base, txid_base + n): preallocated slots,
            # NaN = not recorded yet (0.0 is a legitimate timestamp).
            self._issue_arr = array("d", [_NAN]) * n_transactions
            self._commit_arr = array("d", [_NAN]) * n_transactions
            self._issue_time = None
            self._commit_time = None
        self._n_issued = 0
        self._n_committed = 0
        self._min_issue = _NAN
        self._max_commit = _NAN
        self._aborted: set[int] = set()
        self.queue_sample_times: list[float] = []
        self.queue_samples: list[list[int]] = []

    # -- recording ---------------------------------------------------------

    def record_issue(self, txid: int, time: float) -> None:
        """A client handed the transaction to the network."""
        arr = self._issue_arr
        if arr is not None:
            slot = txid - self._base
            if not 0 <= slot < self.n_transactions:
                raise SimulationError(
                    f"transaction {txid} outside the dense id range"
                )
            if arr[slot] == arr[slot]:  # not NaN: already recorded
                raise SimulationError(f"transaction {txid} issued twice")
            arr[slot] = time
        else:
            if txid in self._issue_time:
                raise SimulationError(f"transaction {txid} issued twice")
            self._issue_time[txid] = time
        self._n_issued += 1
        if not time >= self._min_issue:  # first record or a new minimum
            self._min_issue = time

    def record_commit(self, txid: int, time: float) -> None:
        """The transaction is confirmed on its output shard."""
        commits = self._commit_arr
        if commits is not None:
            slot = txid - self._base
            issues = self._issue_arr
            if (
                not 0 <= slot < self.n_transactions
                or issues[slot] != issues[slot]
            ):
                raise SimulationError(
                    f"transaction {txid} committed but never issued"
                )
            if commits[slot] == commits[slot]:
                raise SimulationError(f"transaction {txid} committed twice")
            commits[slot] = time
        else:
            if txid not in self._issue_time:
                raise SimulationError(
                    f"transaction {txid} committed but never issued"
                )
            if txid in self._commit_time:
                raise SimulationError(f"transaction {txid} committed twice")
            self._commit_time[txid] = time
        self._n_committed += 1
        if not time <= self._max_commit:  # first record or a new maximum
            self._max_commit = time

    def record_commit_now(self, txid: int) -> None:
        """Commit ``txid`` at the bound clock's current time.

        The protocol's per-commit hot path: one indexed store, no
        closure reading ``events.now`` through a property per commit.
        The dense branch duplicates :meth:`record_commit` to stay a
        single frame.
        """
        clock = self._clock
        if clock is None:
            raise SimulationError(
                "record_commit_now needs a clock (pass clock= at init)"
            )
        time = clock._now
        commits = self._commit_arr
        if commits is None:
            self.record_commit(txid, time)
            return
        slot = txid - self._base
        issues = self._issue_arr
        if (
            not 0 <= slot < self.n_transactions
            or issues[slot] != issues[slot]
        ):
            raise SimulationError(
                f"transaction {txid} committed but never issued"
            )
        if commits[slot] == commits[slot]:
            raise SimulationError(f"transaction {txid} committed twice")
        commits[slot] = time
        self._n_committed += 1
        if not time <= self._max_commit:  # first record or a new maximum
            self._max_commit = time

    def record_abort(self, txid: int) -> None:
        """The transaction was rejected (failure injection)."""
        self._aborted.add(txid)

    def record_queue_sample(self, time: float, sizes: list[int]) -> None:
        """Periodic snapshot of every shard's queue size."""
        self.queue_sample_times.append(time)
        self.queue_samples.append(sizes)

    # -- derived -----------------------------------------------------------

    @property
    def n_issued(self) -> int:
        """Transactions issued so far."""
        return self._n_issued

    @property
    def n_committed(self) -> int:
        """Transactions confirmed so far."""
        return self._n_committed

    @property
    def n_aborted(self) -> int:
        """Transactions aborted via proof-of-rejection."""
        return len(self._aborted)

    def is_complete(self) -> bool:
        """All issued transactions reached a terminal state."""
        return (
            self._n_issued == self.n_transactions
            and self._n_committed + self.n_aborted == self._n_issued
        )

    def latencies(self) -> list[float]:
        """Confirmation latency per committed transaction (issue order)."""
        commits = self._commit_arr
        if commits is not None:
            issues = self._issue_arr
            return [
                commit - issues[slot]
                for slot, commit in enumerate(commits)
                if commit == commit
            ]
        return [
            self._commit_time[txid] - self._issue_time[txid]
            for txid in sorted(self._commit_time)
        ]

    def commit_times(self) -> list[float]:
        """Commit timestamps, sorted (Fig. 5 input)."""
        commits = self._commit_arr
        if commits is not None:
            return sorted(time for time in commits if time == time)
        return sorted(self._commit_time.values())

    def throughput(self) -> float:
        """Committed transactions over the active time window."""
        if not self._n_committed:
            return 0.0
        start = self._min_issue
        end = self._max_commit
        if end <= start:
            return 0.0
        return self._n_committed / (end - start)

    def issue_time_of(self, txid: int) -> float:
        """Issue timestamp of one transaction."""
        arr = self._issue_arr
        if arr is not None:
            slot = txid - self._base
            if not 0 <= slot < self.n_transactions or arr[slot] != arr[slot]:
                raise KeyError(txid)
            return arr[slot]
        return self._issue_time[txid]


class LatencyObserver:
    """Wallet-side view of the shards, feeding OptChain's L2S score.

    ``lambda_c`` comes from the (static) expected client-shard one-way
    delay - what RTT sampling converges to. ``lambda_v`` is refreshed on
    every call from each shard's current queue size and recent block
    duration, exactly the estimate §IV-C prescribes.
    """

    def __init__(
        self,
        config: SimulationConfig,
        network: Network,
        shards: Sequence[Shard],
    ) -> None:
        self._shards = shards
        tx_bytes = 500
        self._comm_time = [
            network.propagation(Network.CLIENT, shard.shard_id)
            + tx_bytes / config.bandwidth_bytes_per_s
            for shard in shards
        ]
        self._totals_buf = [0.0] * len(shards)

    def __call__(self) -> list[ShardLatencyModel]:
        models = []
        for shard, comm_time in zip(self._shards, self._comm_time):
            verify_time = shard.expected_verification_time()
            models.append(
                ShardLatencyModel(
                    lambda_c=1.0 / comm_time,
                    lambda_v=1.0 / verify_time,
                )
            )
        return models

    def expected_totals(self) -> list[float]:
        """Per-shard expected confirmation totals, without model objects.

        Same numbers as ``[m.expected_total for m in self()]`` - the
        double inversions mirror how :class:`ShardLatencyModel` stores
        rates, so placements driven by this raw path are bit-identical to
        the model-object path - but with zero allocations: the buffer is
        reused across calls, which matters because OptChain's
        ``shard_load`` scoring reads it once per placed transaction.
        Callers must not hold on to the returned list.
        """
        buf = self._totals_buf
        for index, (shard, comm_time) in enumerate(
            zip(self._shards, self._comm_time)
        ):
            verify_time = shard.expected_verification_time()
            buf[index] = 1.0 / (1.0 / comm_time) + 1.0 / (1.0 / verify_time)
        return buf
