"""Tests for committee formation and epoch transitions."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.simulator.committees import (
    BFT_THRESHOLD,
    CommitteeAssignment,
    failure_probability_bound,
)


class TestValidation:
    def test_bad_shards(self):
        with pytest.raises(ConfigurationError):
            CommitteeAssignment(0, 10)

    def test_too_few_validators(self):
        with pytest.raises(ConfigurationError):
            CommitteeAssignment(4, 3)

    def test_byzantine_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            CommitteeAssignment(4, 100, byzantine_fraction=0.34)
        with pytest.raises(ConfigurationError):
            CommitteeAssignment(4, 100, byzantine_fraction=-0.1)


class TestAssignment:
    def test_partition_of_validators(self):
        assignment = CommitteeAssignment(4, 103, seed=1)
        all_ids = [
            member.node_id
            for committee in assignment.committees
            for member in committee.members
        ]
        assert sorted(all_ids) == list(range(103))

    def test_balanced_within_one(self):
        assignment = CommitteeAssignment(4, 103, seed=1)
        sizes = assignment.sizes()
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self):
        a = CommitteeAssignment(4, 64, seed=5)
        b = CommitteeAssignment(4, 64, seed=5)
        assert [
            [m.node_id for m in c.members] for c in a.committees
        ] == [[m.node_id for m in c.members] for c in b.committees]

    def test_committee_of_bounds(self):
        assignment = CommitteeAssignment(4, 64)
        with pytest.raises(ConfigurationError):
            assignment.committee_of(4)


class TestEpochs:
    def test_shuffle_changes_membership(self):
        assignment = CommitteeAssignment(4, 400, seed=1)
        before = [m.node_id for m in assignment.committee_of(0).members]
        assignment.next_epoch_shuffle()
        after = [m.node_id for m in assignment.committee_of(0).members]
        assert assignment.epoch == 1
        assert before != after

    def test_rotation_bounded_churn(self):
        assignment = CommitteeAssignment(4, 400, seed=1)
        before = {
            shard: {m.node_id for m in assignment.committee_of(shard).members}
            for shard in range(4)
        }
        assignment.next_epoch_rotate(swap_fraction=0.1)
        for shard in range(4):
            after = {
                m.node_id
                for m in assignment.committee_of(shard).members
            }
            stayed = len(before[shard] & after)
            # At least ~80% of each committee stays put.
            assert stayed >= 0.8 * len(before[shard])

    def test_rotation_preserves_population(self):
        assignment = CommitteeAssignment(4, 101, seed=2)
        assignment.next_epoch_rotate(0.25)
        all_ids = [
            member.node_id
            for committee in assignment.committees
            for member in committee.members
        ]
        assert sorted(all_ids) == list(range(101))

    def test_bad_swap_fraction(self):
        assignment = CommitteeAssignment(4, 64)
        with pytest.raises(ConfigurationError):
            assignment.next_epoch_rotate(0.0)


class TestSafety:
    def test_no_byzantine_always_safe(self):
        assignment = CommitteeAssignment(8, 400, byzantine_fraction=0.0)
        assert assignment.all_safe()
        assignment.require_safe()

    def test_large_committees_safe_with_quarter_byzantine(self):
        assignment = CommitteeAssignment(
            4, 1600, byzantine_fraction=0.25, seed=3
        )
        # 400-member committees at 25% global: overwhelmingly safe.
        assert assignment.all_safe()

    def test_unsafe_detection(self):
        # Tiny committees with near-threshold fraction will cross it for
        # some seed; find one and confirm the detector fires.
        tripped = False
        for seed in range(40):
            assignment = CommitteeAssignment(
                8, 24, byzantine_fraction=0.3, seed=seed
            )
            if not assignment.all_safe():
                with pytest.raises(SimulationError):
                    assignment.require_safe()
                tripped = True
                break
        assert tripped

    def test_fraction_metric(self):
        assignment = CommitteeAssignment(
            2, 10, byzantine_fraction=0.2, seed=1
        )
        for committee in assignment.committees:
            assert 0.0 <= committee.byzantine_fraction <= 1.0
            assert committee.is_safe == (
                committee.byzantine_fraction < BFT_THRESHOLD
            )


class TestFailureBound:
    def test_zero_byzantine(self):
        assert failure_probability_bound(400, 0.0) == 0.0

    def test_decreases_with_size(self):
        small = failure_probability_bound(50, 0.25)
        large = failure_probability_bound(400, 0.25)
        assert large < small

    def test_paper_scale_committees_safe(self):
        """400-validator committees at 25% global Byzantine: the bound
        is tiny - why sharding protocols use committees this large."""
        assert failure_probability_bound(400, 0.25) < 1e-3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            failure_probability_bound(0, 0.1)
        with pytest.raises(ConfigurationError):
            failure_probability_bound(100, 0.4)
