"""Deterministic fault injection for the sharded placement service.

Chaos testing the crash-recovery path needs crashes that are (a) timed
against *logical* progress, not wall clocks, and (b) reproducible from
a seed/spec, so a failing run replays exactly. A :class:`FaultPlan`
travels to the victim worker inside its spawn spec; the worker arms a
:class:`FaultInjector` that counts write-ahead-journal batch appends
and SIGKILLs the process at a chosen point in the batch lifecycle:

- ``journal``: after the WAL record is on disk, *before* the engine
  places the batch - recovery must replay it.
- ``place``: after the engine placed the batch, before its writebacks
  were delivered - recovery must replay *and* re-deliver writebacks.
- ``writeback``: after the writeback round trip - replay is a pure
  re-execution, the re-delivered writebacks are idempotent no-ops.

``torn_wal_bytes`` additionally truncates the journal tail before
dying, simulating a host crash between ``write`` and ``fsync``; the
CRC framing must detect and discard the torn record.

The kill fires **once**: the injector drops a sentinel file in
``once_dir`` before dying, and the respawned process (same spec, same
plan) sees it and stays passive - otherwise the supervisor's bounded
respawn would loop through the same crash until it degrades.

:func:`run_chaos_scenario` is the whole experiment in one call - a
golden single-engine run, a sharded run with the injected crash and a
retrying client, and a bit-identity verdict - shared by the pytest
chaos suite and the ``repro chaos`` CLI lane.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Callable

KILL_POINTS = ("journal", "place", "writeback")


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic crash, described as plain data."""

    #: Partition whose worker dies; None disables the plan entirely.
    kill_partition: "int | None" = None
    #: Die on the Nth WAL batch append of the process (1-based).
    kill_after: int = 1
    #: Where in the batch lifecycle to die (see module docstring).
    kill_point: str = "journal"
    #: Truncate this many bytes off the journal tail before dying
    #: (simulated torn write; 0 = clean SIGKILL).
    torn_wal_bytes: int = 0
    #: Directory for the once-only sentinel file. None means the kill
    #: re-fires on every respawn - only useful to test respawn bounds.
    once_dir: "str | None" = None

    def __post_init__(self) -> None:
        if self.kill_point not in KILL_POINTS:
            raise ValueError(
                f"kill_point must be one of {KILL_POINTS}, "
                f"got {self.kill_point!r}"
            )

    @classmethod
    def from_spec(cls, spec: dict[str, Any]) -> "FaultPlan":
        return cls(
            kill_partition=spec.get("kill_partition"),
            kill_after=spec.get("kill_after", 1),
            kill_point=spec.get("kill_point", "journal"),
            torn_wal_bytes=spec.get("torn_wal_bytes", 0),
            once_dir=spec.get("once_dir"),
        )

    def to_spec(self) -> dict[str, Any]:
        """JSON-safe dict for the worker spawn spec."""
        return {
            "kill_partition": self.kill_partition,
            "kill_after": self.kill_after,
            "kill_point": self.kill_point,
            "torn_wal_bytes": self.torn_wal_bytes,
            "once_dir": self.once_dir,
        }


class FaultInjector:
    """Arms one :class:`FaultPlan` inside a worker process.

    Wired up by ``worker_main``: ``on_batch_append`` becomes the
    journal's append hook, ``maybe_kill`` is called by the worker at
    the ``place`` and ``writeback`` lifecycle points.
    """

    def __init__(self, plan: FaultPlan, partition_id: int) -> None:
        self.plan = plan
        self.partition_id = partition_id
        self._batches = 0
        self._armed = False
        self._journal: Any = None

    @property
    def _sentinel(self) -> "str | None":
        if self.plan.once_dir is None:
            return None
        return os.path.join(
            self.plan.once_dir, f"killed.p{self.partition_id}"
        )

    @property
    def active(self) -> bool:
        """Does this process die? False for non-victim partitions and
        for respawns after the sentinel was dropped."""
        if self.plan.kill_partition != self.partition_id:
            return False
        sentinel = self._sentinel
        return sentinel is None or not os.path.exists(sentinel)

    def on_batch_append(self, journal: Any) -> None:
        self._journal = journal
        self._batches += 1
        if self._batches >= self.plan.kill_after and not self._armed:
            if self.plan.kill_point == "journal":
                self._die()
            self._armed = True

    def maybe_kill(self, stage: str) -> None:
        if self._armed and stage == self.plan.kill_point:
            self._die()

    def _die(self) -> None:
        sentinel = self._sentinel
        if sentinel is not None:
            with open(sentinel, "w") as fh:
                fh.write(f"batches={self._batches}\n")
        if self.plan.torn_wal_bytes > 0 and self._journal is not None:
            # Simulate a torn write: the record made it into the file
            # (per-record flush) but the tail never hit the platter.
            size = self._journal.tell()
            with open(self._journal.path, "r+b") as fh:
                fh.truncate(
                    max(0, size - self.plan.torn_wal_bytes)
                )
                fh.flush()
                os.fsync(fh.fileno())
        os.kill(os.getpid(), signal.SIGKILL)


async def run_chaos_scenario(
    *,
    workdir: str,
    n_workers: int = 2,
    n_txs: int = 3_000,
    n_shards: int = 4,
    lease_length: int = 600,
    strategy: str = "optchain",
    epoch_length: int = 500,
    placer_kwargs: "dict[str, Any] | None" = None,
    seed: int = 7,
    chunk_size: int = 250,
    checkpoint_after_chunks: int = 3,
    kill_partition: int = 0,
    kill_after: int = 2,
    kill_point: str = "journal",
    torn_wal_bytes: int = 0,
    max_retries: int = 20,
    request_timeout: float = 60.0,
    log: "Callable[[str], None] | None" = None,
) -> dict[str, Any]:
    """Kill a non-idle worker mid-stream; verify bit-identical recovery.

    Runs the same seeded stream twice - once through a single
    in-process engine (the golden), once through a sharded service
    whose ``kill_partition`` worker SIGKILLs itself per the fault plan
    while a retrying client drives the load - and compares every shard
    assignment. Returns a verdict dict (``ok``, ``bit_identical``,
    ``degraded``, ``retries``, ``recovery_s``, ``events``).
    """
    # Deferred imports: the injector half of this module must stay
    # import-light inside worker processes.
    from repro.datasets.synthetic import synthetic_stream
    from repro.errors import RetryLaterError
    from repro.service.client import AsyncBinaryPlacementClient
    from repro.service.coordinator import ShardedPlacementServer
    from repro.service.worker import build_partition

    os.makedirs(workdir, exist_ok=True)
    events: list[str] = []

    def emit(message: str) -> None:
        events.append(message)
        if log is not None:
            log(message)

    spec: dict[str, Any] = {
        "method": strategy,
        "n_shards": n_shards,
        "epoch_length": epoch_length,
    }
    if placer_kwargs:
        spec["placer_kwargs"] = placer_kwargs
    stream = synthetic_stream(n_txs, seed=seed)

    golden_partition = build_partition(
        0,
        {
            **spec,
            "n_partitions": 1,
            "lease_length": lease_length,
            "checkpoint": None,
        },
    )
    golden: list[int] = []
    for offset in range(0, len(stream), chunk_size):
        shards, _ = golden_partition.place_batch(
            stream[offset : offset + chunk_size]
        )
        golden.extend(shards)
    emit(f"golden run: {len(golden)} placements ({strategy})")

    plan = FaultPlan(
        kill_partition=kill_partition,
        kill_after=kill_after,
        kill_point=kill_point,
        torn_wal_bytes=torn_wal_bytes,
        once_dir=str(workdir),
    )
    server = ShardedPlacementServer(
        dict(spec),
        n_workers,
        port=0,
        lease_length=lease_length,
        checkpoint_path=os.path.join(workdir, "chaos.snap"),
        respawn_backoff=0.05,
        heartbeat_interval=1.0,
        heartbeat_timeout=30.0,
        faults=plan.to_spec(),
    )
    await server.start()
    emit(
        f"sharded service up: {n_workers} workers, lease "
        f"{lease_length}, kill partition {kill_partition} after "
        f"{kill_after} journaled batches at '{kill_point}'"
        + (f", torn tail {torn_wal_bytes}B" if torn_wal_bytes else "")
    )
    served: list[int] = []
    degraded = None
    retries = 0
    recovery_s = 0.0
    try:
        client = await AsyncBinaryPlacementClient.connect(
            port=server.port,
            retries=max_retries,
            request_timeout=request_timeout,
            backoff_seed=seed,
        )
        try:
            for index, offset in enumerate(
                range(0, len(stream), chunk_size)
            ):
                before = client.retries_used
                sent = time.perf_counter()
                served.extend(
                    await client.place(
                        stream[offset : offset + chunk_size]
                    )
                )
                if client.retries_used > before:
                    chunk_s = time.perf_counter() - sent
                    recovery_s = max(recovery_s, chunk_s)
                    emit(
                        f"chunk {index} rode out a fault: "
                        f"{client.retries_used - before} retries, "
                        f"{chunk_s:.2f}s to recover"
                    )
                if index + 1 == checkpoint_after_chunks:
                    for _ in range(200):
                        try:
                            await client.checkpoint()
                            break
                        except RetryLaterError:
                            await asyncio.sleep(0.05)
                    emit(
                        f"checkpoint taken after chunk {index} "
                        f"(cursor {offset + chunk_size})"
                    )
            ping = await client.ping()
            degraded = ping.get("degraded")
            retries = client.retries_used
        finally:
            await client.close()
    finally:
        await server.stop()

    bit_identical = served == golden
    first_diff = next(
        (
            index
            for index, (a, b) in enumerate(zip(served, golden))
            if a != b
        ),
        None if len(served) == len(golden) else min(len(served), len(golden)),
    )
    emit(
        f"served {len(served)}/{len(golden)} placements; "
        f"bit_identical={bit_identical}"
        + (f" (first divergence at {first_diff})" if first_diff is not None else "")
        + f"; degraded={degraded!r}; retries={retries}"
    )
    return {
        "ok": bit_identical and degraded is None,
        "bit_identical": bit_identical,
        "first_divergence": first_diff,
        "degraded": degraded,
        "n_txs": len(stream),
        "served": len(served),
        "retries": retries,
        "recovery_s": round(recovery_s, 3),
        "kill_partition": kill_partition,
        "kill_after": kill_after,
        "kill_point": kill_point,
        "torn_wal_bytes": torn_wal_bytes,
        "events": events,
    }
