"""Shared fixtures for the OptChain reproduction test suite."""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import (
    BitcoinLikeGenerator,
    GeneratorConfig,
    synthetic_stream,
)
from repro.txgraph.tan import TaNGraph


SMALL_CONFIG = GeneratorConfig(
    n_wallets=200,
    coinbase_interval=100,
    bootstrap_coinbase=20,
)


@pytest.fixture(scope="session")
def small_stream():
    """2k-transaction stream shared by read-only tests."""
    return synthetic_stream(2_000, seed=7, config=SMALL_CONFIG)


@pytest.fixture(scope="session")
def small_graph(small_stream):
    """TaN graph of the shared stream."""
    return TaNGraph.from_transactions(small_stream)


@pytest.fixture()
def generator():
    """A fresh small generator (mutable; function scope)."""
    return BitcoinLikeGenerator(config=SMALL_CONFIG, seed=11)


@pytest.fixture(scope="session")
def medium_stream():
    """20k-transaction stream for statistics-sensitive tests."""
    return synthetic_stream(
        20_000,
        seed=3,
        config=GeneratorConfig(
            n_wallets=2_000, coinbase_interval=500, bootstrap_coinbase=50
        ),
    )
