"""Figure 4 - system throughput.

(4a) throughput versus transaction rate at the largest shard count;
(4b) the maximum throughput each method achieves per configuration.
Paper: at 16 shards OptChain's maximum throughput is 34.4%, 30.5% and
16.6% higher than OmniLedger, Metis and Greedy; OptChain tracks the
input rate the longest, Metis never reaches it.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments.configs import ExperimentScale
from repro.experiments.fig3 import GridCell
from repro.experiments.fig3 import run as fig3_run


def run(scale: ExperimentScale, seed: int = 1) -> list[GridCell]:
    """Same grid as Fig. 3."""
    return fig3_run(scale, seed)


def throughput_at_max_shards(
    cells: list[GridCell],
) -> dict[str, list[tuple[float, float]]]:
    """Fig. 4a: ``rate -> throughput`` per method at the top shard count."""
    top = max(cell.n_shards for cell in cells)
    series: dict[str, list[tuple[float, float]]] = {}
    for cell in cells:
        if cell.n_shards != top:
            continue
        series.setdefault(cell.method, []).append(
            (cell.tx_rate, cell.throughput)
        )
    for points in series.values():
        points.sort()
    return series


def max_throughput(cells: list[GridCell]) -> dict[str, float]:
    """Fig. 4b headline: best throughput per method over the grid."""
    best: dict[str, float] = {}
    for cell in cells:
        best[cell.method] = max(
            best.get(cell.method, 0.0), cell.throughput
        )
    return best


def as_table(cells: list[GridCell]) -> str:
    series = throughput_at_max_shards(cells)
    rates = sorted({rate for pts in series.values() for rate, _ in pts})
    methods = sorted(series)
    rows = []
    for rate in rates:
        row: list[object] = [int(rate)]
        for method in methods:
            value = dict(series[method]).get(rate, float("nan"))
            row.append(f"{value:.0f}")
        rows.append(row)
    part_a = format_table(
        ["rate"] + list(methods),
        rows,
        title="Fig. 4a: throughput vs rate at the largest shard count",
    )
    best = max_throughput(cells)
    part_b = format_table(
        ["method", "max throughput (tps)"],
        [[m, f"{v:.0f}"] for m, v in sorted(best.items())],
        title="Fig. 4b: maximum throughput per method",
    )
    return part_a + "\n\n" + part_b


def main(scale_name: str | None = None) -> str:
    from repro.experiments.runner import scale_by_name

    output = as_table(run(scale_by_name(scale_name)))
    print(output)
    return output


if __name__ == "__main__":
    main()
