"""Synthetic Bitcoin-like transaction stream generator.

Substitutes for the MIT Bitcoin dataset (DESIGN.md §4). The generator
reproduces the TaN-network properties the paper reports in §IV-A and
relies on in the evaluation:

- power-law in/out degree distributions with average degree around 2.3
  (Fig. 2a/2b: about 93% of nodes with in-degree < 3, about 97% with
  out-degree < 10);
- coinbase transactions at block cadence, plus a bootstrap era in which
  almost all transactions are coinbase (the paper notes 99.1% of the
  first 10k blocks);
- an optional high-degree "flooding attack" window reproducing the
  average-degree spike in Fig. 2c;
- wallet locality / community structure via :class:`WalletModel` - the
  property that makes smart placement beat random placement;
- validity: the stream is topological and double-spend free by
  construction (property-tested against :class:`UTXOSet`).

Every stream is reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.datasets.wallets import WalletModel
from repro.errors import ConfigurationError
from repro.rng import bounded_power_law, make_rng
from repro.utxo.transaction import OutPoint, Transaction, TxOutput

COIN = 100_000_000  # satoshi per coin
BLOCK_REWARD = 50 * COIN
DUST_LIMIT = 546  # change below this folds into the fee, as real wallets do


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Tunable parameters of the synthetic workload.

    Defaults are calibrated so the generated TaN matches the paper's
    Bitcoin statistics (see ``tests/datasets/test_synthetic_stats.py``).

    - ``n_wallets``: wallet population; smaller populations create denser
      communities and stronger placement signal.
    - ``coinbase_interval``: one mining reward every this many
      transactions (about one block of 2000 txs in the paper's setup).
    - ``bootstrap_coinbase``: number of leading pure-coinbase transactions
      (the funding era).
    - ``max_inputs`` / ``input_exponent``: fan-in power law.
    - ``batch_payment_prob`` / ``max_batch_outputs``: occasional exchange
      style payout transactions creating the out-degree tail.
    - ``consolidation_prob``: occasional many-input sweep transactions.
    - ``flood_start`` / ``flood_length``: optional flooding-attack window
      (Fig. 2c); ``None`` disables it.
    - ``burst_prob`` / ``burst_communities`` / ``burst_length``: activity
      waves. With probability ``burst_prob`` the spender is drawn from a
      rotating window of ``burst_communities`` "hot" communities; the
      window shifts every ``burst_length`` transactions. This gives
      graph clusters *temporal* locality - the property that makes
      offline partitions (Metis) congestion-prone in the paper's
      Figs. 5-7: a cluster's shard takes its whole burst at once.
      ``burst_prob=0`` disables bursts.
    - ``tx_rate``: timestamps are ``txid / tx_rate`` seconds.
    """

    n_wallets: int = 5_000
    coinbase_interval: int = 2_000
    bootstrap_coinbase: int = 200
    max_inputs: int = 6
    input_exponent: float = 2.1
    batch_payment_prob: float = 0.03
    max_batch_outputs: int = 40
    consolidation_prob: float = 0.02
    max_consolidation_inputs: int = 20
    flood_start: int | None = None
    flood_length: int = 0
    flood_inputs: int = 30
    tx_rate: float = 1_000.0
    activity_exponent: float = 0.8
    partner_stickiness: float = 0.7
    recency_bias: float = 0.8
    n_communities: int = 64
    intra_community_prob: float = 0.92
    community_exponent: float = 1.3
    n_hubs: int = 0
    hub_payment_prob: float = 0.15
    burst_prob: float = 0.7
    burst_communities: int = 4
    burst_length: int = 10_000
    fee: int = 1_000

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent parameters."""
        if self.n_wallets < 2:
            raise ConfigurationError("n_wallets must be >= 2")
        if self.coinbase_interval < 1:
            raise ConfigurationError("coinbase_interval must be >= 1")
        if self.bootstrap_coinbase < 1:
            raise ConfigurationError(
                "bootstrap_coinbase must be >= 1 (the first transaction "
                "has nothing to spend)"
            )
        if self.max_inputs < 1:
            raise ConfigurationError("max_inputs must be >= 1")
        if not 0 <= self.batch_payment_prob <= 1:
            raise ConfigurationError("batch_payment_prob must be in [0, 1]")
        if not 0 <= self.consolidation_prob <= 1:
            raise ConfigurationError("consolidation_prob must be in [0, 1]")
        if self.tx_rate <= 0:
            raise ConfigurationError("tx_rate must be > 0")
        if self.flood_start is not None and self.flood_start < 0:
            raise ConfigurationError("flood_start must be >= 0")
        if self.n_communities < 1:
            raise ConfigurationError("n_communities must be >= 1")
        if not 0.0 <= self.intra_community_prob <= 1.0:
            raise ConfigurationError(
                "intra_community_prob must be in [0, 1]"
            )
        if self.n_hubs < 0:
            raise ConfigurationError("n_hubs must be >= 0")
        if not 0.0 <= self.hub_payment_prob <= 1.0:
            raise ConfigurationError("hub_payment_prob must be in [0, 1]")
        if not 0.0 <= self.burst_prob <= 1.0:
            raise ConfigurationError("burst_prob must be in [0, 1]")
        if self.burst_communities < 1:
            raise ConfigurationError("burst_communities must be >= 1")
        if self.burst_length < 1:
            raise ConfigurationError("burst_length must be >= 1")
        if self.fee < 0:
            raise ConfigurationError("fee must be >= 0")


class BitcoinLikeGenerator:
    """Streaming generator of valid, Bitcoin-like transactions."""

    def __init__(
        self, config: GeneratorConfig | None = None, seed: int = 0
    ) -> None:
        self.config = config or GeneratorConfig()
        self.config.validate()
        self._rng = make_rng(seed)
        self._wallets = WalletModel(
            n_wallets=self.config.n_wallets,
            rng=self._rng,
            activity_exponent=self.config.activity_exponent,
            partner_stickiness=self.config.partner_stickiness,
            recency_bias=self.config.recency_bias,
            n_communities=self.config.n_communities,
            intra_community_prob=self.config.intra_community_prob,
            community_exponent=self.config.community_exponent,
            n_hubs=self.config.n_hubs,
            hub_payment_prob=self.config.hub_payment_prob,
        )
        self._next_txid = 0

    @property
    def n_generated(self) -> int:
        """Transactions produced so far."""
        return self._next_txid

    def stream(self, n_transactions: int) -> Iterator[Transaction]:
        """Yield the next ``n_transactions`` transactions.

        May be called repeatedly; generation continues from the current
        state, so ``stream(a)`` then ``stream(b)`` equals ``stream(a+b)``.
        """
        if n_transactions < 0:
            raise ConfigurationError(
                f"n_transactions must be >= 0, got {n_transactions}"
            )
        for _ in range(n_transactions):
            yield self._next_transaction()

    def generate(self, n_transactions: int) -> list[Transaction]:
        """Materialize ``n_transactions`` transactions as a list."""
        return list(self.stream(n_transactions))

    # -- internal --------------------------------------------------------

    def _next_transaction(self) -> Transaction:
        txid = self._next_txid
        self._next_txid += 1
        cfg = self.config
        if txid < cfg.bootstrap_coinbase or txid % cfg.coinbase_interval == 0:
            return self._coinbase(txid)
        if self._in_flood_window(txid):
            tx = self._flood_transaction(txid)
        elif self._rng.random() < cfg.consolidation_prob:
            tx = self._spend(
                txid,
                forced_inputs=bounded_power_law(
                    self._rng, 2, cfg.max_consolidation_inputs, 1.2
                ),
                consolidate=True,
            )
        else:
            tx = self._spend(txid)
        return tx

    def _in_flood_window(self, txid: int) -> bool:
        start = self.config.flood_start
        if start is None:
            return False
        return start <= txid < start + self.config.flood_length

    def _hot_communities(self, txid: int) -> list[int] | None:
        """The rotating activity-burst window (None when inactive)."""
        cfg = self.config
        if cfg.burst_prob == 0.0 or self._rng.random() >= cfg.burst_prob:
            return None
        n_communities = min(cfg.n_communities, cfg.n_wallets)
        width = min(cfg.burst_communities, n_communities)
        start = (txid // cfg.burst_length) * width % n_communities
        return [
            (start + offset) % n_communities for offset in range(width)
        ]

    def _flood_transaction(self, txid: int) -> Transaction:
        """The July-2015 spam pattern (paper Fig. 2c).

        Spam transactions shower a victim wallet with many tiny outputs;
        cleanup transactions sweep dozens of them back up. Both halves
        have degree far above the background, which is what produces the
        average-degree spike.
        """
        cfg = self.config
        victim = 0  # a designated spam-target wallet
        if self._wallets.utxo_count(victim) >= cfg.flood_inputs:
            return self._spend(
                txid, forced_inputs=cfg.flood_inputs, consolidate=True,
                forced_spender=victim,
            )
        # Spam phase: one transaction creating many dust outputs on the
        # victim.
        spender = self._wallets.pick_spender()
        if spender is None or spender == victim:
            return self._coinbase(txid)
        coins = self._wallets.withdraw(spender, 2)
        if not coins:
            return self._coinbase(txid)
        total_in = sum(value for _, value in coins)
        n_dust = min(cfg.flood_inputs, max(1, total_in // (2 * DUST_LIMIT)))
        share = total_in // (n_dust + 1)
        outputs = [
            TxOutput(value=share, address=victim) for _ in range(n_dust)
        ]
        outputs.append(TxOutput(value=total_in - share * n_dust,
                                address=spender))
        tx = Transaction(
            txid=txid,
            inputs=tuple(outpoint for outpoint, _ in coins),
            outputs=tuple(outputs),
            timestamp=txid / cfg.tx_rate,
            size_bytes=150 + 150 * len(coins) + 35 * len(outputs),
        )
        for index, output in enumerate(outputs):
            self._wallets.deposit(
                output.address, OutPoint(txid, index), output.value
            )
        return tx

    def _coinbase(self, txid: int) -> Transaction:
        miner = self._rng.randrange(self.config.n_wallets)
        output = TxOutput(value=BLOCK_REWARD, address=miner)
        tx = Transaction(
            txid=txid,
            inputs=(),
            outputs=(output,),
            timestamp=txid / self.config.tx_rate,
            size_bytes=200,
        )
        self._wallets.deposit(miner, OutPoint(txid, 0), BLOCK_REWARD)
        return tx

    def _spend(
        self,
        txid: int,
        forced_inputs: int | None = None,
        consolidate: bool = False,
        forced_spender: int | None = None,
    ) -> Transaction:
        cfg = self.config
        if forced_spender is not None:
            spender = forced_spender
        else:
            spender = self._wallets.pick_spender(self._hot_communities(txid))
        if spender is None:
            # Nothing is funded (can only happen with tiny bootstrap):
            # mint instead of spending; keeps the stream valid.
            return self._coinbase(txid)
        is_hub = self._wallets.is_hub(spender)
        if is_hub and forced_inputs is None:
            # Exchange pattern: sweep many deposits in one transaction.
            forced_inputs = bounded_power_law(
                self._rng, 2, cfg.max_consolidation_inputs, 1.2
            )
        if forced_inputs is None:
            n_inputs = bounded_power_law(
                self._rng, 1, cfg.max_inputs, cfg.input_exponent
            )
        else:
            n_inputs = forced_inputs
        coins = self._wallets.withdraw(spender, n_inputs)
        if not coins:
            return self._coinbase(txid)
        total_in = sum(value for _, value in coins)
        inputs = tuple(outpoint for outpoint, _ in coins)
        fee = min(cfg.fee, max(0, total_in - DUST_LIMIT))
        spendable = total_in - fee

        outputs: list[TxOutput] = []
        if consolidate:
            outputs.append(TxOutput(value=spendable, address=spender))
        elif is_hub or (
            self._rng.random() < cfg.batch_payment_prob
            and spendable > 2 * DUST_LIMIT * cfg.max_batch_outputs
        ):
            # Hubs always pay out in batches (exchange withdrawals).
            outputs.extend(self._batch_outputs(spender, spendable))
        else:
            outputs.extend(self._payment_outputs(spender, spendable))

        tx = Transaction(
            txid=txid,
            inputs=inputs,
            outputs=tuple(outputs),
            timestamp=txid / cfg.tx_rate,
            size_bytes=150 + 150 * len(inputs) + 35 * len(outputs),
            fee=total_in - sum(o.value for o in outputs),
        )
        for index, output in enumerate(outputs):
            self._wallets.deposit(
                output.address, OutPoint(txid, index), output.value
            )
        return tx

    def _payment_outputs(self, spender: int, spendable: int) -> list[TxOutput]:
        """A normal payment: one output to a partner, change back."""
        payee = self._wallets.pick_payee(spender)
        # Pay 10-90% of the spendable value; the rest is change.
        amount = max(1, int(spendable * self._rng.uniform(0.1, 0.9)))
        change = spendable - amount
        outputs = [TxOutput(value=amount, address=payee)]
        if change > DUST_LIMIT:
            outputs.append(TxOutput(value=change, address=spender))
        else:
            # Fold dust change into the payment, not the fee, so value
            # conservation in tests stays exact.
            outputs[0] = TxOutput(value=amount + change, address=payee)
        return outputs

    def _batch_outputs(self, spender: int, spendable: int) -> list[TxOutput]:
        """An exchange-style payout: many outputs to many wallets."""
        n_out = bounded_power_law(
            self._rng, 3, self.config.max_batch_outputs, 1.1
        )
        # Shrink the batch when funds are low so every share is positive.
        n_out = max(1, min(n_out, spendable - 1)) if spendable > 1 else 1
        share = spendable // (n_out + 1)
        outputs = [
            TxOutput(
                value=share,
                address=self._wallets.pick_payee(spender),
            )
            for _ in range(n_out)
        ]
        change = spendable - share * n_out
        outputs.append(TxOutput(value=change, address=spender))
        return outputs


def synthetic_stream(
    n_transactions: int,
    seed: int = 0,
    config: GeneratorConfig | None = None,
) -> list[Transaction]:
    """One-call helper: a materialized Bitcoin-like stream.

    This is the workload entry point used by examples, experiments, and
    the quickstart in the package docstring.
    """
    return BitcoinLikeGenerator(config=config, seed=seed).generate(
        n_transactions
    )
