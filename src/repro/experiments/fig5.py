"""Figure 5 - committed transactions per time window.

At the top (rate, shards) configuration the paper counts commits per
50-second window: OptChain, OmniLedger and Greedy produce near-constant
lines; Metis starts slow (first ~500 s) and oscillates - the congestion
signature of placing consecutive transactions in one shard.
"""

from __future__ import annotations

from repro.analysis.timeseries import bin_counts
from repro.analysis.tables import format_table
from repro.experiments.configs import ExperimentScale
from repro.experiments.runner import METHODS, simulate


def run(
    scale: ExperimentScale, seed: int = 1
) -> dict[str, list[tuple[float, int]]]:
    """Commit histogram per method at the top configuration."""
    n_shards = max(scale.shard_counts)
    tx_rate = max(scale.tx_rates)
    histograms: dict[str, list[tuple[float, int]]] = {}
    for method in METHODS:
        result = simulate(scale, method, n_shards, tx_rate, seed)
        histograms[method] = bin_counts(
            result.commit_times, scale.commit_bin_s
        )
    return histograms


def oscillation(histogram: list[tuple[float, int]]) -> float:
    """Coefficient of variation of per-bin commits (Metis > others).

    The last bin is dropped - it is truncated by the end of the run for
    every method.
    """
    counts = [count for _, count in histogram[:-1]]
    if not counts:
        return 0.0
    mean = sum(counts) / len(counts)
    if mean == 0:
        return 0.0
    variance = sum((c - mean) ** 2 for c in counts) / len(counts)
    return variance**0.5 / mean


def as_table(histograms: dict[str, list[tuple[float, int]]]) -> str:
    methods = sorted(histograms)
    n_bins = max(len(h) for h in histograms.values())
    rows = []
    for index in range(n_bins):
        row: list[object] = []
        start = None
        for method in methods:
            histogram = histograms[method]
            if index < len(histogram):
                start = histogram[index][0]
                row.append(histogram[index][1])
            else:
                row.append(0)
        rows.append([f"{start:.0f}s"] + row)
    table = format_table(
        ["bin"] + list(methods),
        rows,
        title="Fig. 5: committed transactions per time window",
    )
    cv_rows = [
        [method, f"{oscillation(histograms[method]):.3f}"]
        for method in methods
    ]
    return (
        table
        + "\n\n"
        + format_table(
            ["method", "commit-rate CV"],
            cv_rows,
            title="Oscillation (coefficient of variation; Metis highest)",
        )
    )


def main(scale_name: str | None = None) -> str:
    from repro.experiments.runner import scale_by_name

    output = as_table(run(scale_by_name(scale_name)))
    print(output)
    return output


if __name__ == "__main__":
    main()
