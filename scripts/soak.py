#!/usr/bin/env python
"""Thin wrapper: run the soak harness as a script.

Equivalent to ``repro soak``; exists so cron/CI entries can invoke the
harness without the console-script being installed::

    PYTHONPATH=src python scripts/soak.py --transactions 2000000

All flags are the ``repro soak`` flags (see ``--help``).
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["soak", *sys.argv[1:]]))
