"""Unit tests for the L2S latency model (§IV-C)."""

from __future__ import annotations

import math

import pytest

from repro.core.l2s import (
    L2SEstimator,
    ShardLatencyModel,
    _expected_max_closed_form,
    _expected_max_numeric,
    acceptance_cdf,
    expected_max_acceptance,
)
from repro.errors import ConfigurationError


class TestShardLatencyModel:
    def test_nonpositive_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardLatencyModel(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            ShardLatencyModel(1.0, -1.0)

    def test_expected_total(self):
        model = ShardLatencyModel(lambda_c=10.0, lambda_v=0.2)
        assert model.expected_total == pytest.approx(0.1 + 5.0)

    def test_cdf_properties(self):
        model = ShardLatencyModel(lambda_c=2.0, lambda_v=0.5)
        assert model.cdf(0.0) == 0.0
        assert model.cdf(-1.0) == 0.0
        values = [model.cdf(t) for t in (0.1, 1.0, 5.0, 50.0)]
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert model.cdf(1000.0) == pytest.approx(1.0)

    def test_cdf_equal_rates_erlang(self):
        model = ShardLatencyModel(lambda_c=1.0, lambda_v=1.0)
        # Erlang(2, 1): F(t) = 1 - e^-t (1 + t).
        assert model.cdf(2.0) == pytest.approx(
            1.0 - math.exp(-2.0) * 3.0
        )

    def test_pdf_integrates_to_cdf(self):
        model = ShardLatencyModel(lambda_c=3.0, lambda_v=0.7)
        # Midpoint integrate the density up to t=2.
        step = 1e-4
        total = sum(
            model.pdf((i + 0.5) * step) * step for i in range(20_000)
        )
        assert total == pytest.approx(model.cdf(2.0), abs=1e-3)


class TestExpectedMax:
    def test_empty(self):
        assert expected_max_acceptance([]) == 0.0

    def test_single_shard_is_mean(self):
        model = ShardLatencyModel(5.0, 0.5)
        assert expected_max_acceptance([model]) == pytest.approx(
            model.expected_total
        )

    def test_max_exceeds_each_mean(self):
        models = [ShardLatencyModel(5.0, 0.5), ShardLatencyModel(8.0, 0.3)]
        expected = expected_max_acceptance(models)
        assert expected > max(m.expected_total for m in models)

    def test_closed_form_matches_numeric(self):
        models = [
            ShardLatencyModel(10.0, 0.2),
            ShardLatencyModel(7.0, 0.4),
            ShardLatencyModel(12.0, 0.25),
        ]
        closed = _expected_max_closed_form(models)
        numeric = _expected_max_numeric(models)
        assert closed == pytest.approx(numeric, rel=1e-4)

    def test_near_equal_rates_fall_back_to_numeric(self):
        # lambda_c == lambda_v would blow up the closed form; the public
        # entry point must stay finite and close to the Erlang answer.
        models = [ShardLatencyModel(1.0, 1.0 + 1e-9)] * 2
        value = expected_max_acceptance(models)
        assert 2.0 < value < 4.0  # E[max of two Erlang(2,1)] ~ 2.63

    def test_identical_shards_monotone_in_count(self):
        model = ShardLatencyModel(10.0, 0.5)
        values = [
            expected_max_acceptance([model] * m) for m in range(1, 5)
        ]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_acceptance_cdf_is_product(self):
        models = [ShardLatencyModel(2.0, 0.5), ShardLatencyModel(3.0, 0.4)]
        t = 1.7
        assert acceptance_cdf(models, t) == pytest.approx(
            models[0].cdf(t) * models[1].cdf(t)
        )


class TestL2SEstimator:
    def models(self):
        return [
            ShardLatencyModel(10.0, 1.0),   # fast shard
            ShardLatencyModel(10.0, 0.1),   # slow shard (loaded queue)
            ShardLatencyModel(10.0, 1.0),
        ]

    def test_needs_models(self):
        with pytest.raises(ConfigurationError):
            L2SEstimator([])

    def test_bad_mode(self):
        with pytest.raises(ConfigurationError):
            L2SEstimator(self.models(), mode="bogus")

    def test_coinbase_costs_commit_only(self):
        estimator = L2SEstimator(self.models())
        assert estimator.score(0, []) == pytest.approx(0.1 + 1.0)

    def test_same_shard_costs_commit_only(self):
        estimator = L2SEstimator(self.models())
        assert estimator.score(0, [0]) == pytest.approx(0.1 + 1.0)

    def test_cross_shard_adds_acceptance(self):
        estimator = L2SEstimator(self.models())
        same = estimator.score(0, [0])
        cross = estimator.score(0, [1])
        assert cross > same

    def test_slow_shard_scores_worse(self):
        estimator = L2SEstimator(self.models())
        scores = estimator.scores_all([])
        assert scores[1] > scores[0]
        assert scores[0] == pytest.approx(scores[2])

    def test_accept_accept_mode(self):
        models = self.models()
        estimator = L2SEstimator(models, mode="accept_accept")
        expected = 2.0 * expected_max_acceptance([models[1]])
        assert estimator.score(0, [1]) == pytest.approx(expected)

    def test_out_of_range_shard_rejected(self):
        with pytest.raises(ConfigurationError):
            L2SEstimator(self.models()).score(7, [])

    def test_placement_prefers_input_shard_when_idle(self):
        """With equal load, placing with the inputs avoids the
        acceptance phase entirely - the L2S term alone reproduces the
        'avoid cross-shard' preference."""
        models = [ShardLatencyModel(10.0, 0.5)] * 4
        estimator = L2SEstimator(models)
        scores = estimator.scores_all([2])
        assert min(range(4), key=scores.__getitem__) == 2


class TestLongLivedEstimator:
    def models(self, verify=1.0):
        return [
            ShardLatencyModel(10.0, verify),
            ShardLatencyModel(10.0, 0.1),
        ]

    def test_update_refreshes_scores(self):
        estimator = L2SEstimator(self.models(), mode="shard_load")
        before = estimator.scores_all([])
        estimator.update(self.models(verify=0.5))
        after = estimator.scores_all([])
        assert after[0] > before[0]
        assert after[1] == before[1]

    def test_update_rejects_empty(self):
        estimator = L2SEstimator(self.models())
        with pytest.raises(ConfigurationError):
            estimator.update([])

    def test_expected_totals_memoized(self):
        models = self.models()
        estimator = L2SEstimator(models)
        assert estimator.expected_totals == [
            m.expected_total for m in models
        ]

    def test_update_rates_matches_models(self):
        models = self.models()
        by_models = L2SEstimator(models, mode="shard_load")
        by_rates = L2SEstimator(models, mode="shard_load")
        by_rates.update_rates(
            [1.0 / m.lambda_c for m in models],
            [1.0 / m.lambda_v for m in models],
        )
        for inputs in ([], [0], [1], [0, 1]):
            assert by_models.scores_all(inputs) == by_rates.scores_all(
                inputs
            )

    def test_update_rates_needs_shard_load_mode(self):
        estimator = L2SEstimator(self.models(), mode="accept_commit")
        with pytest.raises(ConfigurationError, match="shard_load"):
            estimator.update_rates([0.1, 0.1], [1.0, 1.0])

    def test_update_rates_rejects_mismatch(self):
        estimator = L2SEstimator(self.models(), mode="shard_load")
        with pytest.raises(ConfigurationError):
            estimator.update_rates([0.1], [1.0, 1.0])

    def test_model_of_unavailable_after_rates(self):
        estimator = L2SEstimator(self.models(), mode="shard_load")
        estimator.update_rates([0.1, 0.1], [1.0, 10.0])
        with pytest.raises(ConfigurationError, match="raw rates"):
            estimator.model_of(0)
