"""Regenerates Fig. 10: the latency CDF at the top configuration.

Shape asserted: at every threshold OptChain completes at least as large
a share of transactions as OmniLedger (paper at 10 s: 70% vs 7.9%).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import fig10


def test_fig10(benchmark, scale):
    samples = run_once(benchmark, lambda: fig10.run(scale))
    print()
    print(fig10.as_table(samples, threshold=10.0))
    for threshold in (5.0, 10.0, 20.0, 50.0):
        fractions = fig10.within(samples, threshold)
        assert (
            fractions["optchain"] >= fractions["omniledger"] - 1e-9
        ), threshold
    curves = fig10.cdf(samples)
    for method, points in curves.items():
        values = [v for v, _ in points]
        assert values == sorted(values), method
