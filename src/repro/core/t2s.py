"""Transaction-to-Shard (T2S) score - §IV-B of the paper.

The T2S score of a new transaction ``u`` against shard ``i`` measures the
probability that a PageRank-style random walk from ``u`` over the TaN DAG
terminates in shard ``i`` - how much of ``u``'s ancestry shard ``i``
already owns. The paper's incremental formulation avoids recomputing the
walk for the whole graph on every arrival:

- each placed transaction ``v`` keeps an *unnormalized* sparse vector
  ``p'(v)``;
- on arrival of ``u``::

      p'(u) = (1 - alpha) * sum_{v in Nin(u)} p'(v) / |Nout(v)|
      p(u)[i] = p'(u)[i] / |S_i|          (the normalized T2S score)

- after placing ``u`` into shard ``s``: ``p'(u)[s] += alpha``.

Cost per transaction is ``O(|Nin(u)| * nnz)`` - constant on average since
the TaN is scale-free (paper: average degree about 2.3) and ``p'`` stays
very sparse (mass concentrates on the ancestor shards).

``|Nout(v)|`` semantics: the paper divides by the size of ``Nout(v)``,
the set of transactions spending ``v``'s outputs, *as known when u
arrives* (it is never retroactively updated). That literal reading is the
default (``outdeg_mode="spenders"``). The alternative capacity reading -
divide by the number of outputs ``v`` created, i.e. the maximum possible
spenders - is available as ``outdeg_mode="outputs"`` and compared in the
ablation bench.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError, PlacementError

OUTDEG_MODES = ("spenders", "outputs")


class T2SScorer:
    """Incremental T2S scoring engine.

    Usage per arriving transaction::

        scores = scorer.add_transaction(txid, input_txids, n_outputs)
        shard = ...  # choose using scores (and L2S)
        scorer.place(txid, shard)

    ``add_transaction`` must be called in stream order (dense txids);
    ``place`` must be called exactly once per added transaction before
    the next one is added.
    """

    __slots__ = (
        "n_shards",
        "alpha",
        "outdeg_mode",
        "prune_epsilon",
        "_p_prime",
        "_spender_count",
        "_output_count",
        "_shard_sizes",
        "_pending",
        "_scale",
        "_spenders_divisor",
        "_min_mass",
    )

    def __init__(
        self,
        n_shards: int,
        alpha: float = 0.5,
        outdeg_mode: str = "spenders",
        prune_epsilon: float = 1e-12,
    ) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be in (0, 1], got {alpha}"
            )
        if outdeg_mode not in OUTDEG_MODES:
            raise ConfigurationError(
                f"outdeg_mode must be one of {OUTDEG_MODES}, got "
                f"{outdeg_mode!r}"
            )
        if prune_epsilon < 0:
            raise ConfigurationError(
                f"prune_epsilon must be >= 0, got {prune_epsilon}"
            )
        self.n_shards = n_shards
        self.alpha = alpha
        self.outdeg_mode = outdeg_mode
        self.prune_epsilon = prune_epsilon
        # p'(v) as sparse dict shard -> mass, per transaction.
        self._p_prime: list[dict[int, float]] = []
        # Spender count observed so far, per transaction.
        self._spender_count: list[int] = []
        # Output (UTXO) count, per transaction. Only maintained (and
        # only read) when outdeg_mode="outputs"; the default "spenders"
        # divisor never consults it, so the bookkeeping is skipped.
        self._output_count: list[int] = []
        self._shard_sizes = [0] * n_shards
        self._pending: int | None = None
        # Lower bound on the smallest mass of each vector (inf when
        # empty). When ``bound * factor`` clears prune_epsilon, a child
        # vector can skip the entry-by-entry pruning filter entirely.
        self._min_mass: list[float] = []
        # Hot-loop constants, hoisted out of add_transaction_raw.
        self._scale = 1.0 - alpha
        self._spenders_divisor = outdeg_mode == "spenders"

    # -- queries ---------------------------------------------------------

    @property
    def n_transactions(self) -> int:
        """Transactions added so far."""
        return len(self._p_prime)

    @property
    def shard_sizes(self) -> list[int]:
        """Copy of the per-shard placement counts ``|S_i|``."""
        return list(self._shard_sizes)

    def p_prime_of(self, txid: int) -> dict[int, float]:
        """Copy of the unnormalized vector of a transaction."""
        return dict(self._p_prime[txid])

    # -- the incremental recurrence ---------------------------------------

    def add_transaction(
        self,
        txid: int,
        input_txids: Sequence[int],
        n_outputs: int = 1,
    ) -> dict[int, float]:
        """Compute the T2S scores of an arriving transaction.

        Returns the *normalized* sparse score map ``{shard: p(u)[shard]}``
        (missing shards score 0). Registers ``u`` as a spender of each
        input, which is what advances ``|Nout(v)|`` for later arrivals.
        """
        self.add_transaction_raw(txid, input_txids, n_outputs)
        return self.normalized(txid)

    def add_transaction_raw(
        self,
        txid: int,
        input_txids: Sequence[int],
        n_outputs: int = 1,
    ) -> dict[int, float]:
        """Like :meth:`add_transaction` but returns the *unnormalized*
        ``p'(u)`` map, borrowed (not copied) from internal state.

        Callers must not mutate the returned dict; normalize an entry on
        the fly as ``mass / max(1, shard_sizes[shard])``. This is the
        placement hot path: it skips the normalized-dict allocation that
        :meth:`add_transaction` pays.
        """
        if self._pending is not None:
            raise PlacementError(
                f"transaction {self._pending} was added but never placed"
            )
        all_p_prime = self._p_prime
        if txid != len(all_p_prime):
            raise PlacementError(
                f"transactions must arrive in dense order: got {txid}, "
                f"expected {len(all_p_prime)}"
            )
        spender_count = self._spender_count
        scale = self._scale
        epsilon = self.prune_epsilon
        # Register u as a spender of each distinct input *before* reading
        # the divisor, so |Nout(v)| includes the edge that u itself just
        # created (a walk from u can only re-enter v's spenders through
        # an edge that exists).
        if len(input_txids) == 1:
            # Average TaN degree is ~2.3 with deduplicated parents, so a
            # single input is the dominant case: no distinct-dict, no
            # accumulation dict - one scaled copy of the parent vector.
            parent = input_txids[0]
            if not 0 <= parent < txid:
                raise PlacementError(
                    f"transaction {txid} has invalid input {parent}"
                )
            spender_count[parent] += 1
            p_prime: dict[int, float] = {}
            bound = math.inf
            if scale > 0.0:
                parent_vector = all_p_prime[parent]
                if parent_vector:
                    if self._spenders_divisor:
                        divisor = spender_count[parent]
                    else:
                        divisor = max(
                            self._output_count[parent],
                            spender_count[parent],
                        )
                    factor = scale / divisor
                    bound = self._min_mass[parent] * factor
                    if epsilon > 0.0 and bound <= epsilon:
                        # Something may fall below the pruning floor:
                        # filter entry by entry, then refresh the bound
                        # so descendants regain the fast path.
                        p_prime = {
                            shard: mass
                            for shard, raw in parent_vector.items()
                            if (mass := raw * factor) > epsilon
                        }
                        bound = (
                            min(p_prime.values()) if p_prime else math.inf
                        )
                    else:
                        # Every scaled mass provably clears the floor
                        # (scaling by a positive factor is monotone even
                        # after rounding), so the filter would keep
                        # everything - skip it.
                        p_prime = {
                            shard: raw * factor
                            for shard, raw in parent_vector.items()
                        }
        else:
            distinct: dict[int, None] = {}
            for parent in input_txids:
                if not 0 <= parent < txid:
                    raise PlacementError(
                        f"transaction {txid} has invalid input {parent}"
                    )
                distinct.setdefault(parent, None)
            for parent in distinct:
                spender_count[parent] += 1

            p_prime = {}
            if scale > 0.0:
                get = None
                for parent in distinct:
                    parent_vector = all_p_prime[parent]
                    if not parent_vector:
                        continue
                    if self._spenders_divisor:
                        divisor = spender_count[parent]
                    else:
                        divisor = max(
                            self._output_count[parent],
                            spender_count[parent],
                        )
                    factor = scale / divisor
                    if get is None:
                        # First contributing parent: a C-level dictcomp
                        # (0.0 + m*factor == m*factor bitwise).
                        p_prime = {
                            shard: mass * factor
                            for shard, mass in parent_vector.items()
                        }
                        get = p_prime.get
                    else:
                        for shard, mass in parent_vector.items():
                            p_prime[shard] = get(shard, 0.0) + mass * factor
            if epsilon > 0.0 and p_prime:
                p_prime = {
                    shard: mass
                    for shard, mass in p_prime.items()
                    if mass > epsilon
                }
            bound = min(p_prime.values()) if p_prime else math.inf
        all_p_prime.append(p_prime)
        self._min_mass.append(bound)
        spender_count.append(0)
        if not self._spenders_divisor:
            self._output_count.append(n_outputs if n_outputs > 1 else 1)
        self._pending = txid
        return p_prime

    def normalized(self, txid: int) -> dict[int, float]:
        """Normalized scores ``p(u)[i] = p'(u)[i] / |S_i|``.

        Empty shards divide by 1: a shard that holds nothing cannot hold
        ancestry, and its raw mass is necessarily 0 anyway.
        """
        return {
            shard: mass / max(1, self._shard_sizes[shard])
            for shard, mass in self._p_prime[txid].items()
        }

    def place(self, txid: int, shard: int) -> None:
        """Record the placement decision: ``p'(u)[shard] += alpha``."""
        if self._pending != txid:
            raise PlacementError(
                f"place({txid}) without matching add_transaction "
                f"(pending: {self._pending})"
            )
        if not 0 <= shard < self.n_shards:
            raise PlacementError(
                f"shard {shard} out of range [0, {self.n_shards})"
            )
        vector = self._p_prime[txid]
        vector[shard] = value = vector.get(shard, 0.0) + self.alpha
        min_mass = self._min_mass
        if value < min_mass[txid]:
            min_mass[txid] = value
        self._shard_sizes[shard] += 1
        self._pending = None

    def _divisor(self, parent: int) -> int:
        if self.outdeg_mode == "spenders":
            return self._spender_count[parent]
        return max(self._output_count[parent], self._spender_count[parent])


def t2s_reference_dense(
    arrivals: Sequence[tuple[int, Sequence[int], int]],
    placements: Sequence[int],
    n_shards: int,
    alpha: float = 0.5,
    outdeg_mode: str = "spenders",
) -> list[list[float]]:
    """Dense, no-pruning replay of the T2S recurrence (test oracle).

    ``arrivals`` is ``(txid, input_txids, n_outputs)`` in order;
    ``placements[txid]`` is the shard each transaction went to. Returns
    the *unnormalized* ``p'`` vectors after the full replay. The sparse
    incremental engine must agree with this up to pruning (exact when
    pruning is disabled).
    """
    if outdeg_mode not in OUTDEG_MODES:
        raise ConfigurationError(f"bad outdeg_mode {outdeg_mode!r}")
    p_prime: list[list[float]] = []
    spenders: list[int] = []
    outputs: list[int] = []
    for txid, input_txids, n_outputs in arrivals:
        distinct = list(dict.fromkeys(input_txids))
        for parent in distinct:
            spenders[parent] += 1
        vector = [0.0] * n_shards
        for parent in distinct:
            if outdeg_mode == "spenders":
                divisor = spenders[parent]
            else:
                divisor = max(outputs[parent], spenders[parent])
            for shard in range(n_shards):
                vector[shard] += (
                    (1.0 - alpha) * p_prime[parent][shard] / divisor
                )
        vector[placements[txid]] += alpha
        p_prime.append(vector)
        spenders.append(0)
        outputs.append(max(1, n_outputs))
    return p_prime
