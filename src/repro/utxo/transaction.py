"""Transactions, outputs, and outpoints for the UTXO model.

Transactions are immutable value objects. Transaction ids are plain
integers assigned by the producer (dataset generator or loader) in arrival
order; the TaN analysis in the paper relies on arrival order equalling
topological order, and integer ids make that property explicit and cheap
to check. A content hash is still available (:meth:`Transaction.digest`)
for components that need a Bitcoin-style identifier, e.g. the random
placement baseline that hashes transactions to shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import blake2b

from repro.errors import ValidationError

TxId = int


@dataclass(frozen=True, slots=True)
class OutPoint:
    """Reference to one output of one transaction: ``(txid, index)``."""

    txid: TxId
    index: int

    def __post_init__(self) -> None:
        if self.txid < 0:
            raise ValidationError(f"OutPoint txid must be >= 0, got {self.txid}")
        if self.index < 0:
            raise ValidationError(
                f"OutPoint index must be >= 0, got {self.index}"
            )


@dataclass(frozen=True, slots=True)
class TxOutput:
    """A newly created, lockable unit of value.

    ``address`` identifies the controlling wallet; the reproduction does
    not model signatures, so the address is an opaque integer label used
    by the dataset generator to create realistic spending locality.
    """

    value: int
    address: int = 0

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValidationError(f"TxOutput value must be >= 0, got {self.value}")


@dataclass(frozen=True, slots=True)
class Transaction:
    """An immutable UTXO transaction.

    ``inputs`` are outpoints of earlier transactions; an empty input list
    marks a *coinbase* transaction (mining reward), which is the only kind
    allowed to create value out of nothing. ``timestamp`` is the issue
    time in seconds used by the simulator's replay clock.
    """

    txid: TxId
    inputs: tuple[OutPoint, ...]
    outputs: tuple[TxOutput, ...]
    timestamp: float = 0.0
    size_bytes: int = 500
    fee: int = 0
    #: lazily cached content hash - experiment grids replay the same
    #: cached stream through dozens of simulations, and hash-based
    #: placement would otherwise recompute the identical digest each
    #: time. Not part of the value (init=False, compare=False), filled
    #: on first digest() call via object.__setattr__.
    _digest: bytes | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.txid < 0:
            raise ValidationError(f"txid must be >= 0, got {self.txid}")
        if self.size_bytes <= 0:
            raise ValidationError(
                f"size_bytes must be > 0, got {self.size_bytes}"
            )
        if self.fee < 0:
            raise ValidationError(f"fee must be >= 0, got {self.fee}")

    @property
    def is_coinbase(self) -> bool:
        """True when the transaction has no inputs (a mining reward)."""
        return not self.inputs

    @property
    def input_txids(self) -> tuple[TxId, ...]:
        """Distinct ids of the transactions whose outputs this tx spends.

        Order of first appearance is preserved so the TaN edge order is
        deterministic.
        """
        seen: dict[TxId, None] = {}
        for outpoint in self.inputs:
            seen.setdefault(outpoint.txid, None)
        return tuple(seen)

    @property
    def total_output_value(self) -> int:
        """Sum of all created output values."""
        return sum(output.value for output in self.outputs)

    def digest(self) -> bytes:
        """Content hash (BLAKE2b-160) over ids, inputs, and outputs.

        Used by the OmniLedger random-placement baseline, which assigns a
        transaction to ``hash(tx) mod k``. The message is assembled into
        one buffer and hashed in a single constructor call - a streaming
        hash over the concatenation is the same hash, and this runs on
        the simulator's per-transaction placement path. The result is
        cached on the (immutable) transaction, so grid sweeps that
        replay one stream through many simulations hash each
        transaction once.
        """
        digest = self._digest
        if digest is not None:
            return digest
        parts = [self.txid.to_bytes(8, "big")]
        append = parts.append
        for outpoint in self.inputs:
            append(outpoint.txid.to_bytes(8, "big"))
            append(outpoint.index.to_bytes(4, "big"))
        for output in self.outputs:
            append(output.value.to_bytes(8, "big", signed=False))
            append(output.address.to_bytes(8, "big", signed=True))
        digest = blake2b(b"".join(parts), digest_size=20).digest()
        object.__setattr__(self, "_digest", digest)
        return digest

    def shard_hash(self, n_shards: int) -> int:
        """Deterministic pseudo-random shard in ``[0, n_shards)``."""
        if n_shards <= 0:
            raise ValidationError(f"n_shards must be > 0, got {n_shards}")
        return int.from_bytes(self.digest()[:8], "big") % n_shards


@dataclass(slots=True)
class TransactionBuilder:
    """Convenience builder used by tests and examples.

    Collects inputs/outputs incrementally and produces an immutable
    :class:`Transaction`. Not used on generator hot paths (those build
    tuples directly).
    """

    txid: TxId
    timestamp: float = 0.0
    size_bytes: int = 500
    fee: int = 0
    _inputs: list[OutPoint] = field(default_factory=list)
    _outputs: list[TxOutput] = field(default_factory=list)

    def spend(self, txid: TxId, index: int) -> "TransactionBuilder":
        """Add an input spending output ``index`` of transaction ``txid``."""
        self._inputs.append(OutPoint(txid, index))
        return self

    def pay(self, value: int, address: int = 0) -> "TransactionBuilder":
        """Add an output of ``value`` locked to ``address``."""
        self._outputs.append(TxOutput(value, address))
        return self

    def build(self) -> Transaction:
        """Return the immutable transaction."""
        return Transaction(
            txid=self.txid,
            inputs=tuple(self._inputs),
            outputs=tuple(self._outputs),
            timestamp=self.timestamp,
            size_bytes=self.size_bytes,
            fee=self.fee,
        )
