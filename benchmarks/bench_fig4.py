"""Regenerates Fig. 4: system throughput (4a at top shards, 4b maxima).

Shape asserted: OptChain's maximum throughput is the highest of the four
methods (paper: +34.4% over OmniLedger at 16 shards), and its throughput
at the top shard count is non-decreasing in the offered rate.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import fig4


def test_fig4(benchmark, scale):
    cells = run_once(benchmark, lambda: fig4.run(scale))
    print()
    print(fig4.as_table(cells))
    best = fig4.max_throughput(cells)
    assert best["optchain"] >= best["omniledger"]
    assert best["optchain"] >= 0.95 * max(best.values())
    series = fig4.throughput_at_max_shards(cells)
    optchain = [thr for _, thr in series["optchain"]]
    assert all(b >= a * 0.9 for a, b in zip(optchain, optchain[1:]))
