"""Unit tests for the TaN online DAG."""

from __future__ import annotations

import pytest

from repro.errors import CycleError, DuplicateNodeError, MissingNodeError
from repro.txgraph.tan import TaNGraph


def diamond() -> TaNGraph:
    """0 <- 1, 0 <- 2, {1,2} <- 3 (3 spends from both 1 and 2)."""
    graph = TaNGraph()
    graph.add_node(0, [])
    graph.add_node(1, [0])
    graph.add_node(2, [0])
    graph.add_node(3, [1, 2])
    return graph


class TestConstruction:
    def test_counts(self):
        graph = diamond()
        assert graph.n_nodes == 4
        assert graph.n_edges == 4
        assert len(graph) == 4

    def test_duplicate_node_rejected(self):
        graph = diamond()
        with pytest.raises(DuplicateNodeError):
            graph.add_node(2, [])

    def test_gap_in_ids_rejected(self):
        graph = diamond()
        with pytest.raises(MissingNodeError):
            graph.add_node(10, [])

    def test_forward_edge_rejected(self):
        graph = diamond()
        with pytest.raises(CycleError):
            graph.add_node(4, [4])
        with pytest.raises(CycleError):
            graph.add_node(4, [5])

    def test_negative_input_rejected(self):
        graph = TaNGraph()
        with pytest.raises(MissingNodeError):
            graph.add_node(0, [-1])

    def test_duplicate_inputs_collapse(self):
        graph = TaNGraph()
        graph.add_node(0, [])
        graph.add_node(1, [0, 0, 0])
        assert graph.in_degree(1) == 1
        assert graph.n_edges == 1


class TestQueries:
    def test_inputs_and_spenders(self):
        graph = diamond()
        assert graph.inputs_of(3) == (1, 2)
        assert graph.spenders_of(0) == (1, 2)
        assert graph.spenders_of(3) == ()

    def test_degrees(self):
        graph = diamond()
        assert graph.in_degree(0) == 0
        assert graph.out_degree(0) == 2
        assert graph.in_degree(3) == 2
        assert graph.out_degree(3) == 0

    def test_coinbase_detection(self):
        graph = diamond()
        assert graph.is_coinbase(0)
        assert not graph.is_coinbase(3)
        assert graph.coinbase_nodes() == [0]

    def test_unspent_frontier(self):
        assert diamond().unspent_frontier() == [3]

    def test_undirected_neighbors(self):
        graph = diamond()
        assert sorted(graph.undirected_neighbors(1)) == [0, 3]

    def test_edges_iteration(self):
        assert sorted(diamond().edges()) == [(1, 0), (2, 0), (3, 1), (3, 2)]

    def test_missing_node_raises(self):
        graph = diamond()
        with pytest.raises(MissingNodeError):
            graph.inputs_of(7)
        with pytest.raises(MissingNodeError):
            graph.out_degree(-1)

    def test_contains(self):
        graph = diamond()
        assert 3 in graph
        assert 4 not in graph
        assert -1 not in graph


class TestFromTransactions:
    def test_matches_stream(self, small_stream, small_graph):
        assert small_graph.n_nodes == len(small_stream)
        for tx in small_stream[:200]:
            assert small_graph.inputs_of(tx.txid) == tx.input_txids

    def test_out_degree_counts_spenders(self, small_stream, small_graph):
        spender_counts: dict[int, int] = {}
        for tx in small_stream:
            for parent in tx.input_txids:
                spender_counts[parent] = spender_counts.get(parent, 0) + 1
        for txid in range(0, small_graph.n_nodes, 97):
            assert small_graph.out_degree(txid) == spender_counts.get(txid, 0)
