"""Plain-text table rendering for experiment output.

Every experiment prints its rows the way the paper's tables read, so a
terminal run of a benchmark is directly comparable against the PDF.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Floats are shown with 2 decimals; everything else via ``str``.
    """
    if not headers:
        raise ConfigurationError("table needs at least one column")
    rendered_rows = [
        [_cell(value) for value in row] for row in rows
    ]
    for index, row in enumerate(rendered_rows):
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {index} has {len(row)} cells for {len(headers)} "
                f"columns"
            )
    widths = [
        max(len(str(headers[col])), *(len(r[col]) for r in rendered_rows))
        if rendered_rows
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == float("inf"):
            return "inf"
        return f"{value:.2f}"
    return str(value)
