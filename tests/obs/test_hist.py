"""LogHistogram: bucket math, percentiles, merge exactness, wire form."""

from __future__ import annotations

import random

import pytest

from repro.obs.hist import LogHistogram


class TestIndexMath:
    def test_exact_region_one_bucket_per_tick(self):
        hist = LogHistogram(precision=5)
        for ticks in range(2 << 5):
            assert hist._index_of(ticks) == ticks

    def test_indices_monotone_and_bounds_partition_the_line(self):
        hist = LogHistogram(precision=3)
        previous = -1
        for ticks in range(0, 5_000):
            index = hist._index_of(ticks)
            assert index >= previous
            previous = index
            lo, hi = hist._bucket_bounds_ticks(index)
            assert lo <= ticks < hi

    def test_buckets_never_straddle_octave_boundary(self):
        # The Prometheus exporter's exact-cumulative-count contract.
        hist = LogHistogram(precision=5)
        for e in range(6, 27):
            boundary = 1 << e
            lo, _ = hist._bucket_bounds_ticks(hist._index_of(boundary))
            assert lo == boundary

    def test_relative_error_bound(self):
        precision = 4
        hist = LogHistogram(precision=precision)
        for ticks in (97, 1_234, 999_999, 123_456_789):
            lo, hi = hist._bucket_bounds_ticks(hist._index_of(ticks))
            assert (hi - lo) <= max(1, lo * 2**-precision)

    def test_bad_precision_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram(precision=13)
        with pytest.raises(ValueError):
            LogHistogram(precision=-1)


class TestRecordAndQuery:
    def test_empty(self):
        hist = LogHistogram()
        assert hist.count == 0
        assert hist.percentile(0.99) == 0.0
        assert hist.mean == 0.0
        assert hist.max == 0.0

    def test_negative_clamps_to_zero(self):
        hist = LogHistogram()
        hist.record(-1.0)
        assert hist.count == 1
        assert hist.max_tick == 0

    def test_percentile_conservative_bound(self):
        precision = 5
        hist = LogHistogram(precision=precision)
        rng = random.Random(42)
        values = [rng.uniform(1e-5, 2.0) for _ in range(5_000)]
        for value in values:
            hist.record(value)
        values.sort()
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = values[min(len(values) - 1, int(q * len(values)))]
            reported = hist.percentile(q)
            # Upper bucket edge: never more than one relative step high,
            # never below the value two ranks earlier.
            assert reported <= exact * (1 + 2**-precision) + 2e-6
            assert reported >= values[max(0, int(q * len(values)) - 2)] * (
                1 - 2**-precision
            )

    def test_percentile_never_exceeds_recorded_max(self):
        hist = LogHistogram()
        hist.record_ticks(1_000_003)
        assert hist.percentile(1.0) == pytest.approx(1.000003)

    def test_percentiles_sequence_form(self):
        hist = LogHistogram()
        for ticks in (10, 20, 30):
            hist.record_ticks(ticks)
        p50, p99 = hist.percentiles((0.5, 0.99))
        assert p50 == hist.percentile(0.5)
        assert p99 == hist.percentile(0.99)

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            LogHistogram().percentile(1.5)

    def test_sum_and_mean(self):
        hist = LogHistogram()
        hist.record_ticks(100, n=3)
        assert hist.count == 3
        assert hist.sum == pytest.approx(300 / 1e6)
        assert hist.mean == pytest.approx(100 / 1e6)


class TestMerge:
    def test_merge_equals_union_exactly(self):
        """The coordinator contract: merged percentiles == percentiles
        of one histogram fed the union of all values."""
        rng = random.Random(7)
        streams = [
            [rng.uniform(1e-6, 5.0) for _ in range(1_500)] for _ in range(3)
        ]
        parts = []
        union = LogHistogram()
        for stream in streams:
            part = LogHistogram()
            for value in stream:
                part.record(value)
                union.record(value)
            parts.append(part)
        merged = parts[0]
        for part in parts[1:]:
            merged.merge(part)
        assert merged.count == union.count
        assert merged.counts == union.counts
        assert merged.sum_ticks == union.sum_ticks
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0):
            assert merged.percentile(q) == union.percentile(q)

    def test_merge_precision_mismatch(self):
        with pytest.raises(ValueError):
            LogHistogram(precision=5).merge(LogHistogram(precision=4))


class TestWireForm:
    def test_snapshot_round_trip(self):
        hist = LogHistogram()
        rng = random.Random(3)
        for _ in range(500):
            hist.record(rng.expovariate(100))
        clone = LogHistogram.from_snapshot(hist.snapshot())
        assert clone.count == hist.count
        assert clone.counts == hist.counts
        assert clone.max_tick == hist.max_tick
        assert clone.percentile(0.99) == hist.percentile(0.99)

    def test_snapshot_json_safe(self):
        import json

        hist = LogHistogram()
        hist.record(0.01)
        restored = LogHistogram.from_snapshot(
            json.loads(json.dumps(hist.snapshot()))
        )
        assert restored.counts == hist.counts

    def test_merged_snapshots(self):
        a, b = LogHistogram(), LogHistogram()
        a.record_ticks(100, n=5)
        b.record_ticks(10_000, n=5)
        merged = LogHistogram.merged([a.snapshot(), b.snapshot()])
        assert merged.count == 10
        assert merged.percentile(0.4) == pytest.approx(
            100 / 1e6, rel=2**-5
        )

    def test_merged_empty_list(self):
        merged = LogHistogram.merged([], precision=6)
        assert merged.count == 0
        assert merged.precision == 6


class TestCumulative:
    def test_cumulative_exact_at_aligned_edges(self):
        from repro.obs.prom import DEFAULT_EDGES_TICKS

        hist = LogHistogram()
        rng = random.Random(11)
        ticks = [rng.randrange(1, 50_000_000) for _ in range(3_000)]
        for t in ticks:
            hist.record_ticks(t)
        cumulative = hist.cumulative_ticks(DEFAULT_EDGES_TICKS)
        for edge, count in zip(DEFAULT_EDGES_TICKS, cumulative):
            assert count == sum(1 for t in ticks if t <= edge)
