"""Golden equivalence: fast placement paths == seed implementations.

The optimized hot paths (lazy-decay proxy, fused fitness argmax, sparse
capped baselines, the batch ``place_stream`` loop) must produce
placements *identical* to the seed code for fixed seeds - not merely
statistically similar. The seed decision logic is preserved verbatim in
:mod:`repro.core._seed_reference`; these tests replay shared streams
through both and compare the full assignment.
"""

from __future__ import annotations

import pytest

from repro.core._seed_reference import (
    SeedGreedyPlacer,
    SeedOptChainPlacer,
    SeedT2SOnlyPlacer,
)
from repro.core.baselines import GreedyPlacer, T2SOnlyPlacer
from repro.core.l2s import ShardLatencyModel
from repro.core.optchain import OptChainPlacer
from repro.core.placement import make_placer
from repro.datasets.synthetic import GeneratorConfig, synthetic_stream

N_TX = 4_000


@pytest.fixture(scope="module")
def golden_stream():
    """Denser-than-default stream: more multi-input transactions and
    deeper ancestry exercise every branch of the fused argmax."""
    config = GeneratorConfig(
        n_wallets=400, coinbase_interval=150, bootstrap_coinbase=25
    )
    return synthetic_stream(N_TX, seed=1234, config=config)


@pytest.mark.parametrize("n_shards", [4, 16])
class TestOptChainGolden:
    def test_proxy_path(self, golden_stream, n_shards):
        fast = OptChainPlacer(n_shards).place_stream(golden_stream)
        seed = SeedOptChainPlacer(n_shards).place_stream(golden_stream)
        assert fast == seed

    def test_proxy_path_per_transaction(self, golden_stream, n_shards):
        """place() in a loop hits _fused_choose instead of the batch
        loop; both must match the seed."""
        placer = OptChainPlacer(n_shards)
        fast = [placer.place(tx) for tx in golden_stream]
        seed = SeedOptChainPlacer(n_shards).place_stream(golden_stream)
        assert fast == seed

    def test_no_provider_path(self, golden_stream, n_shards):
        fast = OptChainPlacer(
            n_shards, latency_provider=None
        ).place_stream(golden_stream)
        seed = SeedOptChainPlacer(
            n_shards, latency_provider=None
        ).place_stream(golden_stream)
        assert fast == seed

    def test_generic_provider_path(self, golden_stream, n_shards):
        """A plain callable provider (static skewed models) exercises the
        long-lived-estimator path against the per-transaction rebuild."""
        models = [
            ShardLatencyModel(lambda_c=10.0, lambda_v=1.0 / (1.0 + j))
            for j in range(n_shards)
        ]
        fast = OptChainPlacer(
            n_shards, latency_provider=lambda: models
        ).place_stream(golden_stream)
        seed = SeedOptChainPlacer(
            n_shards, latency_provider=lambda: models
        ).place_stream(golden_stream)
        assert fast == seed

    def test_warm_start(self, golden_stream, n_shards):
        """Forced prefix + placed suffix must match the seed's."""
        seed = SeedOptChainPlacer(n_shards)
        reference = seed.place_stream(golden_stream)
        half = N_TX // 2
        fast = OptChainPlacer(n_shards)
        for tx, shard in zip(golden_stream[:half], reference[:half]):
            fast.force_place(tx, shard)
        for tx in golden_stream[half:]:
            fast.place(tx)
        assert fast.assignment() == reference


@pytest.mark.parametrize("n_shards", [4, 16])
class TestBaselineGolden:
    def test_t2s_random_tie_break(self, golden_stream, n_shards):
        """Random tie-breaking consumes the RNG; identical placements
        prove the fast path draws at exactly the same points with
        exactly the same tied sets."""
        fast = T2SOnlyPlacer(
            n_shards, expected_total=N_TX, seed=7
        ).place_stream(golden_stream)
        seed = SeedT2SOnlyPlacer(
            n_shards, expected_total=N_TX, seed=7
        ).place_stream(golden_stream)
        assert fast == seed

    def test_t2s_online_cap(self, golden_stream, n_shards):
        fast = T2SOnlyPlacer(n_shards, seed=3).place_stream(golden_stream)
        seed = SeedT2SOnlyPlacer(n_shards, seed=3).place_stream(
            golden_stream
        )
        assert fast == seed

    @pytest.mark.parametrize("tie_break", ["first", "lightest"])
    def test_t2s_deterministic_tie_breaks(
        self, golden_stream, n_shards, tie_break
    ):
        fast = T2SOnlyPlacer(
            n_shards, expected_total=N_TX, tie_break=tie_break
        ).place_stream(golden_stream)
        seed = SeedT2SOnlyPlacer(
            n_shards, expected_total=N_TX, tie_break=tie_break
        ).place_stream(golden_stream)
        assert fast == seed

    def test_greedy(self, golden_stream, n_shards):
        fast = GreedyPlacer(n_shards, seed=11).place_stream(golden_stream)
        seed = SeedGreedyPlacer(n_shards, seed=11).place_stream(
            golden_stream
        )
        assert fast == seed


def test_seed_strategies_registered():
    """The benchmark builds seed placers through the factory."""
    for name in ("optchain_seed", "t2s_seed", "greedy_seed"):
        placer = make_placer(name, 4)
        assert placer.n_shards == 4


class TestBatchErrorPaths:
    """The fused batch loop must fail exactly like the per-tx path."""

    @staticmethod
    def _tx(txid, parents):
        from repro.utxo.transaction import OutPoint, Transaction, TxOutput

        return Transaction(
            txid=txid,
            inputs=tuple(OutPoint(p, 0) for p in parents),
            outputs=(TxOutput(1),),
        )

    def _warm_placer(self):
        placer = OptChainPlacer(4)
        placer.place_stream([self._tx(0, []), self._tx(1, [0])])
        return placer

    def test_invalid_single_parent(self):
        from repro.errors import PlacementError

        placer = self._warm_placer()
        with pytest.raises(PlacementError, match="invalid input 7"):
            placer.place_stream([self._tx(2, [7])])

    def test_invalid_later_parent_leaves_state_untouched(self):
        from repro.errors import PlacementError

        placer = self._warm_placer()
        before = list(placer.scorer._spender_count)
        with pytest.raises(PlacementError, match="invalid input 5"):
            placer.place_stream([self._tx(2, [0, 5])])
        # Validation happens before any spender count moves, exactly as
        # in T2SScorer.add_transaction_raw.
        assert placer.scorer._spender_count == before

    def test_dense_order_enforced(self):
        from repro.errors import PlacementError

        placer = self._warm_placer()
        with pytest.raises(PlacementError, match="dense stream order"):
            placer.place_stream([self._tx(9, [])])
