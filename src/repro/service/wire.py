"""Wire codec for the placement service (newline-delimited JSON).

One request or response per line. Every request carries an ``op`` and a
client-chosen ``id`` that the response echoes, so clients may pipeline.

Transactions travel in a compact array form::

    [txid, [[parent_txid, output_index], ...], n_outputs]

``n_outputs`` may instead be a list of ``[value, address]`` pairs
(``encode_tx(..., full_outputs=True)``) when output *content* matters -
placement itself only reads the output count, but hash-based strategies
(``omniledger``) fold output values into the transaction digest, so
replaying through the wire with bare counts would change their
placements. OptChain and the capped baselines are count-only.

Requests::

    {"op": "place",      "id": 1, "txs": [...]}        -> {"id": 1, "ok": true, "shards": [...]}
    {"op": "stats",      "id": 2}                      -> {"id": 2, "ok": true, "stats": {...}}
    {"op": "checkpoint", "id": 3, "path": "x.snap"?}   -> {"id": 3, "ok": true, "path": ..., "bytes": n}
    {"op": "ping",       "id": 4}                      -> {"id": 4, "ok": true, "n_placed": n}
    {"op": "shutdown",   "id": 5}                      -> {"id": 5, "ok": true}  (then drain + close)

Errors: ``{"id": ..., "ok": false, "error": "...", "code": "protocol" |
"engine" | "shutdown"}``. Protocol errors are the client's fault (bad
JSON, unknown op, oversized batch); engine errors are serving-contract
violations (out-of-order txids, double spends) - both leave the server
serving.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ProtocolError
from repro.utxo.transaction import OutPoint, Transaction, TxOutput

#: Wire-format/protocol revision, echoed by ``ping``.
PROTOCOL_VERSION = 1

#: Output-count ceiling per transaction: far above any real workload
#: (the generator's exchange payouts top out at 40) while keeping a
#: hostile count from ballooning the decoded tuple and the engine's
#: per-output spend bitmask.
MAX_OUTPUTS_PER_TX = 65_536

OPS = ("place", "stats", "checkpoint", "ping", "shutdown")


def encode_tx(tx: Transaction, full_outputs: bool = False) -> list[Any]:
    """Compact array form of one transaction."""
    outputs: Any
    if full_outputs:
        outputs = [[out.value, out.address] for out in tx.outputs]
    else:
        outputs = len(tx.outputs)
    return [
        tx.txid,
        [[op.txid, op.index] for op in tx.inputs],
        outputs,
    ]


def decode_tx(obj: Any) -> Transaction:
    """Rebuild a :class:`Transaction` from the wire form.

    Raises :class:`~repro.errors.ProtocolError` on malformed input; the
    message is safe to echo back to the client.
    """
    if not isinstance(obj, (list, tuple)) or len(obj) != 3:
        raise ProtocolError(
            "transaction must be [txid, inputs, outputs], got "
            f"{type(obj).__name__}"
        )
    txid, inputs, outputs = obj
    if not isinstance(txid, int) or isinstance(txid, bool) or txid < 0:
        raise ProtocolError(f"txid must be a non-negative int, got {txid!r}")
    if not isinstance(inputs, (list, tuple)):
        raise ProtocolError("inputs must be a list of [txid, index] pairs")
    decoded_inputs = []
    for entry in inputs:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or not isinstance(entry[0], int)
            or not isinstance(entry[1], int)
            or isinstance(entry[0], bool)
            or isinstance(entry[1], bool)
            or entry[0] < 0
            or entry[1] < 0
        ):
            raise ProtocolError(
                f"input must be [parent_txid, output_index], got {entry!r}"
            )
        decoded_inputs.append(OutPoint(entry[0], entry[1]))
    if isinstance(outputs, int) and not isinstance(outputs, bool):
        if not 0 <= outputs <= MAX_OUTPUTS_PER_TX:
            raise ProtocolError(
                f"n_outputs must be in [0, {MAX_OUTPUTS_PER_TX}], "
                f"got {outputs}"
            )
        decoded_outputs = tuple(TxOutput(0) for _ in range(outputs))
    elif isinstance(outputs, (list, tuple)):
        if len(outputs) > MAX_OUTPUTS_PER_TX:
            raise ProtocolError(
                f"transaction has {len(outputs)} outputs; the limit "
                f"is {MAX_OUTPUTS_PER_TX}"
            )
        decoded = []
        for entry in outputs:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not isinstance(entry[0], int)
                or not isinstance(entry[1], int)
            ):
                raise ProtocolError(
                    f"output must be [value, address], got {entry!r}"
                )
            decoded.append(TxOutput(value=entry[0], address=entry[1]))
        decoded_outputs = tuple(decoded)
    else:
        raise ProtocolError(
            "outputs must be an int count or a list of [value, address]"
        )
    return Transaction(
        txid=txid, inputs=tuple(decoded_inputs), outputs=decoded_outputs
    )


def decode_batch(objs: Any) -> list[Transaction]:
    """Decode a ``place`` payload; enforces a contiguous txid run.

    The server's reorder buffer keys each request by its first txid and
    merges contiguous runs, so a request with internal gaps could never
    be dispatched - rejected here with a precise message instead.
    """
    if not isinstance(objs, (list, tuple)):
        raise ProtocolError("txs must be a list")
    if not objs:
        raise ProtocolError("txs must not be empty")
    batch = [decode_tx(entry) for entry in objs]
    first = batch[0].txid
    for index, tx in enumerate(batch):
        if tx.txid != first + index:
            raise ProtocolError(
                f"txs must form a contiguous txid run: position {index} "
                f"has txid {tx.txid}, expected {first + index}"
            )
    return batch


def encode_batch(
    txs: Sequence[Transaction], full_outputs: bool = False
) -> list[list[Any]]:
    """Encode a batch for a ``place`` request."""
    return [encode_tx(tx, full_outputs) for tx in txs]
