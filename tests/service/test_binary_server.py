"""The binary frame codec end to end against the single-process server.

What matters here: the binary lane is *semantically invisible* - same
placements, same stats, same errors as the NDJSON lane - and the two
codecs coexist on one port (the server sniffs the first byte per
connection).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.placement import make_placer
from repro.datasets.synthetic import synthetic_stream
from repro.errors import EngineError, ProtocolError
from repro.service import wire
from repro.service.client import (
    AsyncBinaryPlacementClient,
    AsyncPlacementClient,
    BinaryPlacementClient,
    async_client_class,
    client_class,
)
from repro.service.engine import PlacementEngine
from repro.service.loadgen import run_loadgen_async
from repro.service.server import PlacementServer

N_SHARDS = 4


@pytest.fixture(scope="module")
def stream():
    return synthetic_stream(2_000, seed=31)


def run_with_server(test_coro, **server_kwargs):
    async def main():
        engine = server_kwargs.pop("engine", None) or PlacementEngine(
            make_placer("optchain", N_SHARDS), epoch_length=500
        )
        server = PlacementServer(engine, port=0, **server_kwargs)
        await server.start()
        try:
            await test_coro(server)
        finally:
            await server.stop()

    asyncio.run(main())


class TestBinaryOps:
    def test_place_stats_ping_shutdown(self, stream, tmp_path):
        snapshot = tmp_path / "bin.snap"

        async def scenario(server):
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            ping = await client.ping()
            assert ping["protocol"] == wire.PROTOCOL_VERSION
            shards = await client.place(stream[:300])
            assert len(shards) == 300
            stats = await client.stats()
            assert stats["n_placed"] == 300
            checkpoint = await client.checkpoint(str(snapshot))
            assert checkpoint["bytes"] > 0
            await client.shutdown()
            await server.wait_stopped()
            await client.close()

        run_with_server(scenario)
        assert snapshot.exists()

    def test_binary_placements_match_local(self, stream):
        expected = make_placer("optchain", N_SHARDS).place_stream(
            stream[:800]
        )

        async def scenario(server):
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            served = []
            for offset in range(0, 800, 160):
                served.extend(
                    await client.place(stream[offset : offset + 160])
                )
            assert served == expected
            await client.close()

        run_with_server(scenario)

    def test_engine_error_surfaces(self, stream):
        async def scenario(server):
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            original = await client.place(stream[:100])
            # A full resubmission is answered idempotently with the
            # recorded shards (client retries after lost responses)...
            assert await client.place(stream[:100]) == original
            # ...but a partial overlap is an engine error.
            with pytest.raises(EngineError, match="already placed"):
                await client.place(stream[50:150])
            # The connection keeps serving after the error.
            assert len(await client.place(stream[100:200])) == 100
            await client.close()

        run_with_server(scenario)

    def test_oversized_batch_rejected(self, stream):
        async def scenario(server):
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            with pytest.raises(ProtocolError, match="max_batch_txs"):
                await client.place(stream[:200])
            assert len(await client.place(stream[:100])) == 100
            await client.close()

        run_with_server(scenario, max_batch_txs=100)

    def test_blocking_binary_client(self, stream):
        async def scenario(server):
            def blocking():
                with BinaryPlacementClient(port=server.port) as client:
                    assert client.ping()["ok"]
                    assert len(client.place(stream[:50])) == 50
                    assert client.stats()["n_placed"] == 50

            await asyncio.to_thread(blocking)

        run_with_server(scenario)


class TestMixedProtocols:
    def test_json_and_binary_share_one_stream(self, stream):
        expected = make_placer("optchain", N_SHARDS).place_stream(
            stream[:400]
        )

        async def scenario(server):
            json_client = await AsyncPlacementClient.connect(
                port=server.port
            )
            bin_client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            served = []
            for index, offset in enumerate(range(0, 400, 100)):
                client = json_client if index % 2 else bin_client
                served.extend(
                    await client.place(stream[offset : offset + 100])
                )
            assert served == expected
            # Both codecs report the same protocol revision.
            assert (await json_client.ping())["protocol"] == (
                await bin_client.ping()
            )["protocol"]
            await json_client.close()
            await bin_client.close()

        run_with_server(scenario)

    def test_sequencer_reorders_across_codecs(self, stream):
        async def scenario(server):
            json_client = await AsyncPlacementClient.connect(
                port=server.port
            )
            bin_client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            # The binary request arrives first but must wait for the
            # JSON request that owns the earlier txid range.
            later = bin_client.place_nowait(stream[100:200])
            await asyncio.sleep(0.05)
            assert len(await json_client.place(stream[:100])) == 100
            result = await asyncio.wait_for(later, timeout=5)
            assert result["ok"] is True
            assert len(result["shards"]) == 100
            await json_client.close()
            await bin_client.close()

        run_with_server(scenario)


class TestBinaryFraming:
    def test_garbage_after_magic_closes_with_error(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            # A valid magic byte followed by an oversized length.
            writer.write(
                bytes([wire.BIN_MAGIC])
                + wire.encode_frame(wire.KIND_PING, 1)[1:10]
                + (2**31 - 1).to_bytes(4, "little")
            )
            await writer.drain()
            header = await asyncio.wait_for(
                reader.readexactly(wire.FRAME_HEADER_BYTES), timeout=5
            )
            kind, _, length = wire.decode_frame_header(header)
            payload = await reader.readexactly(length)
            response = wire.decode_response(kind, payload)
            assert response["ok"] is False
            assert response["code"] == "protocol"
            writer.close()

        run_with_server(scenario)

    def test_mid_frame_disconnect_leaves_server_serving(self, stream):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            frame = wire.encode_place_request(1, stream[:100])
            writer.write(frame[: len(frame) // 2])
            await writer.drain()
            writer.close()
            # The half-frame never dispatched; a new client owns the
            # stream from txid 0.
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            assert len(await client.place(stream[:100])) == 100
            await client.close()

        run_with_server(scenario)


class TestLoadgenProtocols:
    def test_loadgen_binary_and_json_agree(self, stream):
        expected = make_placer("optchain", N_SHARDS).place_stream(
            stream
        )

        async def scenario(server):
            report = await run_loadgen_async(
                port=server.port,
                stream=stream[:1000],
                n_users=4,
                chunk_size=100,
                proto="binary",
            )
            assert report.errors == 0
            assert report.proto == "binary"
            json_report = await run_loadgen_async(
                port=server.port,
                stream=stream[1000:2000],
                n_users=4,
                chunk_size=100,
                proto="json",
            )
            assert json_report.errors == 0
            assert server.engine.placer.assignment() == expected

        run_with_server(scenario)


class TestFactories:
    def test_protocol_factories(self):
        assert client_class("binary") is BinaryPlacementClient
        assert async_client_class("json") is AsyncPlacementClient
        with pytest.raises(Exception, match="proto"):
            async_client_class("carrier-pigeon")
