"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` on this toolchain needs the
legacy ``setup.py develop`` path; all real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
