"""Cross-shard atomic commit protocols.

Implements the transaction lifecycle of §III-A:

**OmniLedger (lock / proof-of-acceptance / unlock-to-commit)**

1. The client sends the transaction to every *input shard* (shards
   holding its inputs). Same-shard transactions skip to a single ``tx``
   entry at their own shard.
2. Each input shard validates and locks the inputs by committing a
   ``lock`` entry in a block, then gossips a proof-of-acceptance back to
   the client.
3. Once the client holds every proof it sends an unlock-to-commit to the
   output shard, which commits a ``commit`` entry in a block - the
   transaction is confirmed.

**RapidChain ("yanking")**

Input shards commit the lock and then forward ("yank") the inputs
*directly* to the output shard - no client round trip. The output shard
enqueues the final transaction once every yank arrived.

Both protocols charge one block slot per involved shard, reproducing the
paper's cost model (a 2-input/1-output cross-TX triples communication and
computation). Validity is guaranteed upstream by the workload generator,
so proof-of-rejection paths exist only for failure injection
(``abort_txids``).

Every network hop is a typed event record whose handler is a bound
method cached at construction (accepted and rejected proofs get separate
handlers so the payload fits the two record slots); without ledger
validation, deliveries go straight to the destination shard's cached
``enqueue``. The seed protocol - one closure per hop - is preserved in
:class:`repro.simulator._seed_reference.SeedAtomicCommitProtocol`.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappush
from typing import Callable, Sequence

from repro.errors import SimulationError
from repro.simulator.config import SimulationConfig
from repro.simulator.events import EventQueue
from repro.simulator.ledger import CONFLICT, MISSING, OK, ShardLedger
from repro.simulator.network import Network
from repro.simulator.shard import KIND_COMMIT, KIND_LOCK, KIND_TX, Entry, Shard
from repro.utxo.transaction import OutPoint, Transaction

PROOF_BYTES = 200  # proof-of-acceptance / rejection message
UNLOCK_BYTES = 300  # unlock-to-commit / unlock-to-abort message
YANK_BYTES = 600  # yanked inputs + transaction


# Client-side state for one in-flight cross-shard transaction is a
# plain 4-slot list (one allocation, no dataclass __init__ frame on the
# submit hot path); these constants name the slots. The seed protocol
# keeps the original dataclass.
_P_OUTPUT = 0  # output shard id
_P_AWAITING = 1  # proofs still outstanding
_P_REJECTED = 2  # any proof-of-rejection seen
_P_ACCEPTED = 3  # shards whose locks succeeded (unlocked on abort)


@dataclass(slots=True)
class _TxInfo:
    """Ledger-validation bookkeeping for one submitted transaction."""

    n_outputs: int
    output_shard: int
    #: shard -> the input outpoints that shard is responsible for
    inputs_by_shard: dict[int, list[OutPoint]]


class AtomicCommitProtocol:
    """Routes transactions through shards and reports confirmations."""

    __slots__ = (
        "_config",
        "_network",
        "_shards",
        "_events",
        "_on_confirmed",
        "_on_aborted",
        "_abort_txids",
        "_pending",
        "_omniledger",
        "_delay",
        "_schedule",
        "_heap",
        "_seq",
        "_prop",
        "_prop_client",
        "_bandwidth",
        "_no_jitter",
        "_jitter_lo",
        "_jitter_span",
        "_rand",
        "_proof_trans",
        "_unlock_trans",
        "_yank_trans",
        "_enqueue_direct",
        "_h_try_enqueue",
        "_h_proof_accepted",
        "_h_proof_rejected",
        "_h_deliver_abort",
        "n_cross",
        "n_same_shard",
        "n_aborted",
        "n_parked",
        "bytes_same_shard",
        "bytes_cross",
        "validate_ledger",
        "ledgers",
        "_tx_info",
        "_parked",
    )

    def __init__(
        self,
        config: SimulationConfig,
        network: Network,
        shards: Sequence[Shard],
        events: EventQueue,
        on_confirmed: Callable[[int], None],
        on_aborted: Callable[[int], None] | None = None,
        abort_txids: set[int] | None = None,
    ) -> None:
        self._config = config
        self._network = network
        self._shards = shards
        self._events = events
        self._on_confirmed = on_confirmed
        self._on_aborted = on_aborted or (lambda txid: None)
        self._abort_txids = abort_txids or set()
        #: txid -> [_P_OUTPUT, _P_AWAITING, _P_REJECTED, _P_ACCEPTED]
        self._pending: dict[int, list] = {}
        self._omniledger = config.protocol == "omniledger"
        self.n_cross = 0
        self.n_same_shard = 0
        self.n_aborted = 0
        self.n_parked = 0  # dependency-parking events (validation mode)
        # Bandwidth accounting (§III-B: a cross-TX should cost about 3x
        # a same-shard transaction in communication).
        self.bytes_same_shard = 0
        self.bytes_cross = 0
        # Ledger validation (config.validate_ledger): real per-shard
        # UTXO state, dependency parking, natural conflict rejection.
        self.validate_ledger = config.validate_ledger
        self.ledgers: list[ShardLedger] = [
            ShardLedger(shard.shard_id) for shard in shards
        ]
        self._tx_info: dict[int, _TxInfo] = {}
        # Per shard: missing outpoint -> entries parked on it.
        self._parked: list[dict[OutPoint, list[Entry]]] = [
            {} for _ in shards
        ]
        # Long-lived typed-event handlers: allocated once here, reused
        # for every scheduled record. Without ledger validation a
        # delivery is exactly ``shard.enqueue(entry)``, so the record
        # can target the destination shard's cached bound method and
        # skip the admission-control frame entirely.
        self._delay = network.delay
        self._schedule = events.schedule_event
        # The per-message fast paths compile the network model and the
        # event queue into this object: propagation rows, precomputed
        # transmission times for the protocol's fixed-size messages, the
        # jitter unroll, and direct access to the typed-record heap.
        # Every inlined expression mirrors Network.delay /
        # EventQueue.schedule_event term for term (grouping included),
        # so delays and orderings stay bit-identical to the seed loop.
        self._heap = events._heap
        self._seq = events._sequence
        self._prop = network._prop
        self._prop_client = network._prop[Network.CLIENT]
        self._bandwidth = network._bandwidth
        self._no_jitter = config.latency_jitter == 0.0
        self._jitter_lo = network._jitter_lo
        self._jitter_span = network._jitter_span
        self._rand = network._random
        self._proof_trans = PROOF_BYTES / network._bandwidth
        self._unlock_trans = UNLOCK_BYTES / network._bandwidth
        self._yank_trans = YANK_BYTES / network._bandwidth
        self._enqueue_direct = [shard.enqueue for shard in shards]
        self._h_try_enqueue = self._try_enqueue
        self._h_proof_accepted = self._proof_accepted
        self._h_proof_rejected = self._proof_rejected
        self._h_deliver_abort = self._deliver_abort

    # -- submission --------------------------------------------------------

    def submit(
        self,
        tx: Transaction,
        output_shard: int,
        input_shards: set[int],
        inputs_by_shard: dict[int, list[OutPoint]] | None = None,
    ) -> None:
        """Start the commit protocol for a freshly placed transaction.

        ``inputs_by_shard`` maps each input shard to the outpoints it is
        responsible for; required when ledger validation is on.
        """
        if self.validate_ledger:
            if inputs_by_shard is None:
                raise SimulationError(
                    "ledger validation needs inputs_by_shard per submit"
                )
            self._tx_info[tx.txid] = _TxInfo(
                n_outputs=len(tx.outputs),
                output_shard=output_shard,
                inputs_by_shard=inputs_by_shard,
            )
        size_bytes = tx.size_bytes
        txid = tx.txid
        cross = bool(input_shards) and (
            len(input_shards) != 1 or output_shard not in input_shards
        )
        if self.validate_ledger:
            # Admission control per message: take the generic path.
            if not cross:
                self.n_same_shard += 1
                self.bytes_same_shard += size_bytes
                self._send_to_shard(
                    output_shard, (KIND_TX, txid), size_bytes
                )
                return
            self.n_cross += 1
            self.bytes_cross += len(input_shards) * size_bytes
            self._pending[txid] = [output_shard, len(input_shards), False, []]
            for shard in input_shards:
                self._send_to_shard(shard, (KIND_LOCK, txid), size_bytes)
            return
        # Fast path (the paper's evaluation mode): client -> shard
        # deliveries inlined - Network.delay and the typed-record push,
        # term for term.
        now = self._events._now
        prop_client = self._prop_client
        transmission = size_bytes / self._bandwidth
        heap = self._heap
        seq = self._seq
        enqueue = self._enqueue_direct
        if not cross:
            self.n_same_shard += 1
            self.bytes_same_shard += size_bytes
            base = prop_client[output_shard] + transmission
            if not self._no_jitter:
                base = base * (
                    1.0
                    + (self._jitter_lo + self._jitter_span * self._rand())
                )
            heappush(
                heap,
                (now + base, next(seq), enqueue[output_shard],
                 (KIND_TX, txid), None),
            )
            return
        self.n_cross += 1
        self.bytes_cross += len(input_shards) * size_bytes
        self._pending[txid] = [output_shard, len(input_shards), False, []]
        entry = (KIND_LOCK, txid)
        for shard in input_shards:
            base = prop_client[shard] + transmission
            if not self._no_jitter:
                base = base * (
                    1.0
                    + (self._jitter_lo + self._jitter_span * self._rand())
                )
            heappush(
                heap, (now + base, next(seq), enqueue[shard], entry, None)
            )

    # -- shard callbacks -----------------------------------------------------

    def entry_committed(self, shard_id: int, entry: Entry) -> None:
        """A shard committed a block entry; advance the state machine.

        Branches are ordered by frequency under the paper's random
        placement (locks > commits > same-shard transactions); the lock
        branch inlines the proof delivery of :meth:`_route_proof`.
        """
        kind, txid = entry  # positional: Entry or a plain (kind, txid)
        if kind == KIND_LOCK:
            state = self._pending.get(txid)
            if state is None:
                raise SimulationError(
                    f"lock committed for unknown transaction {txid}"
                )
            accepted = txid not in self._abort_txids
            if accepted and self.validate_ledger:
                accepted = self._lock_inputs(shard_id, txid)
            if self._omniledger:
                # Proof travels shard -> client; the client reacts.
                # (-1 is Network.CLIENT, indexing the table's last row.)
                self.bytes_cross += PROOF_BYTES
                base = self._prop[shard_id][-1] + self._proof_trans
            else:  # rapidchain: yank input shard -> output shard
                self.bytes_cross += YANK_BYTES
                base = (
                    self._prop[shard_id][state[_P_OUTPUT]]
                    + self._yank_trans
                )
            if not self._no_jitter:
                base = base * (
                    1.0
                    + (self._jitter_lo + self._jitter_span * self._rand())
                )
            heappush(
                self._heap,
                (
                    self._events._now + base,
                    next(self._seq),
                    self._h_proof_accepted
                    if accepted
                    else self._h_proof_rejected,
                    txid,
                    shard_id,
                ),
            )
            return
        if kind == KIND_COMMIT:
            if self.validate_ledger:
                self._register_outputs(shard_id, txid)
                self._tx_info.pop(txid, None)
            self._on_confirmed(txid)
            return
        if kind != KIND_TX:
            raise SimulationError(f"unknown entry kind {kind!r}")
        if self.validate_ledger and not self._apply_same_shard(
            shard_id, txid
        ):
            return  # conflict: the abort path already ran
        self._on_confirmed(txid)

    def _route_proof(self, shard_id: int, txid: int, accepted: bool) -> None:
        """Deliver a proof-of-acceptance/rejection for one lock.

        The common case runs inlined inside ``entry_committed``; this
        method serves the rarer validation-mode rejections
        (``_try_enqueue`` conflicts).
        """
        state = self._pending.get(txid)
        if state is None:
            raise SimulationError(
                f"protocol event for non-pending transaction {txid}"
            )
        if self._omniledger:
            # Proof travels shard -> client; the client reacts.
            self.bytes_cross += PROOF_BYTES
            base = self._prop[shard_id][Network.CLIENT] + self._proof_trans
        else:  # rapidchain: yank directly input shard -> output shard
            self.bytes_cross += YANK_BYTES
            base = (
                self._prop[shard_id][state[_P_OUTPUT]] + self._yank_trans
            )
        if not self._no_jitter:
            base = base * (
                1.0 + (self._jitter_lo + self._jitter_span * self._rand())
            )
        heappush(
            self._heap,
            (
                self._events._now + base,
                next(self._seq),
                self._h_proof_accepted if accepted else self._h_proof_rejected,
                txid,
                shard_id,
            ),
        )

    # -- coordinator state machine ---------------------------------------------
    # (the client under OmniLedger, the output shard under RapidChain)

    def _proof_accepted(self, txid: int, shard_id: int) -> None:
        state = self._pending.get(txid)
        if state is None:
            raise SimulationError(
                f"protocol event for non-pending transaction {txid}"
            )
        awaiting = state[_P_AWAITING] - 1
        state[_P_AWAITING] = awaiting
        state[_P_ACCEPTED].append(shard_id)
        if awaiting > 0:
            return
        self._all_proofs_in(txid, state)

    def _proof_rejected(self, txid: int, shard_id: int) -> None:
        state = self._pending.get(txid)
        if state is None:
            raise SimulationError(
                f"protocol event for non-pending transaction {txid}"
            )
        awaiting = state[_P_AWAITING] - 1
        state[_P_AWAITING] = awaiting
        state[_P_REJECTED] = True
        if awaiting > 0:
            return
        self._all_proofs_in(txid, state)

    def _all_proofs_in(self, txid: int, state: list) -> None:
        del self._pending[txid]
        if state[_P_REJECTED]:
            self._abort_and_unlock(txid, state)
            return
        output_shard = state[_P_OUTPUT]
        if not self._omniledger:
            # Output shard already holds the yanked inputs: enqueue
            # the final transaction directly.
            self._try_enqueue(output_shard, (KIND_COMMIT, txid))
            return
        # Client sends unlock-to-commit to the output shard.
        self.bytes_cross += UNLOCK_BYTES
        if self.validate_ledger:
            self._send_to_shard(
                output_shard, (KIND_COMMIT, txid), UNLOCK_BYTES
            )
            return
        base = self._prop_client[output_shard] + self._unlock_trans
        if not self._no_jitter:
            base = base * (
                1.0 + (self._jitter_lo + self._jitter_span * self._rand())
            )
        heappush(
            self._heap,
            (
                self._events._now + base,
                next(self._seq),
                self._enqueue_direct[output_shard],
                (KIND_COMMIT, txid),
                None,
            ),
        )

    def _deliver_abort(self, txid: int, _b: object = None) -> None:
        """Typed-record delivery of a proof-of-rejection to the client."""
        self._on_aborted(txid)

    def _abort_and_unlock(self, txid: int, state: list) -> None:
        """Proof-of-rejection: reclaim every successfully locked input."""
        self.n_aborted += 1
        if self.validate_ledger and state[_P_ACCEPTED]:
            info = self._tx_info[txid]
            source = (
                Network.CLIENT if self._omniledger else state[_P_OUTPUT]
            )
            for shard_id in state[_P_ACCEPTED]:
                outpoints = list(info.inputs_by_shard.get(shard_id, []))
                self.bytes_cross += UNLOCK_BYTES
                delay = self._network.delay(
                    source, shard_id, UNLOCK_BYTES
                )
                self._events.schedule_event(
                    delay, self.ledgers[shard_id].unspend, outpoints, txid
                )
        self._tx_info.pop(txid, None)
        self._on_aborted(txid)

    # -- ledger validation ------------------------------------------------------

    def _apply_same_shard(self, shard_id: int, txid: int) -> bool:
        """Validate+apply a same-shard transaction at commit time."""
        info = self._tx_info[txid]
        outpoints = info.inputs_by_shard.get(shard_id, [])
        ledger = self.ledgers[shard_id]
        if ledger.classify(outpoints) != OK:
            # Conflict surfaced between enqueue and commit (a competing
            # spend won the block race).
            self.n_aborted += 1
            self._tx_info.pop(txid, None)
            delay = self._network.delay(
                shard_id, Network.CLIENT, PROOF_BYTES
            )
            self._events.schedule_event(delay, self._h_deliver_abort, txid)
            return False
        ledger.spend(outpoints, txid)
        self._register_outputs(shard_id, txid)
        self._tx_info.pop(txid, None)
        return True

    def _lock_inputs(self, shard_id: int, txid: int) -> bool:
        """Validate+lock this shard's input slice at lock-commit time."""
        info = self._tx_info[txid]
        outpoints = info.inputs_by_shard.get(shard_id, [])
        ledger = self.ledgers[shard_id]
        verdict = ledger.classify(outpoints)
        if verdict == CONFLICT:
            return False
        if verdict == MISSING:
            raise SimulationError(
                f"lock for tx {txid} reached consensus with unregistered "
                f"inputs; parking must happen at enqueue time"
            )
        ledger.spend(outpoints, txid)
        return True

    def _register_outputs(self, shard_id: int, txid: int) -> None:
        """Create a committed transaction's outputs; wake parked entries."""
        info = self._tx_info.get(txid)
        if info is None:
            raise SimulationError(
                f"no ledger bookkeeping for committed transaction {txid}"
            )
        created = self.ledgers[shard_id].register_outputs(
            txid, info.n_outputs
        )
        parked_here = self._parked[shard_id]
        for outpoint in created:
            for entry in parked_here.pop(outpoint, []):
                self._try_enqueue(shard_id, entry)

    # -- helpers -----------------------------------------------------------

    def _send_to_shard(
        self, shard_id: int, entry: Entry, size_bytes: int
    ) -> None:
        delay = self._delay(Network.CLIENT, shard_id, size_bytes)
        if self.validate_ledger:
            self._schedule(delay, self._h_try_enqueue, shard_id, entry)
        else:
            # Admission control is a plain enqueue here: target the
            # destination shard's cached bound method directly.
            self._schedule(delay, self._enqueue_direct[shard_id], entry)

    def _try_enqueue(self, shard_id: int, entry: Entry) -> None:
        """Admission control: validate/park before consuming block slots.

        Without ledger validation this is a plain enqueue. With it,
        entries whose inputs are not registered yet park until the parent
        commits (mempool-orphan behaviour); provably conflicting entries
        are rejected immediately without consuming consensus capacity.
        """
        if not self.validate_ledger or entry[0] == KIND_COMMIT:
            self._shards[shard_id].enqueue(entry)
            return
        info = self._tx_info.get(entry[1])
        if info is None:
            raise SimulationError(
                f"no ledger bookkeeping for entry {entry}"
            )
        outpoints = info.inputs_by_shard.get(shard_id, [])
        ledger = self.ledgers[shard_id]
        verdict = ledger.classify(outpoints)
        if verdict == OK:
            self._shards[shard_id].enqueue(entry)
            return
        if verdict == MISSING:
            anchor = ledger.first_missing(outpoints)
            assert anchor is not None
            self._parked[shard_id].setdefault(anchor, []).append(entry)
            self.n_parked += 1
            return
        # CONFLICT: reject without consensus.
        if entry[0] == KIND_TX:
            self.n_aborted += 1
            self._tx_info.pop(entry[1], None)
            delay = self._delay(shard_id, Network.CLIENT, PROOF_BYTES)
            self._schedule(delay, self._h_deliver_abort, entry[1])
            return
        self._route_proof(shard_id, entry[1], accepted=False)

    @property
    def n_in_flight(self) -> int:
        """Cross-shard transactions between lock and commit phases."""
        return len(self._pending)

    def bandwidth_ratio(self) -> float:
        """Average cross-TX bytes over average same-shard bytes.

        The paper's §III-B claim is about 3x for a typical 2-input
        cross-TX. Returns 0 when either class is empty.
        """
        if not self.n_cross or not self.n_same_shard:
            return 0.0
        per_cross = self.bytes_cross / self.n_cross
        per_same = self.bytes_same_shard / self.n_same_shard
        return per_cross / per_same if per_same else 0.0
