"""The scorer interface of the placement stack.

The T2S recurrence (§IV-B) is the one piece of OptChain with an open
design axis: *how much support each sparse vector retains*. The exact
scorer keeps everything the pruning floor admits; bounded-support
variants trade a little ancestry signal for per-transaction cost that
no longer grows with the shard count. This module makes that axis
explicit: a :class:`PlacementScorer` interface that every scoring
engine implements, a registry so scorers can be named, and the factory
placers use to build one.

The implementations live in :mod:`repro.core.t2s`:

- ``"exact"``  - :class:`~repro.core.t2s.T2SScorer`, the paper's
  incremental recurrence, bit-identical to the seed reference.
- ``"topk"``   - :class:`~repro.core.t2s.TopKT2SScorer`, which retains
  only the ``support_cap`` largest-mass entries per vector (dropped
  mass is tracked so saturation stays observable). With
  ``support_cap >= n_shards`` it reduces to the exact scorer -
  provably, since a vector over ``n_shards`` shards can never exceed
  ``n_shards`` entries, so truncation never fires.

**The hot-path contract.** ``OptChainPlacer.place_batch`` fuses the
scorer's recurrence into one loop by binding internal state to locals
instead of dispatching per transaction. A scorer that wants to stay on
that fused path must therefore expose the exact-scorer state layout
(``_p_prime``, ``_spender_count``, ``_min_mass``, ``_shard_sizes``,
``alpha``, ``prune_epsilon``, ``_scale``, ``_spenders_divisor``) plus
the declarative truncation knob ``support_cap`` (``None`` = unbounded);
the fused loop applies :func:`truncate_support` itself whenever a new
vector's support exceeds the cap, byte-for-byte what
``TopKT2SScorer.add_transaction_raw`` does on the unfused path. Scorers
with a different layout still work everywhere - every unfused path
(:meth:`PlacementScorer.add_transaction_raw` per transaction) goes
through the interface - they just fall off the fused fast path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

from repro.errors import ConfigurationError

#: Default retained support for the bounded ("topk") scorer: at the
#: paper's average TaN degree (~2.3) almost all T2S mass concentrates
#: on a handful of ancestor shards, so 8 entries keep the placement
#: quality within a fraction of a point of exact while the per-vector
#: cost stops tracking n_shards (see PERFORMANCE.md, "Bounded-support
#: scoring").
DEFAULT_SUPPORT_CAP = 8


class PlacementScorer(ABC):
    """What a placement strategy needs from a scoring engine.

    One instance scores one stream: ``add_transaction_raw`` (or
    ``add_transaction``) is called once per arriving transaction in
    dense txid order, followed by exactly one ``place``. The rest of
    the interface is bookkeeping the serving layer depends on: vector
    release for the epoch/truncation policy, plain-data
    ``export_state``/``restore_state`` for bit-identical snapshots, and
    ``support_stats`` for saturation observability.
    """

    __slots__ = ()

    #: Registry kind -> implementation, populated by __init_subclass__.
    registry: dict[str, type["PlacementScorer"]] = {}

    #: Subclasses set this (on themselves) to register with the factory.
    kind: str = ""

    #: Max retained entries per vector; ``None`` means unbounded. The
    #: fused hot path reads this declaratively (see module docstring).
    support_cap: int | None = None

    #: Whether the fused batch loop may inline this scorer's recurrence
    #: (reading the exact-scorer state layout + ``support_cap`` once per
    #: batch). Scorers with per-transaction bookkeeping of their own -
    #: the adaptive cap's dropped-mass window - set this False and run
    #: through the unfused per-transaction interface instead.
    fused_compatible: bool = True

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        # Register only classes that declare their own kind: subclasses
        # that merely inherit one (e.g. the preserved seed reference
        # scorer) must not displace the canonical implementation.
        if "kind" in cls.__dict__ and cls.kind:
            PlacementScorer.registry[cls.kind] = cls

    # -- the scoring contract ---------------------------------------------

    @abstractmethod
    def add_transaction_raw(
        self, txid: int, input_txids: Sequence[int], n_outputs: int = 1
    ) -> dict[int, float]:
        """Score an arriving transaction; returns the borrowed
        *unnormalized* sparse ``{shard: mass}`` map."""

    @abstractmethod
    def add_transaction(
        self, txid: int, input_txids: Sequence[int], n_outputs: int = 1
    ) -> dict[int, float]:
        """Like :meth:`add_transaction_raw` but returns a fresh
        *normalized* score map."""

    @abstractmethod
    def normalized(self, txid: int) -> dict[int, float]:
        """Normalized scores of an already-added transaction."""

    @abstractmethod
    def place(self, txid: int, shard: int) -> None:
        """Record the placement decision for the pending transaction."""

    @abstractmethod
    def release_vector(self, txid: int) -> None:
        """Drop one vector (epoch/truncation policy); reads as empty."""

    @abstractmethod
    def release_vectors(self, txids) -> None:
        """Bulk :meth:`release_vector` (one call per truncation sweep)."""

    @property
    @abstractmethod
    def live_vector_count(self) -> int:
        """Vectors still held in memory (added minus released)."""

    @property
    @abstractmethod
    def released_count(self) -> int:
        """Vectors dropped so far by :meth:`release_vector`."""

    @abstractmethod
    def export_state(self) -> dict[str, Any]:
        """Plain-data dump of all mutable state (see service.state)."""

    @abstractmethod
    def restore_state(self, state: dict[str, Any]) -> None:
        """Load a dump produced by :meth:`export_state` (same config)."""

    @abstractmethod
    def support_stats(self) -> dict[str, Any]:
        """Support/saturation observability (JSON-friendly).

        Keys: ``live_vectors``, ``mean_nnz``, ``max_nnz`` (over live
        vectors), ``dropped_mass``, ``truncated_vectors``,
        ``support_cap``.
        """


def truncate_support(
    vector: dict[int, float], cap: int
) -> tuple[dict[int, float], float]:
    """Retain the ``cap`` largest-mass entries of a sparse vector.

    Returns ``(truncated, dropped_mass)``. Mass ties at the cutoff keep
    the lower shard id; survivors keep their original insertion order
    (dict order feeds the multi-parent accumulation order downstream,
    so reordering survivors would change later arithmetic). Dropped
    mass is summed in rank order, which both call sites (the unfused
    scorer and the fused batch loop) share, keeping the accounting
    bit-identical between them.
    """
    ranked = sorted(vector.items(), key=lambda kv: (-kv[1], kv[0]))
    keep = {shard for shard, _ in ranked[:cap]}
    dropped = 0.0
    for _, mass in ranked[cap:]:
        dropped += mass
    truncated = {
        shard: mass for shard, mass in vector.items() if shard in keep
    }
    return truncated, dropped


def parse_support_cap(value) -> "tuple[str, int | float]":
    """Parse a support-cap setting: an int, or ``"auto:<rate>"``.

    Returns ``("fixed", cap)`` or ``("auto", target_rate)``. The auto
    form is the adaptive policy: start small and grow the cap while the
    observed dropped-mass rate stays above ``target_rate`` (see
    :class:`~repro.core.t2s.AdaptiveTopKT2SScorer`).
    """
    if isinstance(value, bool):
        raise ConfigurationError(
            f"support_cap must be an int or 'auto:<rate>', got {value!r}"
        )
    if isinstance(value, int):
        return ("fixed", value)
    if isinstance(value, str):
        if value.startswith("auto:"):
            try:
                rate = float(value[5:])
            except ValueError:
                raise ConfigurationError(
                    f"bad adaptive support cap {value!r}; expected "
                    "auto:<rate> with a float rate, e.g. auto:0.01"
                )
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(
                    f"adaptive dropped-mass rate must be in [0, 1), "
                    f"got {rate}"
                )
            return ("auto", rate)
        try:
            return ("fixed", int(value))
        except ValueError:
            raise ConfigurationError(
                f"support_cap must be an int or 'auto:<rate>', got "
                f"{value!r}"
            )
    raise ConfigurationError(
        f"support_cap must be an int or 'auto:<rate>', got {value!r}"
    )


def make_scorer(kind: str, n_shards: int, **kwargs) -> PlacementScorer:
    """Factory over the scorer registry (``"exact"``, ``"topk"``)."""
    # The implementations register on import; resolve them lazily so
    # importing this interface module alone stays cycle-free.
    import repro.core.t2s  # noqa: F401

    try:
        cls = PlacementScorer.registry[kind]
    except KeyError:
        known = ", ".join(sorted(PlacementScorer.registry))
        raise ConfigurationError(
            f"unknown scorer kind {kind!r}; known: {known}"
        )
    return cls(n_shards=n_shards, **kwargs)
