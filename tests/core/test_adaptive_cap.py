"""Adaptive support cap (``auto:<rate>``) and the ``t2s-topk`` lane.

The adaptive policy's contract: the cap is monotone nondecreasing,
never exceeds ``n_shards``, grows exactly when a window's dropped-mass
rate exceeds the target, and the two degenerate targets behave as
advertised - ``auto:0`` converges toward exact scoring whenever mass is
dropped, a near-1 target freezes the initial cap.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import T2SOnlyPlacer, TopKT2SOnlyPlacer
from repro.core.optchain import OptChainPlacer, TopKOptChainPlacer
from repro.core.placement import make_placer
from repro.core.scorer import parse_support_cap
from repro.core.t2s import AdaptiveTopKT2SScorer, TopKT2SScorer
from repro.datasets.synthetic import synthetic_stream
from repro.errors import ConfigurationError

N_SHARDS = 16


@pytest.fixture(scope="module")
def stream():
    return synthetic_stream(8_000, seed=3)


class TestParse:
    def test_forms(self):
        assert parse_support_cap(8) == ("fixed", 8)
        assert parse_support_cap("8") == ("fixed", 8)
        assert parse_support_cap("auto:0.01") == ("auto", 0.01)
        assert parse_support_cap("auto:0") == ("auto", 0.0)

    @pytest.mark.parametrize(
        "bad", ["auto:", "auto:x", "auto:1.5", "auto:-0.1", "cap", 1.5, True]
    )
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            parse_support_cap(bad)


class TestAdaptiveScorer:
    def test_cap_monotone_and_bounded(self, stream):
        placer = TopKOptChainPlacer(
            N_SHARDS, support_cap="auto:0.001", support_window=500
        )
        scorer = placer.scorer
        assert isinstance(scorer, AdaptiveTopKT2SScorer)
        caps = []
        for offset in range(0, len(stream), 400):
            placer.place_batch(stream[offset : offset + 400])
            caps.append(placer.support_cap)
        assert caps == sorted(caps)  # never shrinks
        assert all(cap <= N_SHARDS for cap in caps)
        assert caps[-1] > scorer.initial_cap  # it actually adapted
        assert scorer.cap_growths > 0

    def test_growth_follows_window_rate(self):
        # Drive the window check directly: a window whose rate exceeds
        # the target doubles the cap, one below leaves it.
        scorer = AdaptiveTopKT2SScorer(
            8, target_rate=0.1, support_cap=2, window=10
        )
        scorer._window_count = 10
        scorer._window_mass = 100.0
        scorer._window_dropped = 20.0  # rate 0.2 > 0.1
        scorer._evaluate_window()
        assert scorer.support_cap == 4
        scorer._window_mass = 100.0
        scorer._window_dropped = 5.0  # rate 0.05 < 0.1
        scorer._evaluate_window()
        assert scorer.support_cap == 4
        # Counters reset after every evaluation.
        assert scorer._window_mass == 0.0
        assert scorer._window_count == 0

    def test_huge_target_freezes_initial_cap(self, stream):
        placer = TopKOptChainPlacer(
            N_SHARDS, support_cap="auto:0.99", support_window=200
        )
        placer.place_batch(stream[:4_000])
        assert placer.support_cap == placer.scorer.initial_cap
        assert placer.scorer.cap_growths == 0

    def test_zero_target_converges_to_exact_cap(self, stream):
        placer = TopKOptChainPlacer(
            N_SHARDS, support_cap="auto:0", support_window=200
        )
        placer.place_batch(stream[:6_000])
        # Any dropped mass forces growth; at cap == n_shards truncation
        # can never fire again, so the cap pins there.
        assert placer.support_cap == N_SHARDS

    @settings(max_examples=15, deadline=None)
    @given(
        target=st.floats(min_value=0.0, max_value=0.5),
        window=st.integers(min_value=50, max_value=1_000),
        initial=st.integers(min_value=1, max_value=16),
    )
    def test_property_cap_invariants(self, target, window, initial):
        stream = synthetic_stream(2_500, seed=11)
        placer = TopKOptChainPlacer(
            8,
            support_cap=f"auto:{target!r}",
            support_initial_cap=initial,
            support_window=window,
        )
        scorer = placer.scorer
        last = scorer.support_cap
        assert last == min(initial, 8)
        for offset in range(0, len(stream), 250):
            placer.place_batch(stream[offset : offset + 250])
            cap = scorer.support_cap
            assert last <= cap <= 8
            last = cap
        # The current vector-support bound always holds for the
        # *final* cap (caps only grow, so earlier vectors obey it too;
        # +1 for the post-placement alpha credit).
        for vector in scorer._p_prime:
            if vector is not None:
                assert len(vector) <= cap + 1

    def test_adaptive_runs_unfused_but_matches_itself(self, stream):
        """Fused dispatch must skip the adaptive scorer, and the
        batched path must equal one-at-a-time placement."""
        batched = TopKOptChainPlacer(
            N_SHARDS, support_cap="auto:0.01", support_window=300
        )
        single = TopKOptChainPlacer(
            N_SHARDS, support_cap="auto:0.01", support_window=300
        )
        prefix = stream[:3_000]
        batched_shards = batched.place_batch(prefix)
        single_shards = [single.place(tx) for tx in prefix]
        assert batched_shards == single_shards
        assert batched.support_cap == single.support_cap

    def test_engine_snapshot_round_trip(self, stream, tmp_path):
        from repro.service.engine import PlacementEngine
        from repro.service.state import load_engine_snapshot

        engine = PlacementEngine(
            make_placer(
                "optchain-topk",
                N_SHARDS,
                support_cap="auto:0.005",
                support_window=300,
            ),
            epoch_length=1_000,
        )
        engine.place_batch(stream[:4_000])
        grown_cap = engine.placer.support_cap
        path = tmp_path / "adaptive.snap"
        engine.checkpoint(path)
        restored = load_engine_snapshot(path)
        scorer = restored.placer.scorer
        assert isinstance(scorer, AdaptiveTopKT2SScorer)
        assert scorer.support_cap == grown_cap
        assert scorer.target_rate == 0.005
        assert scorer.window == 300
        # Continuing is bit-identical (window counters restored too).
        expected = engine.place_batch(stream[4_000:])
        assert restored.place_batch(stream[4_000:]) == expected


class TestT2STopK:
    def test_registered_in_factory(self):
        placer = make_placer("t2s-topk", N_SHARDS, support_cap=4)
        assert isinstance(placer, TopKT2SOnlyPlacer)
        assert placer.support_cap == 4

    def test_cap_at_least_n_shards_is_bit_identical(self, stream):
        exact = T2SOnlyPlacer(N_SHARDS, expected_total=4_000)
        capped = TopKT2SOnlyPlacer(
            N_SHARDS, support_cap=N_SHARDS, expected_total=4_000
        )
        prefix = stream[:4_000]
        assert capped.place_stream(prefix) == exact.place_stream(prefix)
        assert capped.scorer.truncated_vector_count == 0

    def test_finite_cap_truncates_and_tracks(self, stream):
        capped = TopKT2SOnlyPlacer(N_SHARDS, support_cap=2)
        capped.place_stream(stream[:4_000])
        stats = capped.scorer.support_stats()
        assert stats["support_cap"] == 2
        assert stats["max_nnz"] <= 3  # cap + post-placement credit
        assert capped.scorer.dropped_mass_total > 0.0

    def test_adaptive_t2s_lane(self, stream):
        placer = TopKT2SOnlyPlacer(
            N_SHARDS, support_cap="auto:0.001", support_window=400
        )
        placer.place_stream(stream[:4_000])
        assert placer.support_cap > placer.scorer.initial_cap

    def test_snapshot_round_trip(self, stream, tmp_path):
        from repro.service.engine import PlacementEngine
        from repro.service.state import load_engine_snapshot

        engine = PlacementEngine(
            make_placer("t2s-topk", N_SHARDS, support_cap=3),
            epoch_length=1_000,
        )
        engine.place_batch(stream[:2_000])
        path = tmp_path / "t2s_topk.snap"
        engine.checkpoint(path)
        restored = load_engine_snapshot(path)
        assert isinstance(restored.placer, TopKT2SOnlyPlacer)
        assert restored.placer.support_cap == 3
        expected = engine.place_batch(stream[2_000:3_000])
        assert restored.place_batch(stream[2_000:3_000]) == expected

    def test_experiment_runner_builds_it(self):
        from repro.experiments.configs import get_scale
        from repro.experiments.runner import build_placer

        scale = get_scale("tiny")
        placer = build_placer("t2s-topk", 8, scale, expected_total=100)
        assert isinstance(placer, TopKT2SOnlyPlacer)
        assert placer.support_cap == scale.topk_support_cap


class TestExactUntouched:
    def test_plain_strategies_stay_fused_compatible(self):
        assert OptChainPlacer(4).scorer.fused_compatible
        assert TopKT2SScorer(4, support_cap=2).fused_compatible
        assert not AdaptiveTopKT2SScorer(4, target_rate=0.1).fused_compatible
