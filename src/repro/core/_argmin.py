"""Lazy argmin over a monotonically increasing value array.

Several hot paths need "which shard is smallest right now" where the
per-shard quantity only ever grows (placement counts, decayed-load
accumulators within one scale epoch). A full scan is O(n_shards) per
query; this helper answers in amortized O(log n_shards) with the classic
lazy-deletion heap: every increase pushes a fresh ``(value, index)``
entry, and queries pop entries whose value no longer matches the backing
array. Ties break toward the lower index, matching the ``min(range(n),
key=values.__getitem__)`` idiom the scans it replaces used.

The helper holds a *reference* to the caller's value list; the caller
mutates the list and then calls :meth:`bump` for the touched index.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Sequence


class LazyArgmin:
    """Amortized O(log n) argmin over an increase-only value list."""

    __slots__ = ("_values", "_heap", "_compact_limit")

    def __init__(self, values: Sequence) -> None:
        self._values = values
        self._heap = [(value, index) for index, value in enumerate(values)]
        heapify(self._heap)
        self._compact_limit = max(64, 4 * len(values))

    def bump(self, index: int) -> None:
        """Record that ``values[index]`` increased (push the new key)."""
        heappush(self._heap, (self._values[index], index))
        if len(self._heap) > self._compact_limit:
            self.rebuild()

    def rebuild(self) -> None:
        """Drop stale entries (also call after rescaling every value).

        In place, so callers holding the heap list stay consistent.
        """
        self._heap[:] = [
            (value, index) for index, value in enumerate(self._values)
        ]
        heapify(self._heap)

    def peek(self):
        """``(value, index)`` of the minimum, lowest index among ties."""
        heap = self._heap
        values = self._values
        while True:
            value, index = heap[0]
            if values[index] == value:
                return value, index
            heappop(heap)
