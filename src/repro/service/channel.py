"""Duplex frame-RPC channel between the coordinator and its workers.

Both ends of a worker link initiate requests: the coordinator pushes
placements, grants, and checkpoints down; the active worker pulls
foreign parent state and pushes writebacks back up *while a placement
is in flight* - which is exactly why this is a full-duplex channel with
per-side correlation ids rather than a request/response pipe. Frames
reuse the binary wire format (:mod:`repro.service.wire`); response
frames have bit 7 of the kind set and echo the request id, and each
side only ever resolves ids it allocated, so the two counters cannot
collide.

The inter-worker request kinds (0x10..0x1F, reserved by wire.py):

====================  ====================================================
``W_HELLO``           worker -> coordinator: partition id, cursor, token
``W_PLACE``           coordinator -> owner: one place payload (raw bytes)
``W_GRANT``           coordinator -> next owner: write lease + hot state
``W_RELEASE``         active worker -> coordinator: lease done, hot state
``W_ACQUIRE``         active worker -> coordinator: foreign parent txids
``W_READ``            coordinator -> owning worker: read parent states
``W_WRITEBACK``       active worker -> coordinator: parent mutations
``W_APPLY``           coordinator -> owning worker: apply writebacks
``W_STATS``           coordinator -> worker: partition stats
``W_CHECKPOINT``      coordinator -> worker: snapshot (optionally pause)
``W_RESUME``          coordinator -> worker: resume after a held snapshot
``W_SHUTDOWN``        coordinator -> worker: drain queued work and exit
``W_PING``            coordinator -> worker: liveness probe (heartbeat)
====================  ====================================================
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable

from repro.errors import ProtocolError, ServiceError
from repro.service.wire import (
    RESPONSE_FLAG,
    encode_error_response,
    encode_frame,
    encode_json_response,
    read_frame,
)

W_HELLO = 0x10
W_PLACE = 0x11
W_GRANT = 0x12
W_RELEASE = 0x13
W_ACQUIRE = 0x14
W_READ = 0x15
W_WRITEBACK = 0x16
W_APPLY = 0x17
W_STATS = 0x18
W_CHECKPOINT = 0x19
W_RESUME = 0x1A
W_SHUTDOWN = 0x1B
W_PING = 0x1C

#: handler(kind, request_id, payload) -> complete response frame bytes.
Handler = Callable[[int, int, bytes], Awaitable[bytes]]


def json_payload(obj: Any) -> bytes:
    """JSON request payload (floats round-trip exactly via repr)."""
    return json.dumps(obj, separators=(",", ":")).encode()


def parse_json_payload(payload: bytes) -> Any:
    try:
        return json.loads(payload) if payload else {}
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed JSON payload: {exc}")


class ChannelClosed(ServiceError):
    """The peer is gone; in-flight requests cannot complete."""


class FrameChannel:
    """One duplex coordinator<->worker link.

    Incoming *request* frames are dispatched to ``handler`` as tasks
    (so a handler that blocks on its own outbound request cannot
    deadlock the read loop); incoming *response* frames resolve the
    matching local future. ``on_close`` fires exactly once when the
    link dies, after all in-flight futures have been failed.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        handler: "Handler | None" = None,
        on_close: "Callable[[], None] | None" = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._handler = handler
        self._on_close = on_close
        self._inflight: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._closed = False
        self._write_lock = asyncio.Lock()
        self._handler_tasks: set[asyncio.Task] = set()
        self._read_task = asyncio.create_task(self._read_loop())

    @property
    def closed(self) -> bool:
        return self._closed

    # -- outbound ----------------------------------------------------------

    async def request(
        self, kind: int, payload: bytes = b""
    ) -> tuple[int, bytes]:
        """Send one request; returns ``(response_kind, payload)``."""
        if self._closed:
            raise ChannelClosed("channel is closed")
        self._next_id += 1
        request_id = self._next_id
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[request_id] = future
        await self._send(encode_frame(kind, request_id, payload))
        return await future

    async def _send(self, frame: bytes) -> None:
        try:
            async with self._write_lock:
                self._writer.write(frame)
                await self._writer.drain()
        except (ConnectionError, RuntimeError):
            raise ChannelClosed("peer closed the channel mid-write")

    async def respond(self, frame: bytes) -> None:
        """Write one (already encoded) response frame."""
        try:
            async with self._write_lock:
                self._writer.write(frame)
                await self._writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # requester is gone; nothing to deliver to

    # -- inbound -----------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                kind, request_id, payload = frame
                if kind & RESPONSE_FLAG:
                    future = self._inflight.pop(request_id, None)
                    if future is not None and not future.done():
                        future.set_result((kind, payload))
                    continue
                task = asyncio.create_task(
                    self._dispatch(kind, request_id, payload)
                )
                self._handler_tasks.add(task)
                task.add_done_callback(self._handler_tasks.discard)
        except (ProtocolError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._shutdown_inflight()

    async def _dispatch(
        self, kind: int, request_id: int, payload: bytes
    ) -> None:
        handler = self._handler
        if handler is None:
            await self.respond(
                encode_error_response(
                    request_id, "protocol", "channel has no handler"
                )
            )
            return
        try:
            frame = await handler(kind, request_id, payload)
        except Exception as exc:  # noqa: BLE001 - a handler bug must
            # fail the one request, not the whole link.
            frame = encode_error_response(
                request_id,
                "engine",
                f"internal error handling channel request: {exc!r}",
            )
        await self.respond(frame)

    def _shutdown_inflight(self) -> None:
        if self._closed:
            return
        self._closed = True
        for future in self._inflight.values():
            if not future.done():
                future.set_exception(
                    ChannelClosed("channel closed before response")
                )
        self._inflight.clear()
        if self._on_close is not None:
            callback = self._on_close
            self._on_close = None
            callback()

    async def close(self) -> None:
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        if self._handler_tasks:
            await asyncio.gather(
                *list(self._handler_tasks), return_exceptions=True
            )
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def ok_response(request_id: int, obj: "dict[str, Any] | None" = None) -> bytes:
    """A JSON success response frame for a channel request."""
    return encode_json_response(request_id, obj or {})
