"""Server protocol edges: malformed lines, limits, disconnects, drain.

Tests drive a real server over real sockets on an ephemeral port. The
plain-asyncio harness (``asyncio.run`` per test) keeps the suite free
of extra test dependencies.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.placement import make_placer
from repro.datasets.synthetic import synthetic_stream
from repro.errors import EngineError, ProtocolError, RetryLaterError
from repro.service.client import AsyncPlacementClient, PlacementClient
from repro.service.engine import PlacementEngine
from repro.service.server import PlacementServer
from repro.service.state import load_engine_snapshot
from repro.service.wire import encode_batch

N_SHARDS = 4


@pytest.fixture(scope="module")
def stream():
    return synthetic_stream(2_000, seed=31)


def run_with_server(test_coro, **server_kwargs):
    """Start a server on an ephemeral port, run ``test_coro(server)``,
    stop the server."""

    async def main():
        engine = server_kwargs.pop(
            "engine", None
        ) or PlacementEngine(
            make_placer("optchain", N_SHARDS), epoch_length=500
        )
        server = PlacementServer(engine, port=0, **server_kwargs)
        await server.start()
        try:
            await test_coro(server)
        finally:
            await server.stop()

    asyncio.run(main())


async def raw_roundtrip(port, payload: bytes) -> dict:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), timeout=5)
    writer.close()
    return json.loads(line)


class TestProtocolEdges:
    def test_malformed_json_line(self, stream):
        async def scenario(server):
            response = await raw_roundtrip(
                server.port, b"this is not json{{{\n"
            )
            assert response["ok"] is False
            assert response["code"] == "protocol"
            assert "JSON" in response["error"]

        run_with_server(scenario)

    def test_connection_survives_bad_line(self, stream):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"garbage\n")
            bad = json.loads(await reader.readline())
            assert bad["ok"] is False
            # Same connection, valid request right after.
            writer.write(
                json.dumps(
                    {
                        "op": "place",
                        "id": 2,
                        "txs": encode_batch(stream[:50]),
                    }
                ).encode()
                + b"\n"
            )
            good = json.loads(await reader.readline())
            assert good["ok"] is True
            assert len(good["shards"]) == 50
            writer.close()

        run_with_server(scenario)

    def test_non_object_and_unknown_op(self, stream):
        async def scenario(server):
            response = await raw_roundtrip(server.port, b"[1,2,3]\n")
            assert response["ok"] is False
            assert "JSON object" in response["error"]
            response = await raw_roundtrip(
                server.port, b'{"op":"fly","id":1}\n'
            )
            assert response["ok"] is False
            assert "unknown op" in response["error"]

        run_with_server(scenario)

    def test_oversized_batch_rejected(self, stream):
        async def scenario(server):
            client = await AsyncPlacementClient.connect(
                port=server.port
            )
            with pytest.raises(ProtocolError, match="max_batch_txs"):
                await client.place(stream[:200])
            # The engine is untouched and smaller batches still work.
            assert await client.place(stream[:100]) is not None
            await client.close()

        run_with_server(scenario, max_batch_txs=100)

    def test_oversized_line_closes_connection(self, stream):
        async def scenario(server):
            response = await raw_roundtrip(
                server.port, b"x" * 5_000 + b"\n"
            )
            assert response["ok"] is False
            assert "exceeds" in response["error"]

        run_with_server(scenario, max_line_bytes=1_024)

    def test_non_contiguous_txids_rejected(self, stream):
        async def scenario(server):
            encoded = encode_batch([stream[0], stream[2]])
            response = await raw_roundtrip(
                server.port,
                json.dumps(
                    {"op": "place", "id": 1, "txs": encoded}
                ).encode()
                + b"\n",
            )
            assert response["ok"] is False
            assert "contiguous" in response["error"]

        run_with_server(scenario)

    def test_empty_batch_rejected(self, stream):
        async def scenario(server):
            response = await raw_roundtrip(
                server.port,
                b'{"op":"place","id":1,"txs":[]}\n',
            )
            assert response["ok"] is False
            assert "empty" in response["error"]

        run_with_server(scenario)

    def test_already_placed_answered_idempotently(self, stream):
        # A full resubmission (client retry after a lost response)
        # gets the identical shards back, not an error; a *partial*
        # overlap is still rejected (see
        # test_overlapping_range_failed_not_hung).
        async def scenario(server):
            client = await AsyncPlacementClient.connect(
                port=server.port
            )
            original = await client.place(stream[:100])
            duplicate = await client.place(stream[:100])
            assert duplicate == original
            await client.close()

        run_with_server(scenario)

    def test_duplicate_queued_start_retryable(self, stream):
        async def scenario(server):
            client = await AsyncPlacementClient.connect(
                port=server.port
            )
            # Gap at 0 keeps both requests queued in the sequencer.
            first = client.place_nowait(stream[100:200])
            await asyncio.sleep(0.05)
            duplicate = await client.request(
                {"op": "ping"}
            )  # keepalive; now send the duplicate start
            assert duplicate["ok"]
            # The original is still queued: the duplicate is turned
            # away with a retryable error, not a hard protocol error.
            with pytest.raises(RetryLaterError, match="already queued"):
                await client.place(stream[100:150])
            # Fill the gap; the queued request completes.
            await client.place(stream[:100])
            result = await first
            assert result["ok"] is True
            await client.close()

        run_with_server(scenario)


class TestDispatcherResilience:
    def test_internal_placer_error_fails_request_not_dispatcher(
        self, stream
    ):
        async def scenario(server):
            client = await AsyncPlacementClient.connect(
                port=server.port
            )
            original = server.engine.place_batch

            def explode(batch):
                server.engine.place_batch = original
                raise RuntimeError("injected placer bug")

            server.engine.place_batch = explode
            with pytest.raises(EngineError, match="internal error"):
                await client.place(stream[:50])
            # The dispatcher survived: the next request is served.
            shards = await client.place(stream[:50])
            assert len(shards) == 50
            await client.close()

        run_with_server(scenario)

    def test_overlapping_range_failed_not_hung(self, stream):
        async def scenario(server):
            client = await AsyncPlacementClient.connect(
                port=server.port
            )
            # Queue an overlapping range first (gap at 0 holds it),
            # then fill 0..99; the cursor passes 50 and the stale
            # request must be *failed*, not leaked.
            overlap = client.place_nowait(stream[50:150])
            await asyncio.sleep(0.05)
            await client.place(stream[:100])
            result = await asyncio.wait_for(overlap, timeout=5)
            assert result["ok"] is False
            assert "already placed" in result["error"]
            # The reorder slot was reclaimed; the stream continues.
            assert (
                len(await client.place(stream[100:150])) == 50
            )
            await client.close()

        run_with_server(scenario)


class TestDisconnectMidBatch:
    def test_disconnect_mid_batch_state_stays_consistent(self, stream):
        async def scenario(server):
            # Client sends a place request and vanishes immediately,
            # before the response can be written.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                json.dumps(
                    {
                        "op": "place",
                        "id": 1,
                        "txs": encode_batch(stream[:100]),
                    }
                ).encode()
                + b"\n"
            )
            await writer.drain()
            writer.close()
            # The request was already sequenced: the engine places it.
            for _ in range(100):
                if server.engine.n_placed == 100:
                    break
                await asyncio.sleep(0.01)
            assert server.engine.n_placed == 100
            # And the stream continues seamlessly for other clients.
            client = await AsyncPlacementClient.connect(
                port=server.port
            )
            shards = await client.place(stream[100:200])
            assert len(shards) == 100
            await client.close()

        run_with_server(scenario)


class TestShutdown:
    def test_shutdown_op_drains_and_checkpoints(self, tmp_path, stream):
        snapshot = tmp_path / "drain.snap"

        async def scenario(server):
            client = await AsyncPlacementClient.connect(
                port=server.port
            )
            await client.place(stream[:300])
            await client.shutdown()
            await server.wait_stopped()
            # New connections are refused after shutdown.
            with pytest.raises(OSError):
                await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
            await client.close()

        run_with_server(scenario, checkpoint_path=str(snapshot))
        restored = load_engine_snapshot(snapshot)
        assert restored.n_placed == 300

    def test_stats_op_reports_support_section(self, stream):
        async def scenario(server):
            client = await AsyncPlacementClient.connect(
                port=server.port
            )
            await client.place(stream[:300])
            stats = await client.stats()
            support = stats["support"]
            assert support["live_vectors"] > 0
            assert support["mean_nnz"] > 0.0
            assert support["max_nnz"] >= 1
            assert support["dropped_mass"] == 0.0
            assert support["support_cap"] is None
            await client.close()

        run_with_server(scenario)

    def test_compressed_checkpoint_on_shutdown(self, tmp_path, stream):
        snapshot = tmp_path / "packed.snap"

        async def scenario(server):
            client = await AsyncPlacementClient.connect(
                port=server.port
            )
            await client.place(stream[:300])
            await client.shutdown()
            await server.wait_stopped()
            await client.close()

        engine = PlacementEngine(
            make_placer("optchain-topk", N_SHARDS, support_cap=2),
            epoch_length=500,
        )
        run_with_server(
            scenario,
            engine=engine,
            checkpoint_path=str(snapshot),
            checkpoint_compress=True,
        )
        restored = load_engine_snapshot(snapshot)
        assert restored.n_placed == 300
        assert restored.placer.support_cap == 2

    def test_gapped_request_failed_on_shutdown(self, stream):
        async def scenario(server):
            client = await AsyncPlacementClient.connect(
                port=server.port
            )
            # txids 100.. can never dispatch (0..99 missing).
            future = client.place_nowait(stream[100:150])
            await asyncio.sleep(0.05)
            await server.stop()
            result = await asyncio.wait_for(future, timeout=5)
            assert result["ok"] is False
            assert result["code"] == "shutdown"
            await client.close()

        run_with_server(scenario)


class TestSigterm:
    def test_sigterm_drains_and_checkpoints(self, tmp_path):
        """End-to-end: `repro serve` under SIGTERM writes a restorable
        checkpoint (the satellite's checkpoint-on-SIGTERM drain)."""
        snapshot = tmp_path / "sigterm.snap"
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            f"{src}{os.pathsep}{env['PYTHONPATH']}"
            if env.get("PYTHONPATH")
            else str(src)
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--shards",
                "4",
                "--checkpoint",
                str(snapshot),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            assert "serving" in banner, banner
            port = int(banner.rsplit(":", 1)[1])
            batch = synthetic_stream(400, seed=5)
            with PlacementClient(port=port) as client:
                shards = client.place(batch)
                assert len(shards) == 400
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        assert process.returncode == 0, process.stderr.read()
        assert snapshot.exists()
        restored = load_engine_snapshot(snapshot)
        assert restored.n_placed == 400
        # The restored engine continues the same stream seamlessly.
        more = synthetic_stream(500, seed=5)[400:]
        assert len(restored.place_batch(more)) == 100


class TestLoadgenIntegration:
    def test_closed_and_open_loops_place_everything(self, stream):
        from repro.service.loadgen import run_loadgen_async

        async def scenario(server):
            report = await run_loadgen_async(
                port=server.port,
                stream=stream[:1_000],
                n_users=4,
                chunk_size=100,
            )
            assert report.errors == 0
            assert report.n_txs == 1_000
            assert server.engine.n_placed == 1_000

            open_report = await run_loadgen_async(
                port=server.port,
                stream=stream[1_000:2_000],
                n_users=4,
                chunk_size=100,
                mode="open",
                rate=200_000.0,
            )
            assert open_report.errors == 0
            assert server.engine.n_placed == 2_000
            assert open_report.target_rate == 200_000.0

        run_with_server(scenario)

    def test_served_placements_match_local(self, stream):
        from repro.service.loadgen import run_loadgen_async

        expected = make_placer("optchain", N_SHARDS).place_stream(
            stream
        )

        async def scenario(server):
            await run_loadgen_async(
                port=server.port,
                stream=stream,
                n_users=7,
                chunk_size=64,
            )
            assert server.engine.placer.assignment() == expected

        run_with_server(scenario)
