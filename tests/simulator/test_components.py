"""Unit tests for network, consensus, shard, and metrics components."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.rng import make_rng
from repro.simulator.config import SimulationConfig
from repro.simulator.consensus import ConsensusModel
from repro.simulator.events import EventQueue
from repro.simulator.metrics import LatencyObserver, MetricsCollector
from repro.simulator.network import Network
from repro.simulator.shard import KIND_TX, Entry, Shard


def config(**kwargs) -> SimulationConfig:
    return SimulationConfig(**kwargs)


class TestConfig:
    def test_default_valid(self):
        config().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_shards": 0},
            {"tx_rate": 0},
            {"block_capacity": 0},
            {"bandwidth_mbps": 0},
            {"validators_per_shard": 0},
            {"gossip_fanout": 1},
            {"consensus_base_s": -1},
            {"protocol": "bogus"},
            {"arrivals": "bogus"},
            {"queue_sample_interval_s": 0},
            {"latency_jitter": 1.0},
            {"max_sim_time_s": 0},
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            config(**kwargs).validate()

    def test_bandwidth_conversion(self):
        assert config(bandwidth_mbps=20).bandwidth_bytes_per_s == 2_500_000


class TestNetwork:
    def test_delay_components(self):
        cfg = config(latency_jitter=0.0)
        network = Network(cfg, make_rng(1))
        base = network.delay(Network.CLIENT, 0, 0)
        with_payload = network.delay(Network.CLIENT, 0, 2_500_000)
        # 2.5 MB at 20 Mbps = 1 second of transmission.
        assert with_payload - base == pytest.approx(1.0)

    def test_propagation_in_configured_band(self):
        cfg = config(latency_jitter=0.0)
        network = Network(cfg, make_rng(1))
        for shard in range(cfg.n_shards):
            prop = network.propagation(Network.CLIENT, shard)
            assert 0.5 * cfg.base_latency_s <= prop
            assert prop <= 2.0 * cfg.base_latency_s

    def test_jitter_bounded(self):
        cfg = config(latency_jitter=0.1)
        network = Network(cfg, make_rng(1))
        base = network.propagation(Network.CLIENT, 0)
        for _ in range(100):
            delay = network.delay(Network.CLIENT, 0, 0)
            assert 0.9 * base <= delay <= 1.1 * base

    def test_negative_size_rejected(self):
        network = Network(config(), make_rng(1))
        with pytest.raises(ConfigurationError):
            network.delay(Network.CLIENT, 0, -1)

    def test_unknown_node_rejected(self):
        network = Network(config(), make_rng(1))
        with pytest.raises(ConfigurationError):
            network.propagation(0, 99)

    def test_rtt_is_twice_one_way(self):
        network = Network(config(), make_rng(1))
        assert network.expected_client_rtt(0) == pytest.approx(
            2 * network.propagation(Network.CLIENT, 0)
        )


class TestConsensus:
    def test_duration_increases_with_entries(self):
        model = ConsensusModel(config())
        assert model.duration(2000) > model.duration(1)

    def test_block_bytes_caps_at_block_size(self):
        cfg = config()
        model = ConsensusModel(cfg)
        assert model.block_bytes(cfg.block_capacity * 10) == (
            1_000 + cfg.block_size_bytes
        )

    def test_default_capacity_calibration(self):
        """A shard sustains 400-550 entries/s with paper defaults -
        the calibration DESIGN.md documents."""
        model = ConsensusModel(config())
        assert 400 <= model.max_throughput() <= 550

    def test_gossip_depth(self):
        assert ConsensusModel(config(validators_per_shard=400)).gossip_depth == 3
        assert ConsensusModel(config(validators_per_shard=8)).gossip_depth == 1


class TestShard:
    def _shard(self, committed, cfg=None):
        cfg = cfg or config(block_capacity=10, latency_jitter=0.0)
        events = EventQueue()
        consensus = ConsensusModel(cfg)
        shard = Shard(
            0,
            cfg,
            consensus,
            events,
            lambda sid, entry: committed.append((events.now, entry)),
        )
        return shard, events

    def test_processes_entries_in_blocks(self):
        committed = []
        shard, events = self._shard(committed)
        # Queue everything while paused so batching is deterministic.
        shard.pause()
        for txid in range(25):
            shard.enqueue(Entry(KIND_TX, txid))
        shard.resume()
        events.run()
        assert len(committed) == 25
        assert shard.n_blocks == 3  # 10 + 10 + 5
        assert shard.queue_size == 0

    def test_eager_first_block_is_small(self):
        """An idle shard starts consensus immediately on arrival, so the
        first block carries whatever was queued at that instant."""
        committed = []
        shard, events = self._shard(committed)
        for txid in range(25):
            shard.enqueue(Entry(KIND_TX, txid))
        events.run()
        assert len(committed) == 25
        assert shard.n_blocks == 4  # 1 + 10 + 10 + 4

    def test_fifo_order(self):
        committed = []
        shard, events = self._shard(committed)
        for txid in range(15):
            shard.enqueue(Entry(KIND_TX, txid))
        events.run()
        assert [entry.txid for _, entry in committed] == list(range(15))

    def test_pause_and_resume(self):
        committed = []
        shard, events = self._shard(committed)
        shard.pause()
        shard.enqueue(Entry(KIND_TX, 0))
        events.run()
        assert committed == []
        assert shard.queue_size == 1
        shard.resume()
        events.run()
        assert len(committed) == 1

    def test_expected_verification_grows_with_queue(self):
        committed = []
        shard, events = self._shard(committed)
        idle = shard.expected_verification_time()
        shard.pause()
        for txid in range(40):
            shard.enqueue(Entry(KIND_TX, txid))
        assert shard.expected_verification_time() > idle


class TestMetricsCollector:
    def test_latency_accounting(self):
        metrics = MetricsCollector(2)
        metrics.record_issue(0, 1.0)
        metrics.record_issue(1, 2.0)
        metrics.record_commit(0, 5.0)
        metrics.record_commit(1, 4.0)
        assert metrics.latencies() == [4.0, 2.0]
        assert metrics.is_complete()
        assert metrics.throughput() == pytest.approx(2 / 4.0)

    def test_double_issue_rejected(self):
        metrics = MetricsCollector(1)
        metrics.record_issue(0, 1.0)
        with pytest.raises(SimulationError):
            metrics.record_issue(0, 2.0)

    def test_commit_without_issue_rejected(self):
        metrics = MetricsCollector(1)
        with pytest.raises(SimulationError):
            metrics.record_commit(0, 1.0)

    def test_double_commit_rejected(self):
        metrics = MetricsCollector(1)
        metrics.record_issue(0, 1.0)
        metrics.record_commit(0, 2.0)
        with pytest.raises(SimulationError):
            metrics.record_commit(0, 3.0)

    def test_abort_counts_toward_completion(self):
        metrics = MetricsCollector(1)
        metrics.record_issue(0, 1.0)
        metrics.record_abort(0)
        assert metrics.is_complete()

    def test_empty_throughput(self):
        assert MetricsCollector(0).throughput() == 0.0


class TestDenseMetricsCollector:
    """The preallocated-slot fast path must mirror dict bookkeeping."""

    def test_dense_matches_sparse_series(self):
        dense = MetricsCollector(3, txid_base=10)
        sparse = MetricsCollector(3)
        for metrics in (dense, sparse):
            metrics.record_issue(10, 1.0)
            metrics.record_issue(11, 2.0)
            metrics.record_issue(12, 3.0)
            metrics.record_commit(11, 9.0)
            metrics.record_commit(10, 4.0)
            metrics.record_abort(12)
        assert dense.latencies() == sparse.latencies() == [3.0, 7.0]
        assert dense.commit_times() == sparse.commit_times() == [4.0, 9.0]
        assert dense.throughput() == sparse.throughput()
        assert dense.is_complete() and sparse.is_complete()
        assert dense.issue_time_of(11) == sparse.issue_time_of(11) == 2.0

    def test_dense_rejects_out_of_range(self):
        metrics = MetricsCollector(2, txid_base=0)
        with pytest.raises(SimulationError):
            metrics.record_issue(5, 1.0)

    def test_dense_double_issue_rejected(self):
        metrics = MetricsCollector(2, txid_base=0)
        metrics.record_issue(0, 1.0)
        with pytest.raises(SimulationError):
            metrics.record_issue(0, 2.0)

    def test_dense_commit_without_issue_rejected(self):
        metrics = MetricsCollector(2, txid_base=0)
        with pytest.raises(SimulationError):
            metrics.record_commit(0, 1.0)

    def test_dense_double_commit_rejected(self):
        metrics = MetricsCollector(1, txid_base=0)
        metrics.record_issue(0, 1.0)
        metrics.record_commit(0, 2.0)
        with pytest.raises(SimulationError):
            metrics.record_commit(0, 3.0)

    def test_zero_timestamps_are_recorded(self):
        """0.0 is a legitimate time; the NaN sentinel must not eat it."""
        metrics = MetricsCollector(1, txid_base=0)
        metrics.record_issue(0, 0.0)
        metrics.record_commit(0, 0.0)
        assert metrics.latencies() == [0.0]

    def test_record_commit_now_uses_bound_clock(self):
        events = EventQueue()
        metrics = MetricsCollector(1, txid_base=0, clock=events)
        metrics.record_issue(0, 0.0)
        events.schedule(2.5, lambda: metrics.record_commit_now(0))
        events.run()
        assert metrics.latencies() == [2.5]

    def test_record_commit_now_without_clock_rejected(self):
        metrics = MetricsCollector(1, txid_base=0)
        metrics.record_issue(0, 0.0)
        with pytest.raises(SimulationError):
            metrics.record_commit_now(0)


class TestLatencyObserver:
    def test_produces_model_per_shard(self):
        cfg = config(n_shards=3)
        events = EventQueue()
        consensus = ConsensusModel(cfg)
        shards = [
            Shard(i, cfg, consensus, events, lambda s, e: None)
            for i in range(3)
        ]
        observer = LatencyObserver(cfg, Network(cfg, make_rng(1)), shards)
        models = observer()
        assert len(models) == 3
        assert all(m.lambda_c > 0 and m.lambda_v > 0 for m in models)

    def test_loaded_shard_slower(self):
        cfg = config(n_shards=2, block_capacity=10)
        events = EventQueue()
        consensus = ConsensusModel(cfg)
        shards = [
            Shard(i, cfg, consensus, events, lambda s, e: None)
            for i in range(2)
        ]
        shards[0].pause()
        for txid in range(100):
            shards[0].enqueue(Entry(KIND_TX, txid))
        observer = LatencyObserver(cfg, Network(cfg, make_rng(1)), shards)
        models = observer()
        assert models[0].lambda_v < models[1].lambda_v
