"""Prometheus text exposition (format 0.0.4) without dependencies.

Three pieces:

- :class:`Family` + :func:`render_families`: assemble counter/gauge/
  histogram families into scrape text. Histogram families are fed from
  :class:`~repro.obs.hist.LogHistogram` and exported at power-of-two
  ``le`` edges (exact cumulative counts - the histogram's buckets never
  straddle an octave), dense enough that p999 is derivable from the
  scrape alone.
- :func:`parse_prometheus_text`: a strict-enough parser for the CI
  gates, soak harness, and tests (no promtool in the container).
- :class:`MetricsServer`: a minimal HTTP/1.0 ``GET /metrics`` responder
  that runs on the serving event loop, so a scrape never needs a
  thread and observes the same memory the dispatcher writes.
"""

from __future__ import annotations

import asyncio
import math
from typing import Any, Awaitable, Callable, Iterable

from repro.obs.hist import LogHistogram

__all__ = [
    "Family",
    "MetricsServer",
    "PromParseError",
    "parse_prometheus_text",
    "render_families",
]

_KINDS = ("counter", "gauge", "histogram", "untyped")

#: Default ``le`` ladder: quarter-octave microsecond edges from 64 us
#: to ~64 s (84 buckets). Every edge + 1 is a LogHistogram bucket
#: boundary (sub-bucket ``s * 2**(e-2)``, ``s`` in 4..7, aligns with
#: any precision >= 2), so the cumulative counts are exact and a
#: scrape-derived quantile is within ``2**0.25`` (~19%) of the
#: recorded value - tight enough to gate p999 from the scrape alone.
DEFAULT_EDGES_TICKS = [
    (s << (e - 2)) - 1 for e in range(6, 27) for s in (4, 5, 6, 7)
]


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class Family:
    """One metric family: a TYPE/HELP header plus labeled samples."""

    def __init__(self, name: str, kind: str, help: str = "") -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.samples: list[tuple[str, dict[str, str], float]] = []

    def add(self, value: float, **labels: Any) -> "Family":
        """Add one sample (counter/gauge/untyped families)."""
        self.samples.append(
            (self.name, {k: str(v) for k, v in labels.items()}, value)
        )
        return self

    def add_histogram(
        self,
        hist: LogHistogram,
        edges_ticks: "list[int] | None" = None,
        **labels: Any,
    ) -> "Family":
        """Add one histogram series: ``_bucket`` ladder, ``_sum``, ``_count``."""
        if self.kind != "histogram":
            raise ValueError(f"family {self.name} is {self.kind}")
        edges = edges_ticks if edges_ticks is not None else DEFAULT_EDGES_TICKS
        base = {k: str(v) for k, v in labels.items()}
        cumulative = hist.cumulative_ticks(edges)
        for edge, count in zip(edges, cumulative):
            bucket_labels = dict(base)
            # Inclusive tick edge e covers durations < (e + 1) us.
            bucket_labels["le"] = _format_value((edge + 1) / 1e6)
            self.samples.append((self.name + "_bucket", bucket_labels, count))
        inf_labels = dict(base)
        inf_labels["le"] = "+Inf"
        self.samples.append((self.name + "_bucket", inf_labels, hist.count))
        self.samples.append((self.name + "_sum", base, hist.sum))
        self.samples.append((self.name + "_count", dict(base), hist.count))
        return self


def render_families(families: Iterable[Family]) -> str:
    """Render families to exposition text (trailing newline included)."""
    lines: list[str] = []
    for family in families:
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for name, labels, value in family.samples:
            lines.append(
                f"{name}{_format_labels(labels)} {_format_value(value)}"
            )
    return "\n".join(lines) + "\n"


# -- parsing (tests / gates) -----------------------------------------------


class PromParseError(ValueError):
    """The scrape body is not valid exposition text."""


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    index = 0
    while index < len(text):
        eq = text.index("=", index)
        key = text[index:eq].strip().rstrip(",").strip()
        if text[eq + 1] != '"':
            raise PromParseError(f"unquoted label value near {text[index:]!r}")
        cursor = eq + 2
        out: list[str] = []
        while True:
            char = text[cursor]
            if char == "\\":
                nxt = text[cursor + 1]
                out.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt)
                )
                cursor += 2
            elif char == '"':
                cursor += 1
                break
            else:
                out.append(char)
                cursor += 1
        labels[key] = "".join(out)
        while cursor < len(text) and text[cursor] in ", ":
            cursor += 1
        index = cursor
    return labels


def parse_prometheus_text(
    text: str,
) -> dict[str, dict[str, Any]]:
    """Parse exposition text into families.

    Returns ``{family_name: {"type": kind, "help": str, "samples":
    {(sample_name, ((label, value), ...)): float}}}``. Histogram
    ``_bucket``/``_sum``/``_count`` samples attach to their family
    name. Raises :class:`PromParseError` on malformed lines - this is
    the CI assertion that the endpoint speaks the format.
    """
    families: dict[str, dict[str, Any]] = {}

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name.removesuffix(suffix)
            if base != sample_name and base in families:
                if families[base]["type"] == "histogram":
                    return base
        return sample_name

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise PromParseError(f"malformed comment line {raw!r}")
            _, keyword, name = parts[:3]
            rest = parts[3] if len(parts) > 3 else ""
            entry = families.setdefault(
                name, {"type": "untyped", "help": "", "samples": {}}
            )
            if keyword == "TYPE":
                if rest not in _KINDS:
                    raise PromParseError(f"unknown TYPE {rest!r} in {raw!r}")
                entry["type"] = rest
            else:
                entry["help"] = rest
            continue
        if line.startswith("#"):
            continue
        brace = line.find("{")
        if brace != -1:
            close = line.rfind("}")
            if close == -1:
                raise PromParseError(f"unterminated labels in {raw!r}")
            sample_name = line[:brace]
            labels = _parse_labels(line[brace + 1 : close])
            value_text = line[close + 1 :].strip()
        else:
            fields = line.split()
            if len(fields) < 2:
                raise PromParseError(f"sample line without value: {raw!r}")
            sample_name = fields[0]
            labels = {}
            value_text = fields[1]
        value_text = value_text.split()[0]  # ignore optional timestamp
        try:
            value = float(value_text)
        except ValueError as exc:
            raise PromParseError(
                f"bad value {value_text!r} in {raw!r}"
            ) from exc
        if not sample_name or not sample_name[0].isalpha() and sample_name[0] != "_":
            raise PromParseError(f"bad sample name in {raw!r}")
        entry = families.setdefault(
            family_of(sample_name),
            {"type": "untyped", "help": "", "samples": {}},
        )
        key = (sample_name, tuple(sorted(labels.items())))
        entry["samples"][key] = value
    return families


def sample_value(
    families: dict[str, dict[str, Any]],
    family: str,
    sample: "str | None" = None,
    **labels: Any,
) -> "float | None":
    """Look up one sample by family, sample name, and exact labels."""
    entry = families.get(family)
    if entry is None:
        return None
    want = tuple(sorted((k, str(v)) for k, v in labels.items()))
    return entry["samples"].get((sample or family, want))


def quantile_from_scrape(
    families: dict[str, dict[str, Any]], family: str, q: float, **labels: Any
) -> "float | None":
    """Derive a quantile (seconds) from a scraped histogram family.

    This is the "p999 derivable from the scrape alone" contract: walk
    the cumulative ``_bucket`` ladder for the label set and return the
    first ``le`` whose cumulative count covers rank ``ceil(q * count)``.
    """
    entry = families.get(family)
    if entry is None or entry["type"] != "histogram":
        return None
    want = {k: str(v) for k, v in labels.items()}
    ladder: list[tuple[float, float]] = []
    for (name, label_items), value in entry["samples"].items():
        if name != family + "_bucket":
            continue
        sample_labels = dict(label_items)
        le = sample_labels.pop("le", None)
        if le is None or sample_labels != want:
            continue
        ladder.append((float(le), value))
    if not ladder:
        return None
    ladder.sort()
    total = ladder[-1][1]  # +Inf bucket
    if total <= 0:
        return 0.0
    rank = max(1.0, math.ceil(total * q))
    for le, cumulative in ladder:
        if cumulative >= rank:
            return le
    return ladder[-1][0]  # pragma: no cover - +Inf covers all ranks


# -- the endpoint ----------------------------------------------------------

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Minimal asyncio ``GET /metrics`` responder.

    ``render`` is an async callable returning the scrape body; it runs
    on the serving loop, so it may await worker stats round-trips
    (sharded mode) or read engine state directly (single-process). One
    request per connection (HTTP/1.0 semantics, ``Connection: close``) -
    scrapes are periodic and tiny, keep-alive buys nothing here.
    """

    def __init__(
        self,
        render: Callable[[], Awaitable[str]],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._render = render
        self.host = host
        self.port = port
        self._server: "asyncio.AbstractServer | None" = None

    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readline(), timeout=10.0
            )
            parts = request.decode("latin-1", "replace").split()
            # Drain headers so well-behaved clients see a clean close.
            while True:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=10.0
                )
                if line in (b"\r\n", b"\n", b""):
                    break
            if len(parts) >= 2 and parts[0] == "GET" and (
                parts[1] == "/metrics" or parts[1].startswith("/metrics?")
            ):
                body = (await self._render()).encode("utf-8")
                status = "200 OK"
            elif len(parts) >= 2 and parts[0] == "GET":
                body = b"repro metrics endpoint; scrape /metrics\n"
                status = "404 Not Found"
            else:
                body = b"only GET is supported\n"
                status = "405 Method Not Allowed"
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {CONTENT_TYPE}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
            writer.write(body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - client reset
                pass


async def scrape_metrics(
    host: str, port: int, timeout: float = 10.0
) -> dict[str, dict[str, Any]]:
    """Fetch and parse ``http://host:port/metrics`` (soak/CI helper)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET /metrics HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
    if " 200 " not in status + " ":
        raise PromParseError(f"scrape failed: {status}")
    return parse_prometheus_text(body.decode("utf-8"))
