"""Latency-to-Shard (L2S) score - §IV-C of the paper.

The model: communication between the user and shard ``i`` takes
``Exp(lambda_c_i)`` time; verification at shard ``i`` takes
``Exp(lambda_v_i)``. Time to a proof-of-acceptance from shard ``i`` is
the sum of the two (a hypoexponential), with CDF::

    F_i(t) = lv/(lv-lc) * (1 - e^{-lc t}) - lc/(lv-lc) * (1 - e^{-lv t})

If transaction ``u`` is placed in shard ``j`` it needs acceptances from
its input shards ``S_j``, gathered in parallel, so the time to have all
of them is ``max_i T_i`` with CDF ``prod F_i``; afterwards the commit at
shard ``j`` takes another hypoexponential. The L2S score is the expected
total::

    E(j) = E[max_{S_i in S_j} T_i] + E[T_commit_j]

**Mode choice.** The paper's formula (Alg. 1 line 6) convolves
``f_v^{(j)}`` with itself; the prose suggests an accept-then-commit
pipeline. Three readings are implemented (DESIGN.md §4, substitution 4):

- ``"shard_load"`` (OptChain's default): ``E(j)`` is shard ``j``'s own
  hypoexponential traversed once for a same-shard placement and twice
  (lock pass + commit pass) for a cross-shard one. This is the only
  reading whose score *decreases* when moving away from a congested
  shard - the acceptance-at-input-shards term of the other readings is
  identical for every candidate ``j``, so they can never trade a
  cross-TX for load relief - and therefore the only one that reproduces
  the temporal balancing the paper observes (Figs. 6a, 7).
- ``"accept_commit"``: full-path estimate
  ``E[max_{S_i} T_i] + E[T_commit_j]`` - the best per-transaction latency
  predictor (validated against the simulator in tests), used by the
  ablation bench.
- ``"accept_accept"``: the literal self-convolution of the acceptance
  density, expectation ``2 * E[max]``.

``E[max]`` has a closed form: expanding ``prod_i F_i`` gives a signed sum
of exponentials, and ``E[max] = integral of (1 - prod F_i)`` integrates
each term to ``coefficient / rate``. The expansion has ``3^m`` terms and
catastrophic cancellation when ``lc`` is close to ``lv``, so the
estimator switches to numerical integration for many shards or
near-degenerate rates; tests verify the two paths agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

L2S_MODES = ("shard_load", "accept_commit", "accept_accept")

# Closed form is used only when safe: few shards (3^m term blowup) and
# well-separated rates (cancellation in the partial-fraction
# coefficients).
_MAX_CLOSED_FORM_SHARDS = 7
_MIN_RATE_SEPARATION = 1e-3


@dataclass(frozen=True, slots=True)
class ShardLatencyModel:
    """Exponential latency parameters of one shard.

    ``lambda_c``: communication rate (1 / expected user-shard round trip).
    ``lambda_v``: verification rate (1 / expected time for the shard to
    process the transaction through its queue and consensus).
    """

    lambda_c: float
    lambda_v: float

    def __post_init__(self) -> None:
        if self.lambda_c <= 0 or self.lambda_v <= 0:
            raise ConfigurationError(
                f"rates must be > 0, got lambda_c={self.lambda_c}, "
                f"lambda_v={self.lambda_v}"
            )

    @property
    def expected_total(self) -> float:
        """Mean of the hypoexponential: ``1/lambda_c + 1/lambda_v``."""
        return 1.0 / self.lambda_c + 1.0 / self.lambda_v

    def cdf(self, t: float) -> float:
        """``F_i(t)``: probability the proof arrives by time ``t``."""
        if t <= 0.0:
            return 0.0
        lc, lv = self.lambda_c, self.lambda_v
        if math.isclose(lc, lv, rel_tol=1e-9):
            # Erlang(2, lambda) limit of the hypoexponential.
            return 1.0 - math.exp(-lc * t) * (1.0 + lc * t)
        return (
            lv / (lv - lc) * (1.0 - math.exp(-lc * t))
            - lc / (lv - lc) * (1.0 - math.exp(-lv * t))
        )

    def pdf(self, t: float) -> float:
        """Density of the proof-arrival time."""
        if t < 0.0:
            return 0.0
        lc, lv = self.lambda_c, self.lambda_v
        if math.isclose(lc, lv, rel_tol=1e-9):
            return lc * lc * t * math.exp(-lc * t)
        return lc * lv / (lv - lc) * (math.exp(-lc * t) - math.exp(-lv * t))


def acceptance_cdf(models: Sequence[ShardLatencyModel], t: float) -> float:
    """CDF of the *last* proof-of-acceptance: ``prod_i F_i(t)``."""
    product = 1.0
    for model in models:
        product *= model.cdf(t)
        if product == 0.0:
            return 0.0
    return product


def expected_max_acceptance(models: Sequence[ShardLatencyModel]) -> float:
    """``E[max_i T_i]`` for parallel acceptance from several shards."""
    if not models:
        return 0.0
    if len(models) == 1:
        return models[0].expected_total
    if _closed_form_safe(models):
        return _expected_max_closed_form(models)
    return _expected_max_numeric(models)


def _closed_form_safe(models: Sequence[ShardLatencyModel]) -> bool:
    if len(models) > _MAX_CLOSED_FORM_SHARDS:
        return False
    return all(
        abs(m.lambda_v - m.lambda_c)
        > _MIN_RATE_SEPARATION * max(m.lambda_v, m.lambda_c)
        for m in models
    )


def _expected_max_closed_form(models: Sequence[ShardLatencyModel]) -> float:
    # prod_i F_i(t) = prod_i (1 + a_i e^{-lc_i t} + b_i e^{-lv_i t})
    # expands to sum of c * e^{-r t} terms; E[max] = -sum c/r over the
    # non-constant terms.
    terms: list[tuple[float, float]] = [(1.0, 0.0)]  # (coefficient, rate)
    for model in models:
        lc, lv = model.lambda_c, model.lambda_v
        a = -lv / (lv - lc)
        b = lc / (lv - lc)
        expanded: list[tuple[float, float]] = []
        for coefficient, rate in terms:
            expanded.append((coefficient, rate))
            expanded.append((coefficient * a, rate + lc))
            expanded.append((coefficient * b, rate + lv))
        terms = expanded
    expectation = 0.0
    for coefficient, rate in terms:
        if rate > 0.0:
            expectation -= coefficient / rate
    return expectation


def _expected_max_numeric(
    models: Sequence[ShardLatencyModel], n_points: int = 4096
) -> float:
    # E[max] = integral over t of (1 - prod F_i). The integrand decays
    # like the slowest shard's tail; 40 mean-lifetimes of the slowest
    # shard bounds the truncation error far below the integration error.
    horizon = 40.0 * max(model.expected_total for model in models)
    step = horizon / n_points
    # Composite Simpson needs an even interval count.
    total = 1.0 - acceptance_cdf(models, 0.0)
    total += 1.0 - acceptance_cdf(models, horizon)
    for index in range(1, n_points):
        weight = 4.0 if index % 2 == 1 else 2.0
        total += weight * (1.0 - acceptance_cdf(models, index * step))
    return total * step / 3.0


class L2SEstimator:
    """Computes L2S scores ``E(j)`` for every candidate shard.

    Construct with the per-shard latency models (refreshed by whoever
    observes the network: the simulator's
    :class:`~repro.simulator.metrics.LatencyObserver` or a wallet's
    sampling loop) and ask for the expected confirmation latency of each
    placement choice.
    """

    def __init__(
        self,
        models: Sequence[ShardLatencyModel],
        mode: str = "accept_commit",
    ) -> None:
        if not models:
            raise ConfigurationError("L2SEstimator needs at least one shard")
        if mode not in L2S_MODES:
            raise ConfigurationError(
                f"mode must be one of {L2S_MODES}, got {mode!r}"
            )
        self._models = list(models)
        self.mode = mode

    @property
    def n_shards(self) -> int:
        """Number of shards covered by the models."""
        return len(self._models)

    def model_of(self, shard: int) -> ShardLatencyModel:
        """The latency model of one shard."""
        return self._models[shard]

    def score(self, shard: int, input_shards: Iterable[int]) -> float:
        """``E(j)``: expected confirmation latency placing into ``shard``.

        ``input_shards`` are the shards holding the transaction's inputs
        (``Sin(u)``). When they are empty (coinbase) or all equal to
        ``shard`` (same-shard transaction) there is no acceptance phase.
        """
        acceptance = {s for s in input_shards}
        if not 0 <= shard < len(self._models):
            raise ConfigurationError(
                f"shard {shard} out of range [0, {len(self._models)})"
            )
        is_cross = bool(acceptance) and acceptance != {shard}
        if not is_cross:
            return self._models[shard].expected_total
        if self.mode == "shard_load":
            return 2.0 * self._models[shard].expected_total
        acceptance_models = [self._models[s] for s in sorted(acceptance)]
        expected_accept = expected_max_acceptance(acceptance_models)
        if self.mode == "accept_accept":
            return 2.0 * expected_accept
        return expected_accept + self._models[shard].expected_total

    def scores_all(self, input_shards: Iterable[int]) -> list[float]:
        """``E(j)`` for every shard ``j`` (one call per arriving tx).

        The acceptance set ``Sin(u)`` does not depend on the candidate
        shard, so ``E[max]`` is computed once and reused; only the
        same-shard special case (``Sin == {j}``) skips it.
        """
        shards = set(input_shards)
        n = len(self._models)
        if not shards:
            return [self._models[j].expected_total for j in range(n)]
        if self.mode == "shard_load":
            return [
                self._models[j].expected_total * (1.0 if shards == {j} else 2.0)
                for j in range(n)
            ]
        acceptance_models = [self._models[s] for s in sorted(shards)]
        expected_accept = expected_max_acceptance(acceptance_models)
        scores = []
        for j in range(n):
            if shards == {j}:
                scores.append(self._models[j].expected_total)
            elif self.mode == "accept_accept":
                scores.append(2.0 * expected_accept)
            else:
                scores.append(
                    expected_accept + self._models[j].expected_total
                )
        return scores
