"""Network latency model.

The paper places nodes at random coordinates, imposes 100 ms latency and
20 Mbps bandwidth on every link, and lets distance scale the
communication latency. We reproduce that at shard granularity: each shard
committee (represented by its leader) and the client population get
coordinates in the unit square; a message's delay is::

    propagation + transmission
    propagation  = base_latency * (0.5 + distance)   (0.5x..~1.9x base)
    transmission = size_bytes / bandwidth

plus optional multiplicative jitter. Distances are Euclidean in the unit
square, so the propagation factor spans roughly [0.5, 1.9] - matching the
"distance between nodes affects the communication latency" setup without
simulating 400 x k individual validators (their effect is folded into the
consensus-time model instead).
"""

from __future__ import annotations

import math
import random

from repro.errors import ConfigurationError
from repro.simulator.config import SimulationConfig


class Network:
    """Latency oracle between the client population and shard leaders."""

    CLIENT = -1  # pseudo-node id for the aggregated client population

    def __init__(self, config: SimulationConfig, rng: random.Random) -> None:
        self._config = config
        self._rng = rng
        # Shard leader coordinates; clients sit at the square's center,
        # the average position of a uniformly spread user population.
        self._coords: dict[int, tuple[float, float]] = {
            self.CLIENT: (0.5, 0.5)
        }
        for shard in range(config.n_shards):
            self._coords[shard] = (rng.random(), rng.random())

    def coordinates_of(self, node: int) -> tuple[float, float]:
        """Unit-square coordinates of a shard leader (or the client)."""
        try:
            return self._coords[node]
        except KeyError:
            raise ConfigurationError(f"unknown network node {node}")

    def propagation(self, src: int, dst: int) -> float:
        """Distance-scaled propagation delay in seconds (no jitter)."""
        sx, sy = self.coordinates_of(src)
        dx, dy = self.coordinates_of(dst)
        distance = math.hypot(sx - dx, sy - dy)
        return self._config.base_latency_s * (0.5 + distance)

    def delay(self, src: int, dst: int, size_bytes: int) -> float:
        """Total message delay: propagation + transmission + jitter."""
        if size_bytes < 0:
            raise ConfigurationError(
                f"message size must be >= 0, got {size_bytes}"
            )
        transmission = size_bytes / self._config.bandwidth_bytes_per_s
        base = self.propagation(src, dst) + transmission
        jitter = self._config.latency_jitter
        if jitter == 0.0:
            return base
        return base * (1.0 + self._rng.uniform(-jitter, jitter))

    def expected_client_rtt(self, shard: int) -> float:
        """Mean client<->shard round trip for one small message pair.

        This is what a wallet would measure by sampling, and what seeds
        the L2S communication rate ``lambda_c``.
        """
        one_way = self.propagation(self.CLIENT, shard)
        return 2.0 * one_way
