"""Mini Fig. 11: OptChain's sustainable rate as shards grow.

For each shard count, finds the highest transaction rate the system
sustains without backlogging (drained, healthy latency, bounded queues)
- the paper's scalability result: near-linear growth with the shard
count and confirmation under 11 seconds in the healthy regime.

Run::

    python examples/scalability_sweep.py
"""

from __future__ import annotations

from repro.experiments.configs import get_scale
from repro.experiments.fig11 import as_table, run


def main() -> None:
    scale = get_scale("tiny")
    print(
        f"searching max sustained rate per shard count "
        f"(scale={scale.name}, {scale.n_transactions} txs)...\n"
    )
    points = run(scale)
    print(as_table(points))
    lo, hi = points[0], points[-1]
    if lo.max_rate > 0:
        print(
            f"\n{hi.n_shards} shards sustain "
            f"{hi.max_rate / lo.max_rate:.1f}x the rate of "
            f"{lo.n_shards} shards (paper: near-linear scaling)."
        )


if __name__ == "__main__":
    main()
