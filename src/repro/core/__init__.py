"""OptChain core: the paper's contribution.

- :mod:`repro.core.t2s` - Transaction-to-Shard score: the incremental
  PageRank-style fitness over the TaN DAG (§IV-B).
- :mod:`repro.core.l2s` - Latency-to-Shard score: expected confirmation
  latency from per-shard exponential communication/verification models
  (§IV-C).
- :mod:`repro.core.fitness` - Temporal Fitness: the combination rule of
  Algorithm 1.
- :mod:`repro.core.placement` - the strategy interface and factory.
- :mod:`repro.core.optchain` - Algorithm 1: the OptChain placer.
- :mod:`repro.core.baselines` - OmniLedger random placement, Greedy,
  Metis-offline, and T2S-only placers the paper compares against.
"""

from repro.core.baselines import (
    GreedyPlacer,
    MetisOfflinePlacer,
    OmniLedgerRandomPlacer,
    T2SOnlyPlacer,
)
from repro.core.fitness import TemporalFitness
from repro.core.l2s import L2SEstimator, ShardLatencyModel
from repro.core.optchain import (
    LoadProxyLatencyProvider,
    OptChainPlacer,
    TopKOptChainPlacer,
)
from repro.core.placement import PlacementStrategy, make_placer
from repro.core.scorer import PlacementScorer, make_scorer
from repro.core.t2s import T2SScorer, TopKT2SScorer
from repro.core.wallet import ShardDirectory, SPVWallet, SPVWalletPlacer

__all__ = [
    "GreedyPlacer",
    "L2SEstimator",
    "LoadProxyLatencyProvider",
    "MetisOfflinePlacer",
    "OmniLedgerRandomPlacer",
    "OptChainPlacer",
    "PlacementScorer",
    "PlacementStrategy",
    "SPVWallet",
    "SPVWalletPlacer",
    "ShardDirectory",
    "ShardLatencyModel",
    "T2SOnlyPlacer",
    "T2SScorer",
    "TemporalFitness",
    "TopKOptChainPlacer",
    "TopKT2SScorer",
    "make_placer",
    "make_scorer",
]
