"""Transaction-to-Shard (T2S) score - §IV-B of the paper.

The T2S score of a new transaction ``u`` against shard ``i`` measures the
probability that a PageRank-style random walk from ``u`` over the TaN DAG
terminates in shard ``i`` - how much of ``u``'s ancestry shard ``i``
already owns. The paper's incremental formulation avoids recomputing the
walk for the whole graph on every arrival:

- each placed transaction ``v`` keeps an *unnormalized* sparse vector
  ``p'(v)``;
- on arrival of ``u``::

      p'(u) = (1 - alpha) * sum_{v in Nin(u)} p'(v) / |Nout(v)|
      p(u)[i] = p'(u)[i] / |S_i|          (the normalized T2S score)

- after placing ``u`` into shard ``s``: ``p'(u)[s] += alpha``.

Cost per transaction is ``O(|Nin(u)| * nnz)`` - constant on average since
the TaN is scale-free (paper: average degree about 2.3) and ``p'`` stays
very sparse (mass concentrates on the ancestor shards).

``|Nout(v)|`` semantics: the paper divides by the size of ``Nout(v)``,
the set of transactions spending ``v``'s outputs, *as known when u
arrives* (it is never retroactively updated). That literal reading is the
default (``outdeg_mode="spenders"``). The alternative capacity reading -
divide by the number of outputs ``v`` created, i.e. the maximum possible
spenders - is available as ``outdeg_mode="outputs"`` and compared in the
ablation bench.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.core.scorer import (
    DEFAULT_SUPPORT_CAP,
    PlacementScorer,
    parse_support_cap,
    truncate_support,
)
from repro.errors import ConfigurationError, PlacementError

OUTDEG_MODES = ("spenders", "outputs")


class T2SScorer(PlacementScorer):
    """Incremental T2S scoring engine (the ``"exact"`` scorer kind).

    Usage per arriving transaction::

        scores = scorer.add_transaction(txid, input_txids, n_outputs)
        shard = ...  # choose using scores (and L2S)
        scorer.place(txid, shard)

    ``add_transaction`` must be called in stream order (dense txids);
    ``place`` must be called exactly once per added transaction before
    the next one is added.
    """

    kind = "exact"

    # Truncation accounting, all zero for the exact scorer: reads
    # (support_stats, snapshots) stay uniform across scorer kinds
    # without per-instance storage on this slotted hot class.
    _dropped_mass = 0.0
    _truncated_vectors = 0

    __slots__ = (
        "n_shards",
        "alpha",
        "outdeg_mode",
        "prune_epsilon",
        "_p_prime",
        "_spender_count",
        "_output_count",
        "_shard_sizes",
        "_pending",
        "_scale",
        "_spenders_divisor",
        "_min_mass",
        "_released",
    )

    def __init__(
        self,
        n_shards: int,
        alpha: float = 0.5,
        outdeg_mode: str = "spenders",
        prune_epsilon: float = 1e-12,
    ) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be in (0, 1], got {alpha}"
            )
        if outdeg_mode not in OUTDEG_MODES:
            raise ConfigurationError(
                f"outdeg_mode must be one of {OUTDEG_MODES}, got "
                f"{outdeg_mode!r}"
            )
        if prune_epsilon < 0:
            raise ConfigurationError(
                f"prune_epsilon must be >= 0, got {prune_epsilon}"
            )
        self.n_shards = n_shards
        self.alpha = alpha
        self.outdeg_mode = outdeg_mode
        self.prune_epsilon = prune_epsilon
        # p'(v) as sparse dict shard -> mass, per transaction. A slot
        # is None once the vector has been released (see
        # :meth:`release_vector`).
        self._p_prime: list[dict[int, float] | None] = []
        # Spender count observed so far, per transaction.
        self._spender_count: list[int] = []
        # Output (UTXO) count, per transaction. Only maintained (and
        # only read) when outdeg_mode="outputs"; the default "spenders"
        # divisor never consults it, so the bookkeeping is skipped.
        self._output_count: list[int] = []
        self._shard_sizes = [0] * n_shards
        self._pending: int | None = None
        # Lower bound on the smallest mass of each vector (inf when
        # empty). When ``bound * factor`` clears prune_epsilon, a child
        # vector can skip the entry-by-entry pruning filter entirely.
        self._min_mass: list[float] = []
        # Vectors dropped by the truncation policy (repro.service): the
        # slot holds None, which every read path treats as an empty
        # vector (zero ancestry mass).
        self._released = 0
        # Hot-loop constants, hoisted out of add_transaction_raw.
        self._scale = 1.0 - alpha
        self._spenders_divisor = outdeg_mode == "spenders"

    # -- queries ---------------------------------------------------------

    @property
    def n_transactions(self) -> int:
        """Transactions added so far."""
        return len(self._p_prime)

    @property
    def shard_sizes(self) -> list[int]:
        """Copy of the per-shard placement counts ``|S_i|``."""
        return list(self._shard_sizes)

    @property
    def released_count(self) -> int:
        """Vectors dropped so far by :meth:`release_vector`."""
        return self._released

    @property
    def live_vector_count(self) -> int:
        """Vectors still held in memory (added minus released).

        This is the quantity the service-layer truncation policy bounds:
        without truncation it equals :attr:`n_transactions` and the
        store grows without limit (~1.5 GB at 10M transactions).
        """
        return len(self._p_prime) - self._released

    def support_stats(self) -> dict[str, Any]:
        """Support/saturation observability: live-vector count, mean
        and max vector nnz, and cumulative truncation accounting.

        One O(n_transactions) sweep per call (released slots are kept
        as None placeholders, so they still cost a cheap identity
        check each) - paid by the caller of a ``stats`` op, never by
        the placement hot path (which is why the nnz aggregates are
        not maintained incrementally). ~20 ms per million transactions
        on this container: fine for operator polling, not for per-batch
        calls.
        """
        live = 0
        total_nnz = 0
        max_nnz = 0
        for vector in self._p_prime:
            if vector is None:
                continue
            live += 1
            nnz = len(vector)
            total_nnz += nnz
            if nnz > max_nnz:
                max_nnz = nnz
        return {
            "live_vectors": live,
            "mean_nnz": (total_nnz / live) if live else 0.0,
            "max_nnz": max_nnz,
            "dropped_mass": self._dropped_mass,
            "truncated_vectors": self._truncated_vectors,
            "support_cap": self.support_cap,
        }

    def p_prime_of(self, txid: int) -> dict[int, float]:
        """Copy of the unnormalized vector of a transaction."""
        vector = self._p_prime[txid]
        if vector is None:
            raise PlacementError(
                f"vector of transaction {txid} was released"
            )
        return dict(vector)

    # -- the incremental recurrence ---------------------------------------

    def add_transaction(
        self,
        txid: int,
        input_txids: Sequence[int],
        n_outputs: int = 1,
    ) -> dict[int, float]:
        """Compute the T2S scores of an arriving transaction.

        Returns the *normalized* sparse score map ``{shard: p(u)[shard]}``
        (missing shards score 0). Registers ``u`` as a spender of each
        input, which is what advances ``|Nout(v)|`` for later arrivals.
        """
        self.add_transaction_raw(txid, input_txids, n_outputs)
        return self.normalized(txid)

    def add_transaction_raw(
        self,
        txid: int,
        input_txids: Sequence[int],
        n_outputs: int = 1,
    ) -> dict[int, float]:
        """Like :meth:`add_transaction` but returns the *unnormalized*
        ``p'(u)`` map, borrowed (not copied) from internal state.

        Callers must not mutate the returned dict; normalize an entry on
        the fly as ``mass / max(1, shard_sizes[shard])``. This is the
        placement hot path: it skips the normalized-dict allocation that
        :meth:`add_transaction` pays.
        """
        if self._pending is not None:
            raise PlacementError(
                f"transaction {self._pending} was added but never placed"
            )
        all_p_prime = self._p_prime
        if txid != len(all_p_prime):
            raise PlacementError(
                f"transactions must arrive in dense order: got {txid}, "
                f"expected {len(all_p_prime)}"
            )
        spender_count = self._spender_count
        scale = self._scale
        epsilon = self.prune_epsilon
        # Register u as a spender of each distinct input *before* reading
        # the divisor, so |Nout(v)| includes the edge that u itself just
        # created (a walk from u can only re-enter v's spenders through
        # an edge that exists).
        if len(input_txids) == 1:
            # Average TaN degree is ~2.3 with deduplicated parents, so a
            # single input is the dominant case: no distinct-dict, no
            # accumulation dict - one scaled copy of the parent vector.
            parent = input_txids[0]
            if not 0 <= parent < txid:
                raise PlacementError(
                    f"transaction {txid} has invalid input {parent}"
                )
            spender_count[parent] += 1
            p_prime: dict[int, float] = {}
            bound = math.inf
            if scale > 0.0:
                parent_vector = all_p_prime[parent]
                if parent_vector:
                    if self._spenders_divisor:
                        divisor = spender_count[parent]
                    else:
                        divisor = max(
                            self._output_count[parent],
                            spender_count[parent],
                        )
                    factor = scale / divisor
                    bound = self._min_mass[parent] * factor
                    if epsilon > 0.0 and bound <= epsilon:
                        # Something may fall below the pruning floor:
                        # filter entry by entry, then refresh the bound
                        # so descendants regain the fast path.
                        p_prime = {
                            shard: mass
                            for shard, raw in parent_vector.items()
                            if (mass := raw * factor) > epsilon
                        }
                        bound = (
                            min(p_prime.values()) if p_prime else math.inf
                        )
                    else:
                        # Every scaled mass provably clears the floor
                        # (scaling by a positive factor is monotone even
                        # after rounding), so the filter would keep
                        # everything - skip it.
                        p_prime = {
                            shard: raw * factor
                            for shard, raw in parent_vector.items()
                        }
        else:
            distinct: dict[int, None] = {}
            for parent in input_txids:
                if not 0 <= parent < txid:
                    raise PlacementError(
                        f"transaction {txid} has invalid input {parent}"
                    )
                distinct.setdefault(parent, None)
            for parent in distinct:
                spender_count[parent] += 1

            p_prime = {}
            if scale > 0.0:
                get = None
                for parent in distinct:
                    parent_vector = all_p_prime[parent]
                    if not parent_vector:
                        continue
                    if self._spenders_divisor:
                        divisor = spender_count[parent]
                    else:
                        divisor = max(
                            self._output_count[parent],
                            spender_count[parent],
                        )
                    factor = scale / divisor
                    if get is None:
                        # First contributing parent: a C-level dictcomp
                        # (0.0 + m*factor == m*factor bitwise).
                        p_prime = {
                            shard: mass * factor
                            for shard, mass in parent_vector.items()
                        }
                        get = p_prime.get
                    else:
                        for shard, mass in parent_vector.items():
                            p_prime[shard] = get(shard, 0.0) + mass * factor
            if epsilon > 0.0 and p_prime:
                p_prime = {
                    shard: mass
                    for shard, mass in p_prime.items()
                    if mass > epsilon
                }
            bound = min(p_prime.values()) if p_prime else math.inf
        all_p_prime.append(p_prime)
        self._min_mass.append(bound)
        spender_count.append(0)
        if not self._spenders_divisor:
            self._output_count.append(n_outputs if n_outputs > 1 else 1)
        self._pending = txid
        return p_prime

    def normalized(self, txid: int) -> dict[int, float]:
        """Normalized scores ``p(u)[i] = p'(u)[i] / |S_i|``.

        Empty shards divide by 1: a shard that holds nothing cannot hold
        ancestry, and its raw mass is necessarily 0 anyway.
        """
        vector = self._p_prime[txid]
        if vector is None:
            raise PlacementError(
                f"vector of transaction {txid} was released"
            )
        return {
            shard: mass / max(1, self._shard_sizes[shard])
            for shard, mass in vector.items()
        }

    def place(self, txid: int, shard: int) -> None:
        """Record the placement decision: ``p'(u)[shard] += alpha``."""
        if self._pending != txid:
            raise PlacementError(
                f"place({txid}) without matching add_transaction "
                f"(pending: {self._pending})"
            )
        if not 0 <= shard < self.n_shards:
            raise PlacementError(
                f"shard {shard} out of range [0, {self.n_shards})"
            )
        vector = self._p_prime[txid]
        vector[shard] = value = vector.get(shard, 0.0) + self.alpha
        min_mass = self._min_mass
        if value < min_mass[txid]:
            min_mass[txid] = value
        self._shard_sizes[shard] += 1
        self._pending = None

    def _divisor(self, parent: int) -> int:
        if self.outdeg_mode == "spenders":
            return self._spender_count[parent]
        return max(self._output_count[parent], self._spender_count[parent])

    # -- truncation (the epoch policy of repro.service) --------------------

    def release_vector(self, txid: int) -> None:
        """Drop the sparse vector of ``txid``; its slot reads as empty.

        The service layer calls this for transactions that can never be
        read again - fully-spent transactions whose spender counts have
        frozen (every read of ``p'(v)`` happens when a new child spends
        ``v``, and a fully-spent ``v`` admits no new children on a valid
        stream) - and, in horizon mode, for transactions that have aged
        out of the configured spend horizon. A released slot behaves as
        a vector of all zeros on every scoring path, so releasing a
        vector that *is* read later degrades the walk's ancestry signal
        instead of crashing; the exactness guarantee (placements
        bit-identical to an untruncated run) holds precisely when no
        released vector would have been read.

        Spender/output counts and the placement itself are kept - they
        are O(1) scalars per transaction, and later arrivals still need
        ``|Nout(v)|`` bookkeeping and ``assignment[v]``.
        """
        if not 0 <= txid < len(self._p_prime):
            raise PlacementError(
                f"cannot release unknown transaction {txid}"
            )
        if self._pending == txid:
            raise PlacementError(
                f"cannot release pending transaction {txid}"
            )
        if self._p_prime[txid] is not None:
            self._p_prime[txid] = None
            self._released += 1

    def release_vectors(self, txids) -> None:
        """Bulk :meth:`release_vector`: one call per truncation sweep.

        The service engine releases thousands of vectors per epoch
        boundary; per-txid method dispatch was ~5% of serving CPU, so
        the sweep loop lives inside the scorer with the hot state bound
        to locals.
        """
        p_prime = self._p_prime
        n = len(p_prime)
        pending = self._pending
        released = 0
        for txid in txids:
            if not 0 <= txid < n:
                raise PlacementError(
                    f"cannot release unknown transaction {txid}"
                )
            if txid == pending:
                raise PlacementError(
                    f"cannot release pending transaction {txid}"
                )
            if p_prime[txid] is not None:
                p_prime[txid] = None
                released += 1
        self._released += released

    # -- snapshot/restore --------------------------------------------------

    def export_hot_scalars(self) -> dict[str, Any]:
        """Stream-global scalar accounting, O(1) - the scorer's share of
        a partition handoff (:mod:`repro.service.partition`). Per-txid
        state (vectors, spender counts) stays with the owning partition;
        only what every future placement reads globally travels."""
        return {}

    def import_hot_scalars(self, scalars: dict[str, Any]) -> None:
        """Load a dump produced by :meth:`export_hot_scalars`."""

    def export_state(self) -> dict[str, Any]:
        """Plain-data dump of the scorer state (see service.state).

        Requires a quiescent scorer (no transaction added but not yet
        placed); the serving layer only snapshots between batches, where
        that always holds.
        """
        if self._pending is not None:
            raise PlacementError(
                f"cannot snapshot with transaction {self._pending} "
                "pending placement"
            )
        state: dict[str, Any] = {
            "p_prime": [
                None if vector is None else dict(vector)
                for vector in self._p_prime
            ],
            "spender_count": list(self._spender_count),
            "min_mass": list(self._min_mass),
            "shard_sizes": list(self._shard_sizes),
            "released": self._released,
        }
        if not self._spenders_divisor:
            state["output_count"] = list(self._output_count)
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        """Load a dump produced by :meth:`export_state` (same config)."""
        sizes = state["shard_sizes"]
        if len(sizes) != self.n_shards:
            raise PlacementError(
                f"snapshot has {len(sizes)} shards, scorer has "
                f"{self.n_shards}"
            )
        self._p_prime[:] = [
            None if vector is None else dict(vector)
            for vector in state["p_prime"]
        ]
        self._spender_count[:] = state["spender_count"]
        self._min_mass[:] = state["min_mass"]
        self._shard_sizes[:] = sizes
        self._released = state["released"]
        if not self._spenders_divisor:
            self._output_count[:] = state["output_count"]
        self._pending = None


class TopKT2SScorer(T2SScorer):
    """Bounded-support T2S scoring (the ``"topk"`` scorer kind).

    Identical to the exact recurrence except that each arriving
    transaction's vector retains only its ``support_cap`` largest-mass
    entries (ties at the cutoff keep the lower shard id; survivors keep
    insertion order). Dropped mass is accumulated in
    ``dropped_mass_total`` so the signal the bound gives up stays
    observable - a production deployment can watch saturation instead
    of discovering it as quality drift.

    Why this is sound: the fused fitness argmax optimizes exactly over
    the stored sparse scores - its pruning bounds
    (``max(raw.values()) / min_size`` from above, the lightest shard's
    latency from below) are computed from the truncated vector itself,
    so every skip remains provably correct *for the truncated scorer*.
    Truncation changes which scores exist, never how the argmax treats
    them; a dropped shard scores exactly zero, which the spill path
    already handles. The trade is placement quality, not correctness,
    and it is measured (BENCH_placement.json ``topk_frontier``).

    With ``support_cap >= n_shards`` the variant is **bit-identical**
    to :class:`T2SScorer`: vector keys are shard ids, so nnz can never
    exceed ``n_shards`` and truncation never fires (pinned by
    ``tests/core/test_topk_scorer.py``).

    Placement-side vectors may transiently hold ``support_cap + 1``
    entries: :meth:`place` adds the chosen shard's ``alpha`` without
    evicting (evicting there would discard the freshest - and usually
    largest - signal), and children re-truncate on arrival, so the
    stored bound is ``support_cap + 1``.
    """

    kind = "topk"

    # No __slots__: the parent's class-level truncation attributes are
    # shadowed by per-instance values here, which slots would reject as
    # a name conflict. One dict per scorer instance (not per
    # transaction) is irrelevant to the hot path.

    def __init__(
        self,
        n_shards: int,
        support_cap: int = DEFAULT_SUPPORT_CAP,
        alpha: float = 0.5,
        outdeg_mode: str = "spenders",
        prune_epsilon: float = 1e-12,
    ) -> None:
        super().__init__(
            n_shards,
            alpha=alpha,
            outdeg_mode=outdeg_mode,
            prune_epsilon=prune_epsilon,
        )
        if support_cap < 1:
            raise ConfigurationError(
                f"support_cap must be >= 1, got {support_cap}"
            )
        self.support_cap = support_cap
        self._dropped_mass = 0.0
        self._truncated_vectors = 0

    @property
    def dropped_mass_total(self) -> float:
        """Cumulative T2S mass discarded by truncation."""
        return self._dropped_mass

    @property
    def truncated_vector_count(self) -> int:
        """Vectors that arrived with support above the cap."""
        return self._truncated_vectors

    def add_transaction_raw(
        self,
        txid: int,
        input_txids: Sequence[int],
        n_outputs: int = 1,
    ) -> dict[int, float]:
        raw = super().add_transaction_raw(txid, input_txids, n_outputs)
        cap = self.support_cap
        if len(raw) > cap:
            raw, dropped = truncate_support(raw, cap)
            self._p_prime[txid] = raw
            # cap >= 1, so the truncated vector is never empty.
            self._min_mass[txid] = min(raw.values())
            self._dropped_mass += dropped
            self._truncated_vectors += 1
        return raw

    # -- snapshot/restore --------------------------------------------------

    def export_hot_scalars(self) -> dict[str, Any]:
        return {
            "dropped_mass": self._dropped_mass,
            "truncated_vectors": self._truncated_vectors,
        }

    def import_hot_scalars(self, scalars: dict[str, Any]) -> None:
        self._dropped_mass = scalars["dropped_mass"]
        self._truncated_vectors = scalars["truncated_vectors"]

    def export_state(self) -> dict[str, Any]:
        state = super().export_state()
        state["dropped_mass"] = self._dropped_mass
        state["truncated_vectors"] = self._truncated_vectors
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        self._dropped_mass = state.get("dropped_mass", 0.0)
        self._truncated_vectors = state.get("truncated_vectors", 0)


#: Adaptive-cap defaults: start at 4 retained entries (the cheapest
#: measured frontier point) and re-evaluate the dropped-mass rate every
#: 2000 transactions - long enough for the rate to be a signal, short
#: enough to converge within the first epoch of a long stream.
ADAPTIVE_INITIAL_CAP = 4
ADAPTIVE_WINDOW = 2_000


class AdaptiveTopKT2SScorer(TopKT2SScorer):
    """Bounded-support scoring with a self-tuning cap (``"topk-adaptive"``).

    Finishes the sublinear-support story: instead of hand-picking
    ``support_cap`` per workload, start small and *grow* it (doubling,
    up to ``n_shards``) while the observed *dropped-mass rate* - the
    fraction of processed T2S mass discarded by truncation over the
    last ``window`` transactions - stays above ``target_rate``. Once
    the rate crosses below the threshold the cap stops growing, landing
    at the smallest cap whose signal loss is acceptable. The cap never
    shrinks: saturation only increases as a stream ages (ROADMAP: nnz
    -> n_shards), so a cap that was once needed stays needed.

    A ``target_rate`` of 0 therefore grows the cap to ``n_shards``
    whenever *any* mass is dropped - converging to exact scoring -
    while a large rate freezes the initial cap. Both are property-
    tested.

    Not fused: the window accounting needs the per-transaction retained
    mass, so this scorer runs through the unfused interface
    (:attr:`fused_compatible` is False). That costs ~15% placement
    throughput against the fused fixed-cap lane - the trade for not
    shipping a mistuned cap.
    """

    kind = "topk-adaptive"
    fused_compatible = False

    def __init__(
        self,
        n_shards: int,
        target_rate: float,
        support_cap: int = ADAPTIVE_INITIAL_CAP,
        window: int = ADAPTIVE_WINDOW,
        alpha: float = 0.5,
        outdeg_mode: str = "spenders",
        prune_epsilon: float = 1e-12,
    ) -> None:
        super().__init__(
            n_shards,
            # The cap can never usefully exceed n_shards (vector keys
            # are shard ids), so the initial cap is clamped.
            support_cap=min(support_cap, n_shards),
            alpha=alpha,
            outdeg_mode=outdeg_mode,
            prune_epsilon=prune_epsilon,
        )
        if not 0.0 <= target_rate < 1.0:
            raise ConfigurationError(
                f"target_rate must be in [0, 1), got {target_rate}"
            )
        if window < 1:
            raise ConfigurationError(
                f"window must be >= 1, got {window}"
            )
        self.target_rate = target_rate
        self.window = window
        self.initial_cap = self.support_cap
        self._window_count = 0
        self._window_mass = 0.0
        self._window_dropped = 0.0
        self._cap_growths = 0

    @property
    def cap_growths(self) -> int:
        """How many times the window check grew the cap."""
        return self._cap_growths

    def add_transaction_raw(
        self,
        txid: int,
        input_txids: Sequence[int],
        n_outputs: int = 1,
    ) -> dict[int, float]:
        dropped_before = self._dropped_mass
        raw = super().add_transaction_raw(txid, input_txids, n_outputs)
        dropped = self._dropped_mass - dropped_before
        # fsum: the retained mass must not depend on the vector's key
        # order, which is a state-representation artifact (the python
        # backend keeps first-touch insertion order, the typed-array
        # backend materializes rows in ascending shard order). An
        # exactly-rounded sum is identical under any permutation, so
        # the window accounting stays bit-identical across backends.
        retained = math.fsum(raw.values())
        self._window_mass += retained + dropped
        self._window_dropped += dropped
        self._window_count += 1
        if self._window_count >= self.window:
            self._evaluate_window()
        return raw

    def _evaluate_window(self) -> None:
        mass = self._window_mass
        if (
            mass > 0.0
            and self._window_dropped / mass > self.target_rate
            and self.support_cap < self.n_shards
        ):
            self.support_cap = min(self.support_cap * 2, self.n_shards)
            self._cap_growths += 1
        self._window_count = 0
        self._window_mass = 0.0
        self._window_dropped = 0.0

    # -- snapshot/handoff --------------------------------------------------

    def export_hot_scalars(self) -> dict[str, Any]:
        scalars = super().export_hot_scalars()
        scalars.update(
            {
                "support_cap": self.support_cap,
                "cap_growths": self._cap_growths,
                "window_count": self._window_count,
                "window_mass": self._window_mass,
                "window_dropped": self._window_dropped,
            }
        )
        return scalars

    def import_hot_scalars(self, scalars: dict[str, Any]) -> None:
        super().import_hot_scalars(scalars)
        self.support_cap = scalars["support_cap"]
        self._cap_growths = scalars["cap_growths"]
        self._window_count = scalars["window_count"]
        self._window_mass = scalars["window_mass"]
        self._window_dropped = scalars["window_dropped"]

    def export_state(self) -> dict[str, Any]:
        state = super().export_state()
        state.update(
            {
                "support_cap": self.support_cap,
                "cap_growths": self._cap_growths,
                "window_count": self._window_count,
                "window_mass": self._window_mass,
                "window_dropped": self._window_dropped,
            }
        )
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        self.support_cap = state["support_cap"]
        self._cap_growths = state["cap_growths"]
        self._window_count = state["window_count"]
        self._window_mass = state["window_mass"]
        self._window_dropped = state["window_dropped"]


def make_support_scorer(
    n_shards: int,
    support_cap,
    *,
    alpha: float = 0.5,
    outdeg_mode: str = "spenders",
    initial_cap: "int | None" = None,
    window: "int | None" = None,
) -> TopKT2SScorer:
    """Bounded-support scorer from a cap setting (int or ``auto:<r>``)."""
    mode, value = parse_support_cap(support_cap)
    if mode == "fixed":
        return TopKT2SScorer(
            n_shards,
            support_cap=value,
            alpha=alpha,
            outdeg_mode=outdeg_mode,
        )
    kwargs: dict[str, Any] = {}
    if initial_cap is not None:
        kwargs["support_cap"] = initial_cap
    if window is not None:
        kwargs["window"] = window
    return AdaptiveTopKT2SScorer(
        n_shards,
        target_rate=value,
        alpha=alpha,
        outdeg_mode=outdeg_mode,
        **kwargs,
    )


def t2s_reference_dense(
    arrivals: Sequence[tuple[int, Sequence[int], int]],
    placements: Sequence[int],
    n_shards: int,
    alpha: float = 0.5,
    outdeg_mode: str = "spenders",
) -> list[list[float]]:
    """Dense, no-pruning replay of the T2S recurrence (test oracle).

    ``arrivals`` is ``(txid, input_txids, n_outputs)`` in order;
    ``placements[txid]`` is the shard each transaction went to. Returns
    the *unnormalized* ``p'`` vectors after the full replay. The sparse
    incremental engine must agree with this up to pruning (exact when
    pruning is disabled).
    """
    if outdeg_mode not in OUTDEG_MODES:
        raise ConfigurationError(f"bad outdeg_mode {outdeg_mode!r}")
    p_prime: list[list[float]] = []
    spenders: list[int] = []
    outputs: list[int] = []
    for txid, input_txids, n_outputs in arrivals:
        distinct = list(dict.fromkeys(input_txids))
        for parent in distinct:
            spenders[parent] += 1
        vector = [0.0] * n_shards
        for parent in distinct:
            if outdeg_mode == "spenders":
                divisor = spenders[parent]
            else:
                divisor = max(outputs[parent], spenders[parent])
            for shard in range(n_shards):
                vector[shard] += (
                    (1.0 - alpha) * p_prime[parent][shard] / divisor
                )
        vector[placements[txid]] += alpha
        p_prime.append(vector)
        spenders.append(0)
        outputs.append(max(1, n_outputs))
    return p_prime
