"""Streaming graph partitioning heuristics (Stanton-Kliot family).

Related-work baselines: one-pass partitioners that see nodes in arrival
order and assign each immediately. They optimize *crossing edges*, not
cross-shard transactions, which is the distinction the paper draws in
§II - useful here both as extra baselines and in tests contrasting the
two objectives.

All functions take the stream as a :class:`TaNGraph` prefix callback
style: nodes are processed in id order and only edges to earlier nodes
are visible, exactly like the online setting.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import PartitionError
from repro.rng import make_rng
from repro.txgraph.tan import TaNGraph


def _check_parts(n_parts: int) -> None:
    if n_parts <= 0:
        raise PartitionError(f"n_parts must be > 0, got {n_parts}")


def hashing_partition(tan: TaNGraph, n_parts: int, seed: int = 0) -> list[int]:
    """Pseudo-random assignment (the weakest Stanton-Kliot baseline).

    Equivalent in distribution to OmniLedger's hash placement; kept
    separate because it hashes node ids rather than transaction content.
    """
    _check_parts(n_parts)
    rng = make_rng(seed)
    return [rng.randrange(n_parts) for _ in tan.nodes()]


def chunking_partition(tan: TaNGraph, n_parts: int, chunk: int = 1000) -> list[int]:
    """Round-robin contiguous chunks of the stream.

    Perfectly balanced over time windows of ``chunk * n_parts`` but cuts
    every edge that spans a chunk boundary.
    """
    _check_parts(n_parts)
    if chunk <= 0:
        raise PartitionError(f"chunk must be > 0, got {chunk}")
    return [(u // chunk) % n_parts for u in tan.nodes()]


def linear_greedy_partition(
    tan: TaNGraph,
    n_parts: int,
    epsilon: float = 0.1,
    weight: Callable[[float], float] | None = None,
) -> list[int]:
    """Linear weighted greedy: maximize neighbors minus a load penalty.

    Assigns node ``u`` to the part maximizing
    ``|neighbors in part| * (1 - size/capacity)`` - the best-performing
    heuristic in the Stanton-Kliot study. ``weight`` can replace the
    linear penalty.
    """
    _check_parts(n_parts)
    if epsilon < 0:
        raise PartitionError(f"epsilon must be >= 0, got {epsilon}")
    n = tan.n_nodes
    capacity = max(1.0, (1.0 + epsilon) * n / n_parts)
    penalty = weight or (lambda load: 1.0 - load)
    assignment = [0] * n
    sizes = [0] * n_parts
    for u in tan.nodes():
        connectivity = [0] * n_parts
        for parent in tan.inputs_of(u):
            connectivity[assignment[parent]] += 1
        best_part = 0
        best_score = float("-inf")
        for part in range(n_parts):
            score = connectivity[part] * penalty(sizes[part] / capacity)
            # Tie-break toward the lightest part to keep balance when a
            # node has no placed neighbors (score 0 everywhere).
            if score > best_score or (
                score == best_score and sizes[part] < sizes[best_part]
            ):
                best_score = score
                best_part = part
        assignment[u] = best_part
        sizes[best_part] += 1
    return assignment


def exponential_greedy_partition(
    tan: TaNGraph, n_parts: int, epsilon: float = 0.1
) -> list[int]:
    """Exponentially weighted greedy (Stanton-Kliot variant).

    Like :func:`linear_greedy_partition` but with penalty
    ``1 - exp(size - capacity)``: essentially no pressure until a part
    approaches capacity, then a hard wall. Trades balance for cut
    quality relative to the linear penalty.
    """
    import math

    _check_parts(n_parts)
    if epsilon < 0:
        raise PartitionError(f"epsilon must be >= 0, got {epsilon}")
    n = tan.n_nodes
    capacity = max(1.0, (1.0 + epsilon) * n / n_parts)
    return linear_greedy_partition(
        tan,
        n_parts,
        epsilon=epsilon,
        weight=lambda load: 1.0 - math.exp((load - 1.0) * capacity / 8.0),
    )


def fennel_partition(
    tan: TaNGraph,
    n_parts: int,
    gamma: float = 1.5,
    balance_pressure: float | None = None,
) -> list[int]:
    """Fennel streaming partitioning (Tsourakakis et al.).

    Assigns node ``u`` to the part maximizing
    ``|neighbors in part| - alpha * gamma * size^(gamma - 1)``, the
    interpolation between cut minimization and balance that the
    streaming-partitioning literature (cited via Abbas et al. in the
    paper's §II) found strongest. ``alpha`` defaults to the standard
    ``m * k^(gamma-1) / n^gamma`` with a final-size estimate from the
    stream length.
    """
    _check_parts(n_parts)
    if gamma <= 1.0:
        raise PartitionError(f"gamma must be > 1, got {gamma}")
    n = max(1, tan.n_nodes)
    m = max(1, tan.n_edges)
    alpha = (
        balance_pressure
        if balance_pressure is not None
        else m * (n_parts ** (gamma - 1.0)) / (n**gamma)
    )
    assignment = [0] * tan.n_nodes
    sizes = [0] * n_parts
    for u in tan.nodes():
        connectivity = [0.0] * n_parts
        for parent in tan.inputs_of(u):
            connectivity[assignment[parent]] += 1.0
        best_part = 0
        best_score = float("-inf")
        for part in range(n_parts):
            score = connectivity[part] - alpha * gamma * (
                sizes[part] ** (gamma - 1.0)
            )
            if score > best_score or (
                score == best_score and sizes[part] < sizes[best_part]
            ):
                best_score = score
                best_part = part
        assignment[u] = best_part
        sizes[best_part] += 1
    return assignment
