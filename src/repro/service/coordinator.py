"""The sharded placement service: a routing front-end over N workers.

``repro serve --workers N`` runs this instead of the single-process
:class:`~repro.service.server.PlacementServer`. The coordinator owns
the client port (both codecs, same as the monolith) but does **no
placement work itself**: a binary ``place`` request is routed to the
owning worker by peeking the txid range at a fixed offset in the
payload - the raw bytes are forwarded without decoding. Workers own
partitioned engines (:mod:`repro.service.partition`), decode and queue
batches on arrival, and place them when they hold the write lease; the
coordinator shepherds the lease (grant on ``W_RELEASE``), relays
cross-partition parent reads and writebacks between workers, merges
``stats``, and orchestrates cross-partition checkpoints (pause the
active worker, snapshot every partition, write a manifest, resume).

Differences from the monolith, stated plainly:

- A client batch that crosses a lease boundary is split and the
  segments commit independently (atomic validation holds *per
  segment*). With the default lease of 25k transactions and the 8192
  batch ceiling this affects at most one request per lease.
- On shutdown, queued requests still waiting for a txid gap are failed
  (as in the monolith); in-flight batches complete first.
- If a worker dies - idle or **active, mid-batch** - its in-flight
  requests fail with a retryable ``retry`` reply and the coordinator
  respawns it (bounded attempts, exponential backoff): the worker
  restores its per-partition checkpoint, replays its write-ahead
  journal tail (:mod:`repro.service.journal`) to the exact crash
  state, re-delivers the possibly-lost writebacks of its final batch,
  and rejoins; the active partition is then re-granted the lease.
  Requests targeting a recovering partition get ``retry`` replies;
  writebacks destined for it are buffered and flushed on respawn.
  **Degraded** mode - refusing placements with an explicit error - is
  reserved for truly unrecoverable state: checkpoint *and* journal
  both missing/destroyed for a partition that holds placed state,
  respawn attempts exhausted, or a respawn surfacing a forked cursor.
- Liveness is active: the coordinator heartbeats every worker
  (``W_PING``) and kills/recovers one that stops answering, so a hung
  worker is handled like a crashed one.
- Admission control: each partition has a bounded in-flight window;
  beyond it the coordinator replies ``overload`` instead of queueing
  without bound.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import secrets
import sys
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError, ProtocolError
from repro.obs.drift import merge_drift_dicts
from repro.obs.metrics import merge_metric_dicts, rss_kb, service_families
from repro.obs.prom import render_families
from repro.service import channel as ch
from repro.service.channel import ChannelClosed, FrameChannel
from repro.service.journal import journal_path_for
from repro.service.server import DEFAULT_PORT, PlacementServer
from repro.service.wire import (
    FRAME_HEADER_BYTES,
    PROTOCOL_VERSION,
    decode_place_payload,
    decode_response,
    encode_place_request,
    encode_response_for,
    peek_place_header,
)
from repro.service.worker import worker_main
from repro.utxo.transaction import Transaction

MANIFEST_FORMAT = 1


class _WorkerHandle:
    """Coordinator-side view of one worker process."""

    __slots__ = (
        "partition_id",
        "process",
        "channel",
        "alive",
        "checkpoint_path",
        "_hello_cursor",
        "inflight",
        "recovering",
        "died_active",
        "pending_writebacks",
        "pending_grant",
        "startup_writebacks",
    )

    def __init__(self, partition_id: int, checkpoint_path: "str | None"):
        self.partition_id = partition_id
        self.process = None
        self.channel: "FrameChannel | None" = None
        self.alive = False
        self.checkpoint_path = checkpoint_path
        self._hello_cursor: "int | None" = None
        #: Outstanding W_PLACE round trips (admission control).
        self.inflight = 0
        #: True while the supervisor's recovery loop owns this worker.
        self.recovering = False
        #: Did the worker hold the write lease when it was lost? Only
        #: then are its replayed final-batch writebacks re-delivered.
        self.died_active = False
        #: Writebacks addressed to this worker while it was down,
        #: flushed (in order) on its respawn hello.
        self.pending_writebacks: list[dict[str, Any]] = []
        #: A lease grant (hot state) that could not be delivered
        #: because this worker was down; flushed after respawn.
        self.pending_grant: "dict[str, Any] | None" = None
        #: Recovery writebacks reported at startup, resolved once all
        #: workers are up (only the stream frontier holder's apply).
        self.startup_writebacks: "list[dict[str, Any]] | None" = None

    async def request_json(
        self, kind: int, body: "dict[str, Any] | None" = None
    ) -> dict:
        """One JSON request/response round trip (raises ChannelClosed)."""
        if not self.alive or self.channel is None:
            raise ChannelClosed(
                f"worker {self.partition_id} is not connected"
            )
        response_kind, payload = await self.channel.request(
            kind, ch.json_payload(body) if body else b""
        )
        return decode_response(response_kind, payload)


class ShardedPlacementServer(PlacementServer):
    """Client front-end + worker supervisor of the sharded service."""

    def __init__(
        self,
        spec: dict[str, Any],
        n_workers: int,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        lease_length: int = 25_000,
        max_batch_txs: int = 8192,
        max_line_bytes: int = 8 * 1024 * 1024,
        checkpoint_path: "str | None" = None,
        checkpoint_compress: bool = False,
        worker_start_timeout: float = 120.0,
        max_inflight: int = 256,
        heartbeat_interval: float = 5.0,
        heartbeat_timeout: float = 30.0,
        max_respawns: int = 3,
        respawn_backoff: float = 0.25,
        wal: bool = True,
        wal_sync_bytes: int = 1 << 20,
        faults: "dict[str, Any] | None" = None,
        metrics_port: "int | None" = None,
        metrics_host: "str | None" = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        super().__init__(
            engine=None,
            host=host,
            port=port,
            max_batch_txs=max_batch_txs,
            max_line_bytes=max_line_bytes,
            checkpoint_path=checkpoint_path,
            checkpoint_compress=checkpoint_compress,
            metrics_port=metrics_port,
            metrics_host=metrics_host,
        )
        self._spec = dict(spec)
        self._n_workers = n_workers
        self._lease_length = lease_length
        self._start_timeout = worker_start_timeout
        self._token = secrets.token_hex(16)
        self._workers = [
            _WorkerHandle(index, self._partition_path(index))
            for index in range(n_workers)
        ]
        self._hello_waiters: dict[int, asyncio.Future] = {}
        self._worker_server: "asyncio.AbstractServer | None" = None
        self._worker_port = 0
        self._cursor = 0
        self._granted = 0
        self._degraded: "str | None" = None
        self._handoff_lock = asyncio.Lock()
        self._respawn_tasks: set[asyncio.Task] = set()
        self._mp = multiprocessing.get_context("spawn")
        self._max_inflight = max_inflight
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_timeout = heartbeat_timeout
        self._max_respawns = max_respawns
        self._respawn_backoff = respawn_backoff
        self._wal = wal
        self._wal_sync_bytes = wal_sync_bytes
        self._faults = faults
        self._heartbeat_task: "asyncio.Task | None" = None

    # -- layout helpers ----------------------------------------------------

    def _partition_path(self, partition_id: int) -> "str | None":
        if self._checkpoint_path is None:
            return None
        return f"{self._checkpoint_path}.p{partition_id}"

    @property
    def _manifest_path(self) -> "str | None":
        if self._checkpoint_path is None:
            return None
        return f"{self._checkpoint_path}.manifest.json"

    def _owner_of(self, txid: int) -> int:
        return (txid // self._lease_length) % self._n_workers

    def _expected_cursor(
        self, partition_id: int, assume_idle: bool = False
    ) -> int:
        """Local cursor a healthy partition must be at, given the
        global cursor: the end of its last started lease, or the
        global cursor itself for the write-lease holder (which, at an
        exact lease boundary, is the *next* lease's owner - it has
        already imported the hot state and padded to the cursor).

        ``assume_idle`` computes the idle expectation even for the
        cursor's owner - used when that owner died *before* receiving
        its grant (the hot state is parked in ``pending_grant``), so
        its local cursor is still at its previous lease's end.
        """
        cursor = self._cursor
        if cursor == 0:
            return 0
        if not assume_idle and partition_id == self._owner_of(cursor):
            return cursor
        lease = (cursor - 1) // self._lease_length
        while lease >= 0:
            if lease % self._n_workers == partition_id:
                return min(cursor, (lease + 1) * self._lease_length)
            lease -= 1
        return 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._load_manifest()
        self._worker_server = await asyncio.start_server(
            self._on_worker_connection, "127.0.0.1", 0
        )
        self._worker_port = self._worker_server.sockets[0].getsockname()[1]
        hellos = []
        for handle in self._workers:
            hellos.append(self._await_hello(handle.partition_id))
            self._spawn(handle)
        try:
            await asyncio.wait_for(
                asyncio.gather(*hellos), self._start_timeout
            )
        except asyncio.TimeoutError:
            raise ConfigurationError(
                f"workers did not all connect within "
                f"{self._start_timeout}s"
            )
        self._validate_worker_cursors()
        await self._replay_startup_writebacks()
        # Hand the write lease to the owner of the cursor's lease. Its
        # own (fresh or restored) state is current, so no hot payload.
        self._granted = self._owner_of(self._cursor)
        await self._workers[self._granted].request_json(ch.W_GRANT, {})
        if self._heartbeat_interval > 0:
            self._heartbeat_task = asyncio.create_task(
                self._heartbeat_loop()
            )
        self._server = await asyncio.start_server(
            self._on_connection,
            self._host,
            self._port,
            limit=self._max_line_bytes,
        )
        self._port = self._server.sockets[0].getsockname()[1]
        if self._metrics_server is not None:
            await self._metrics_server.start()

    def _spawn(self, handle: _WorkerHandle) -> None:
        spec = dict(self._spec)
        spec["n_partitions"] = self._n_workers
        spec["lease_length"] = self._lease_length
        spec["max_batch_txs"] = self._max_batch_txs
        spec["checkpoint"] = handle.checkpoint_path
        spec["checkpoint_compress"] = self._checkpoint_compress
        spec["wal"] = self._wal
        spec["wal_sync_bytes"] = self._wal_sync_bytes
        if self._faults:
            spec["faults"] = dict(self._faults)
        process = self._mp.Process(
            target=worker_main,
            args=(
                "127.0.0.1",
                self._worker_port,
                self._token,
                handle.partition_id,
                spec,
            ),
            daemon=True,
        )
        process.start()
        handle.process = process

    def _await_hello(self, partition_id: int) -> asyncio.Future:
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        self._hello_waiters[partition_id] = future
        return future

    def _validate_worker_cursors(self) -> None:
        # The write-ahead journals can carry a partition past the
        # manifest cursor (the manifest is only rewritten at
        # checkpoints): after a hard stop of the whole service, replay
        # puts the last active partition at the true stream frontier.
        # Adopt that frontier, then require every partition to sit
        # exactly where a healthy stream at the adopted cursor puts it.
        frontier = max(
            (handle._hello_cursor or 0 for handle in self._workers),
            default=0,
        )
        self._cursor = max(self._cursor, frontier)
        for handle in self._workers:
            expected = self._expected_cursor(handle.partition_id)
            reported = getattr(handle, "_hello_cursor", None)
            if reported is not None and reported != expected:
                raise ConfigurationError(
                    f"worker {handle.partition_id} restored cursor "
                    f"{reported}, expected {expected}; delete the "
                    f"checkpoint set to start fresh"
                )

    async def _replay_startup_writebacks(self) -> None:
        """Re-deliver possibly-lost writebacks after a hard stop.

        Only the stream-frontier holder's final journaled batch can
        have undelivered writebacks (nothing placed after it anywhere);
        every other partition's stash predates a completed lease
        handoff and is dropped.
        """
        for handle in self._workers:
            stashed = handle.startup_writebacks
            handle.startup_writebacks = None
            if (
                stashed
                and self._cursor > 0
                and (handle._hello_cursor or 0) == self._cursor
            ):
                await self._apply_updates_by_owner(stashed)

    async def stop(self) -> None:
        """Drain, checkpoint (if configured), stop workers. Idempotent."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        # 1. Drain: workers fail their gapped queues and finish the
        #    batch in flight; every outstanding client response then
        #    resolves.
        for handle in self._workers:
            if handle.alive:
                try:
                    await handle.request_json(
                        ch.W_SHUTDOWN, {"drain": True}
                    )
                except ChannelClosed:
                    pass
        if self._line_tasks:
            await asyncio.gather(
                *list(self._line_tasks), return_exceptions=True
            )
        # 2. Checkpoint the drained partitions.
        if self._checkpoint_path is not None and self._degraded is None:
            try:
                await self._checkpoint_all()
            except ChannelClosed:
                pass
        # 3. Exit the workers and reap the processes.
        for handle in self._workers:
            if handle.alive:
                try:
                    await handle.request_json(
                        ch.W_SHUTDOWN, {"exit": True}
                    )
                except ChannelClosed:
                    pass
        for handle in self._workers:
            if handle.channel is not None:
                await handle.channel.close()
            if handle.process is not None:
                handle.process.join(timeout=10)
                if handle.process.is_alive():  # pragma: no cover
                    handle.process.kill()
                    handle.process.join(timeout=5)
        for task in list(self._respawn_tasks):
            task.cancel()
        if self._respawn_tasks:
            await asyncio.gather(
                *list(self._respawn_tasks), return_exceptions=True
            )
        if self._metrics_server is not None:
            await self._metrics_server.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._worker_server is not None:
            self._worker_server.close()
            await self._worker_server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        self._stopped.set()

    # -- worker links ------------------------------------------------------

    async def _on_worker_connection(self, reader, writer) -> None:
        holder: dict[str, Any] = {"handle": None}

        async def handle_frame(
            kind: int, request_id: int, payload: bytes
        ) -> bytes:
            if kind == ch.W_HELLO:
                return await self._handle_hello(
                    holder, channel, request_id, payload
                )
            handle = holder["handle"]
            if handle is None:
                raise ProtocolError("worker must W_HELLO first")
            return await self._handle_worker_request(
                handle, kind, request_id, payload
            )

        def on_close() -> None:
            handle = holder["handle"]
            if handle is not None:
                task = asyncio.get_running_loop().create_task(
                    self._on_worker_lost(handle)
                )
                self._respawn_tasks.add(task)
                task.add_done_callback(self._respawn_tasks.discard)

        channel = FrameChannel(
            reader, writer, handle_frame, on_close=on_close
        )

    async def _handle_hello(
        self, holder, channel: FrameChannel, request_id: int, payload: bytes
    ) -> bytes:
        body = ch.parse_json_payload(payload)
        if body.get("token") != self._token:
            raise ProtocolError("bad worker token")
        partition_id = body.get("partition_id")
        if (
            not isinstance(partition_id, int)
            or not 0 <= partition_id < self._n_workers
        ):
            raise ProtocolError(f"bad partition id {partition_id!r}")
        handle = self._workers[partition_id]
        handle.channel = channel
        handle._hello_cursor = body.get("n_placed", 0)
        recovery = body.get("recovery") or {}
        writebacks = recovery.get("writebacks") or []
        if writebacks:
            if handle.recovering:
                # A respawned worker replayed its journal; its final
                # batch's foreign-parent mutations may never have
                # reached their owners.  Re-applying is idempotent
                # (absolute values), but only safe while no later
                # placement could have advanced those parents - i.e.
                # when the worker died holding the write lease.
                if handle.died_active:
                    await self._apply_updates_by_owner(writebacks)
            else:
                # Cold start: defer until every partition has said
                # hello and the true frontier is known.
                handle.startup_writebacks = writebacks
        if handle.pending_writebacks:
            buffered = handle.pending_writebacks
            handle.pending_writebacks = []
            try:
                response_kind, response_payload = await channel.request(
                    ch.W_APPLY, ch.json_payload({"updates": buffered})
                )
                response = decode_response(response_kind, response_payload)
            except ChannelClosed:
                handle.pending_writebacks = buffered
                response = {"ok": True}
            if not response.get("ok"):
                self._degraded = (
                    f"partition {partition_id} rejected buffered "
                    f"writebacks ({response.get('error', 'unknown')}); "
                    "restart from the last checkpoint"
                )
        handle.alive = True
        holder["handle"] = handle
        waiter = self._hello_waiters.pop(partition_id, None)
        if waiter is not None and not waiter.done():
            waiter.set_result(handle)
        return encode_response_for(request_id, {"ok": True})

    async def _handle_worker_request(
        self,
        handle: _WorkerHandle,
        kind: int,
        request_id: int,
        payload: bytes,
    ) -> bytes:
        if kind == ch.W_ACQUIRE:
            body = ch.parse_json_payload(payload)
            states: dict[str, Any] = {}
            by_owner: dict[int, list[int]] = {}
            for txid in body["txids"]:
                by_owner.setdefault(self._owner_of(txid), []).append(txid)
            for owner_id, txids in by_owner.items():
                owner = self._workers[owner_id]
                try:
                    response = await owner.request_json(
                        ch.W_READ, {"txids": txids}
                    )
                except ChannelClosed:
                    # Owner is down/recovering: the active batch fails
                    # with a retryable reply, no state was mutated.
                    return encode_response_for(
                        request_id,
                        {
                            "ok": False,
                            "code": "retry",
                            "error": (
                                f"partition {owner_id} is recovering; "
                                "retry later"
                            ),
                        },
                    )
                if not response.get("ok"):
                    return encode_response_for(request_id, response)
                states.update(response["states"])
            return encode_response_for(
                request_id, {"ok": True, "states": states}
            )
        if kind == ch.W_WRITEBACK:
            body = ch.parse_json_payload(payload)
            failure = await self._apply_updates_by_owner(body["updates"])
            if failure is not None:
                return encode_response_for(request_id, failure)
            return encode_response_for(request_id, {"ok": True})
        if kind == ch.W_RELEASE:
            body = ch.parse_json_payload(payload)
            hot = body["hot"]
            async with self._handoff_lock:
                self._cursor = max(self._cursor, hot["n_placed"])
                next_owner = self._owner_of(hot["n_placed"])
                try:
                    await self._workers[next_owner].request_json(
                        ch.W_GRANT, {"hot": hot}
                    )
                except ChannelClosed:
                    # Park the grant; the supervisor delivers it once
                    # the next owner respawns. The release itself
                    # succeeds - the stream stalls (retry replies)
                    # instead of forking.
                    self._workers[next_owner].pending_grant = hot
                self._granted = next_owner
            return encode_response_for(request_id, {"ok": True})
        raise ProtocolError(f"unexpected worker request kind 0x{kind:02x}")

    async def _apply_updates_by_owner(
        self, updates: "list[dict[str, Any]]"
    ) -> "dict[str, Any] | None":
        """Route parent-state mutations to their owning partitions.

        Updates addressed to a down partition are buffered on its
        handle and flushed when it rejoins (safe: the values are
        absolute, so re-application is idempotent). Returns a failure
        response if an owner *refused* its share - the partitions have
        forked and the service degrades - else ``None``.
        """
        by_owner: dict[int, list[dict]] = {}
        for update in updates:
            by_owner.setdefault(
                self._owner_of(update["txid"]), []
            ).append(update)
        for owner_id, owned in by_owner.items():
            owner = self._workers[owner_id]
            if not owner.alive:
                owner.pending_writebacks.extend(owned)
                continue
            try:
                response = await owner.request_json(
                    ch.W_APPLY, {"updates": owned}
                )
            except ChannelClosed:
                owner.pending_writebacks.extend(owned)
                continue
            if not response.get("ok"):
                # The batch already committed on the active
                # partition; an owner refusing its share of the
                # mutations means the partitions have forked.
                # Serving on would silently return wrong results.
                self._degraded = (
                    f"partition {owner_id} rejected a writeback "
                    f"({response.get('error', 'unknown error')}); "
                    "restart from the last checkpoint"
                )
                return response
        return None

    async def _on_worker_lost(self, handle: _WorkerHandle) -> None:
        handle.alive = False
        handle.channel = None
        if (
            self._stopping
            or self._degraded is not None
            or handle.recovering
        ):
            return
        # Snapshot *now* whether the worker held the write lease: the
        # supervisor may re-grant to another partition while the
        # respawn is in flight.
        handle.died_active = (
            handle.partition_id == self._granted
            and handle.pending_grant is None
        )
        handle.recovering = True
        try:
            await self._recover_worker(handle)
        finally:
            handle.recovering = False
            handle.died_active = False

    async def _recover_worker(self, handle: _WorkerHandle) -> None:
        path = handle.checkpoint_path
        has_checkpoint = path is not None and os.path.exists(path)
        has_journal = path is not None and os.path.exists(
            journal_path_for(path)
        )
        expected = self._expected_cursor(
            handle.partition_id,
            assume_idle=handle.pending_grant is not None,
        )
        if not has_checkpoint and not has_journal and expected != 0:
            self._degraded = (
                f"partition {handle.partition_id} died with no "
                "checkpoint or journal to respawn from"
            )
            return
        for attempt in range(1, self._max_respawns + 1):
            if attempt > 1:
                await asyncio.sleep(
                    min(
                        self._respawn_backoff * 2 ** (attempt - 2), 5.0
                    )
                )
            process = handle.process
            if process is not None and process.is_alive():
                process.kill()
                process.join(timeout=5)
            waiter = self._await_hello(handle.partition_id)
            self.metrics.respawns += 1
            self._spawn(handle)
            try:
                await asyncio.wait_for(waiter, self._start_timeout)
            except asyncio.TimeoutError:
                self._hello_waiters.pop(handle.partition_id, None)
                continue
            if await self._adopt_respawned(handle, expected):
                return
            if self._degraded is not None:
                return
        if self._degraded is None:
            self._degraded = (
                f"partition {handle.partition_id} failed to respawn "
                f"after {self._max_respawns} attempts; restart from "
                "the last checkpoint"
            )

    async def _adopt_respawned(
        self, handle: _WorkerHandle, expected: int
    ) -> bool:
        """Validate a respawned worker's cursor and restore its role.

        Returns False to retry the respawn (transient failure); sets
        ``self._degraded`` for unrecoverable divergence.
        """
        reported = handle._hello_cursor or 0
        if handle.pending_grant is not None:
            # Died between release and grant: must sit exactly at its
            # previous lease end; deliver the parked hot state.
            if reported != expected:
                self._stale_cursor(handle, reported, expected)
                return False
            hot = handle.pending_grant
            try:
                await handle.request_json(ch.W_GRANT, {"hot": hot})
            except ChannelClosed:
                return False
            handle.pending_grant = None
            return True
        if handle.died_active:
            # Journal replay may legitimately land anywhere between
            # the last acked batch and the end of the lease it held
            # (a batch could have committed to the journal + engine
            # without its response ever reaching the coordinator).
            lease_end = (
                expected // self._lease_length + 1
            ) * self._lease_length
            if not expected <= reported <= lease_end:
                self._stale_cursor(handle, reported, expected)
                return False
            self._cursor = max(self._cursor, reported)
            try:
                await handle.request_json(ch.W_GRANT, {})
            except ChannelClosed:
                return False
            return True
        if reported != expected:
            self._stale_cursor(handle, reported, expected)
            return False
        return True

    def _stale_cursor(
        self, handle: _WorkerHandle, reported: int, expected: int
    ) -> None:
        self._degraded = (
            f"partition {handle.partition_id} respawned at cursor "
            f"{reported} but the stream is at {expected}; its "
            "checkpoint is stale - restart the service from a "
            "consistent checkpoint set"
        )

    # -- liveness ----------------------------------------------------------

    async def _heartbeat_loop(self) -> None:
        while not self._stopping:
            await asyncio.sleep(self._heartbeat_interval)
            for handle in list(self._workers):
                if not handle.alive or handle.channel is None:
                    continue
                try:
                    await asyncio.wait_for(
                        handle.request_json(ch.W_PING),
                        self._heartbeat_timeout,
                    )
                except asyncio.TimeoutError:
                    # A hung worker is handled like a crashed one:
                    # killing it closes the channel, which fires the
                    # normal on-lost recovery path.
                    self.metrics.heartbeat_timeouts += 1
                    if handle.process is not None:
                        handle.process.kill()
                except ChannelClosed:
                    pass

    # -- checkpoint orchestration ------------------------------------------

    async def _checkpoint_all(self) -> dict[str, Any]:
        """Pause-the-world cross-partition snapshot + manifest."""
        if any(not handle.alive for handle in self._workers):
            return {
                "ok": False,
                "code": "retry",
                "error": (
                    "a worker is recovering; retry the checkpoint later"
                ),
            }
        async with self._handoff_lock:
            active = self._workers[self._granted]
            total = 0
            cursor = self._cursor
            try:
                response = await active.request_json(
                    ch.W_CHECKPOINT,
                    {"hold": True, "compress": self._checkpoint_compress},
                )
                if not response.get("ok"):
                    return response
                total += response["bytes"]
                cursor = response["n_placed"]
                for handle in self._workers:
                    if handle is active:
                        continue
                    response = await handle.request_json(
                        ch.W_CHECKPOINT,
                        {"compress": self._checkpoint_compress},
                    )
                    if not response.get("ok"):
                        return response
                    total += response["bytes"]
                self._cursor = max(self._cursor, cursor)
                self._write_manifest(cursor)
            finally:
                if active.alive:
                    try:
                        await active.request_json(ch.W_RESUME, {})
                    except ChannelClosed:
                        pass
            return {
                "ok": True,
                "path": str(self._checkpoint_path),
                "bytes": total,
                "n_placed": cursor,
                "partitions": self._n_workers,
            }

    def _write_manifest(self, cursor: int) -> None:
        manifest = {
            "format": MANIFEST_FORMAT,
            "n_partitions": self._n_workers,
            "lease_length": self._lease_length,
            "cursor": cursor,
            "spec": self._spec,
            "files": [
                os.path.basename(self._partition_path(index))
                for index in range(self._n_workers)
            ],
        }
        path = Path(self._manifest_path)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=2) + "\n")
        os.replace(tmp, path)

    def _load_manifest(self) -> None:
        path = self._manifest_path
        if path is None or not os.path.exists(path):
            return
        manifest = json.loads(Path(path).read_text())
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ConfigurationError(
                f"unsupported checkpoint manifest format "
                f"{manifest.get('format')!r}"
            )
        if manifest["n_partitions"] != self._n_workers:
            raise ConfigurationError(
                f"checkpoint set was taken with "
                f"{manifest['n_partitions']} workers, requested "
                f"{self._n_workers}; delete it to repartition"
            )
        if manifest["lease_length"] != self._lease_length:
            raise ConfigurationError(
                f"checkpoint set was taken with lease_length "
                f"{manifest['lease_length']}, requested "
                f"{self._lease_length}"
            )
        # The snapshots' configuration wins on restore (each worker is
        # rebuilt entirely from its partition file); flag whatever the
        # requested spec silently overrides - same principle as the
        # single-process serve restore warnings.
        stored_spec = manifest.get("spec", {})
        for key in sorted(set(stored_spec) | set(self._spec)):
            stored = stored_spec.get(key)
            wanted = self._spec.get(key)
            if stored != wanted:
                print(
                    f"warning: {key}={wanted!r} ignored; the "
                    f"checkpoint set was taken with {stored!r} "
                    "(delete the checkpoints to reconfigure)",
                    file=sys.stderr,
                    flush=True,
                )
        self._spec = dict(stored_spec) or self._spec
        self._cursor = manifest["cursor"]

    # -- client request handling -------------------------------------------

    async def _handle(self, message: Any) -> dict:
        if not isinstance(message, dict):
            raise ProtocolError("request must be a JSON object")
        op = message.get("op")
        if op == "place":
            return await self._handle_place(message)
        if op == "stats":
            return await self._merged_stats()
        if op == "checkpoint":
            if self._checkpoint_path is None:
                raise ProtocolError(
                    "no checkpoint path: start the server with one "
                    "(per-request paths are not supported with "
                    "--workers)"
                )
            return await self._checkpoint_all()
        if op == "ping":
            return {
                "ok": True,
                "protocol": PROTOCOL_VERSION,
                "n_placed": self._cursor,
                "workers": self._n_workers,
                "granted": self._granted,
                "degraded": self._degraded,
                "max_inflight": self._max_inflight,
                "recovering": [
                    handle.partition_id
                    for handle in self._workers
                    if handle.recovering
                ],
                # partition id -> OS pid, for ops tooling (and the CI
                # kill-a-worker smoke).
                "worker_pids": {
                    str(handle.partition_id): (
                        handle.process.pid if handle.process else None
                    )
                    for handle in self._workers
                },
            }
        if op == "shutdown":
            asyncio.get_running_loop().create_task(self.stop())
            return {"ok": True}
        raise ProtocolError(
            f"unknown op {op!r}; expected one of place, stats, "
            "checkpoint, ping, shutdown"
        )

    async def _place_frame(self, payload: bytes) -> dict:
        first, count = peek_place_header(payload)
        if count > self._max_batch_txs:
            raise ProtocolError(
                f"batch of {count} exceeds max_batch_txs="
                f"{self._max_batch_txs}"
            )
        last = first + count - 1
        if first // self._lease_length == last // self._lease_length:
            # Entirely inside one lease: forward the raw bytes.
            return await self._route_segments([(first, count, payload)])
        txs = decode_place_payload(payload)
        return await self._route_segments(self._split_segments(txs))

    async def _place_request(self, txs: list[Transaction]) -> dict:
        if len(txs) > self._max_batch_txs:
            raise ProtocolError(
                f"batch of {len(txs)} exceeds max_batch_txs="
                f"{self._max_batch_txs}"
            )
        return await self._route_segments(self._split_segments(txs))

    def _split_segments(
        self, txs: list[Transaction]
    ) -> list[tuple[int, int, bytes]]:
        segments = []
        start = 0
        lease_length = self._lease_length
        while start < len(txs):
            first = txs[start].txid
            end_txid = (first // lease_length + 1) * lease_length
            sub = txs[start : start + (end_txid - first)]
            segments.append(
                (
                    first,
                    len(sub),
                    encode_place_request(0, sub)[FRAME_HEADER_BYTES:],
                )
            )
            start += len(sub)
        return segments

    async def _route_segments(
        self, segments: list[tuple[int, int, bytes]]
    ) -> dict:
        if self._stopping:
            return {
                "ok": False,
                "code": "shutdown",
                "error": "server is shutting down",
            }
        if self._degraded is not None:
            return {
                "ok": False,
                "code": "engine",
                "error": f"service is degraded: {self._degraded}",
            }
        shards: list[int] = []
        for first, count, payload in segments:
            handle = self._workers[self._owner_of(first)]
            if not handle.alive or handle.channel is None:
                self.metrics.retry_replies += 1
                return {
                    "ok": False,
                    "code": "retry",
                    "error": (
                        f"partition {handle.partition_id} is "
                        "unavailable (worker recovering); retry later"
                    ),
                }
            if handle.inflight >= self._max_inflight:
                self.metrics.overload_replies += 1
                return {
                    "ok": False,
                    "code": "overload",
                    "error": (
                        f"partition {handle.partition_id} has "
                        f"{handle.inflight} requests in flight "
                        f"(limit {self._max_inflight}); retry later"
                    ),
                }
            handle.inflight += 1
            try:
                kind, response_payload = await handle.channel.request(
                    ch.W_PLACE, payload
                )
            except (ChannelClosed, AttributeError):
                if self._degraded is not None:
                    return {
                        "ok": False,
                        "code": "engine",
                        "error": f"service is degraded: {self._degraded}",
                    }
                self.metrics.retry_replies += 1
                return {
                    "ok": False,
                    "code": "retry",
                    "error": (
                        f"partition {handle.partition_id} is "
                        "unavailable (worker recovering); retry later"
                    ),
                }
            finally:
                handle.inflight -= 1
            response = decode_response(kind, response_payload)
            if not response.get("ok"):
                return response
            shards.extend(response["shards"])
            self._cursor = max(self._cursor, first + count)
        return {"ok": True, "shards": shards}

    # -- stats merge -------------------------------------------------------

    async def _collect_worker_stats(
        self,
    ) -> "tuple[list[dict[str, Any]], list[dict[str, Any]]]":
        """One W_STATS fan-out: (engine stats, obs bundles) per worker.

        A dead worker contributes a ``dead`` stats marker and no obs
        entry - the scrape simply goes quiet for that partition until
        it rejoins, which is itself a useful signal next to the
        coordinator's ``recovering`` gauge.
        """
        per_partition: list[dict[str, Any]] = []
        obs_entries: list[dict[str, Any]] = []
        for handle in self._workers:
            try:
                response = await handle.request_json(ch.W_STATS)
            except ChannelClosed:
                per_partition.append(
                    {"partition_id": handle.partition_id, "dead": True}
                )
                continue
            if response.get("ok"):
                per_partition.append(response["stats"])
                obs = dict(response.get("obs") or {})
                obs["partition_id"] = handle.partition_id
                obs["engine"] = response["stats"]
                obs_entries.append(obs)
        return per_partition, obs_entries

    def _merged_obs(
        self, obs_entries: "list[dict[str, Any]]"
    ) -> dict[str, Any]:
        """Service-level observability sidecar of the ``stats`` reply.

        Same shape as the monolith's (metrics/wal/rss_kb/drift) so
        clients need no mode switch, plus the raw per-partition
        bundles. The merged metrics fold the coordinator's own
        counters (retry/overload/respawn/heartbeat) in with the
        workers' - the histogram percentiles are exactly those of the
        union of all workers' batches.
        """
        metric_dicts = [
            entry.get("metrics")
            for entry in obs_entries
            if entry.get("metrics")
        ]
        metric_dicts.append(self.metrics.as_dict())
        wal_dicts = [
            entry.get("wal") for entry in obs_entries if entry.get("wal")
        ]
        merged_wal: "dict[str, int] | None" = None
        if wal_dicts:
            merged_wal = {
                key: sum(int(data.get(key, 0)) for data in wal_dicts)
                for key in (
                    "bytes_appended",
                    "records_appended",
                    "fsyncs",
                    "resets",
                )
            }
        drift_dicts = [
            entry.get("drift")
            for entry in obs_entries
            if entry.get("drift")
        ]
        per_partition = []
        for entry in obs_entries:
            slim = dict(entry)
            slim.pop("engine", None)
            per_partition.append(slim)
        return {
            "metrics": merge_metric_dicts(metric_dicts),
            "wal": merged_wal,
            "rss_kb": rss_kb(),
            "drift": (
                merge_drift_dicts(drift_dicts) if drift_dicts else None
            ),
            "partitions": per_partition,
        }

    async def _merged_stats(self) -> dict:
        per_partition, obs_entries = await self._collect_worker_stats()
        merged = merge_partition_stats(
            per_partition, self._cursor, self._granted
        )
        merged["degraded"] = self._degraded
        return {
            "ok": True,
            "stats": merged,
            "obs": self._merged_obs(obs_entries),
        }

    async def _render_metrics(self) -> str:
        """Scrape body for the sharded service: per-partition worker
        bundles plus coordinator-side counters and lease/health gauges."""
        _, obs_entries = await self._collect_worker_stats()
        partitions = [
            {
                "partition": str(entry.get("partition_id", index)),
                "engine": entry.get("engine"),
                "metrics": entry.get("metrics"),
                "wal": entry.get("wal"),
                "drift": entry.get("drift"),
                "rss_kb": entry.get("rss_kb"),
            }
            for index, entry in enumerate(obs_entries)
        ]
        families = service_families(
            {
                "spec": str(self._spec.get("method", "")),
                "mode": "sharded",
                "workers": self._n_workers,
            },
            partitions,
            coordinator={
                "metrics": self.metrics.as_dict(),
                "rss_kb": rss_kb(),
                "granted": self._granted,
                "cursor": self._cursor,
                "degraded": 0 if self._degraded is None else 1,
                "recovering": sum(
                    1 for handle in self._workers if handle.recovering
                ),
            },
        )
        return render_families(families)


def merge_partition_stats(
    per_partition: list[dict[str, Any]], cursor: int, granted: int
) -> dict[str, Any]:
    """Combine per-partition stats into one monolith-shaped view.

    Counters (live/released vectors, tracked unspent) are sums over the
    disjoint slices; stream-position fields (epoch, horizon) come from
    the partition holding the write lease, whose view is current.
    """
    alive = [
        stats for stats in per_partition if not stats.get("dead")
    ]
    active = next(
        (
            stats
            for stats in alive
            if stats.get("partition_id") == granted
        ),
        alive[0] if alive else {},
    )

    def _sum(key: str):
        values = [
            stats.get(key) for stats in alive if stats.get(key) is not None
        ]
        return sum(values) if values else None

    support = None
    supports = [
        stats["support"] for stats in alive if stats.get("support")
    ]
    if supports:
        live = sum(entry["live_vectors"] for entry in supports)
        support = {
            "live_vectors": live,
            "mean_nnz": (
                sum(
                    entry["mean_nnz"] * entry["live_vectors"]
                    for entry in supports
                )
                / live
                if live
                else 0.0
            ),
            "max_nnz": max(entry["max_nnz"] for entry in supports),
            "dropped_mass": active.get("support", {}).get(
                "dropped_mass", 0.0
            ),
            "truncated_vectors": active.get("support", {}).get(
                "truncated_vectors", 0
            ),
            "support_cap": active.get("support", {}).get("support_cap"),
        }
    return {
        "strategy": active.get("strategy"),
        "n_shards": active.get("n_shards"),
        "n_placed": cursor,
        "live_vectors": _sum("live_vectors"),
        "released_vectors": _sum("released_vectors"),
        "peak_live_vectors": _sum("peak_live_vectors"),
        "horizon_start": active.get("horizon_start", 0),
        "epoch": active.get("epoch", 0),
        "tracked_unspent": _sum("tracked_unspent"),
        "epoch_length": active.get("epoch_length"),
        "horizon_epochs": active.get("horizon_epochs"),
        "support": support,
        "partitions": per_partition,
    }


async def start_sharded_server(
    spec: dict[str, Any],
    n_workers: int,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    **kwargs: Any,
) -> ShardedPlacementServer:
    """Construct and start a :class:`ShardedPlacementServer`."""
    server = ShardedPlacementServer(
        spec, n_workers, host, port, **kwargs
    )
    await server.start()
    return server
