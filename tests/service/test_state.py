"""Snapshot format: round-trips, versioning, corruption handling."""

from __future__ import annotations

import struct

import pytest

from repro.core.optchain import OptChainPlacer
from repro.core.placement import make_placer
from repro.errors import PlacementError, SnapshotError
from repro.service.engine import PlacementEngine
from repro.service.state import (
    FORMAT_VERSION,
    MAGIC,
    SUPPORTED_VERSIONS,
    load_engine_snapshot,
    save_engine_snapshot,
)

STRATEGIES = [
    ("optchain", {}),
    ("optchain-topk", {"support_cap": 3}),
    ("t2s", {"expected_total": 2_000, "tie_break": "random"}),
    ("greedy", {"expected_total": 2_000, "tie_break": "lightest"}),
    ("omniledger", {}),
]


@pytest.mark.parametrize("name,kwargs", STRATEGIES)
def test_restore_then_continue_is_bit_identical(
    tmp_path, small_stream, name, kwargs
):
    split = len(small_stream) // 2
    reference = make_placer(name, 8, **kwargs)
    expected = reference.place_stream(small_stream)

    engine = PlacementEngine(
        make_placer(name, 8, **kwargs), epoch_length=300
    )
    first = engine.place_batch(small_stream[:split])
    path = tmp_path / "engine.snap"
    size = save_engine_snapshot(engine, path)
    assert size == path.stat().st_size > 0

    restored = load_engine_snapshot(path)
    assert restored.n_placed == split
    second = restored.place_batch(small_stream[split:])
    assert first + second == expected


def test_snapshot_preserves_truncation_bookkeeping(
    tmp_path, small_stream
):
    engine = PlacementEngine(
        make_placer("optchain", 8),
        epoch_length=150,
        horizon_epochs=3,
    )
    engine.place_batch(small_stream[:1_200])
    path = tmp_path / "engine.snap"
    save_engine_snapshot(engine, path)
    restored = load_engine_snapshot(path)

    before = engine.stats().as_dict()
    after = restored.stats().as_dict()
    assert after == before

    # Continuing must also truncate identically.
    engine.place_batch(small_stream[1_200:])
    restored.place_batch(small_stream[1_200:])
    assert restored.stats().as_dict() == engine.stats().as_dict()
    assert (
        restored.placer.scorer._p_prime == engine.placer.scorer._p_prime
    )


@pytest.mark.parametrize("name,kwargs", STRATEGIES)
def test_compressed_restore_then_continue_is_bit_identical(
    tmp_path, small_stream, name, kwargs
):
    split = len(small_stream) // 2
    reference = make_placer(name, 8, **kwargs)
    expected = reference.place_stream(small_stream)

    engine = PlacementEngine(
        make_placer(name, 8, **kwargs), epoch_length=300
    )
    first = engine.place_batch(small_stream[:split])
    plain = tmp_path / "plain.snap"
    packed = tmp_path / "packed.snap"
    plain_size = save_engine_snapshot(engine, plain)
    packed_size = save_engine_snapshot(engine, packed, compress=True)
    assert packed_size == packed.stat().st_size
    assert packed_size < plain_size

    restored = load_engine_snapshot(packed)
    second = restored.place_batch(small_stream[split:])
    assert first + second == expected


def test_compressed_and_plain_snapshots_restore_identically(
    tmp_path, small_stream
):
    engine = PlacementEngine(
        make_placer("optchain-topk", 8, support_cap=2), epoch_length=300
    )
    engine.place_batch(small_stream)
    plain = tmp_path / "plain.snap"
    packed = tmp_path / "packed.snap"
    save_engine_snapshot(engine, plain)
    save_engine_snapshot(engine, packed, compress=True)
    a = load_engine_snapshot(plain)
    b = load_engine_snapshot(packed)
    assert a.placer.export_state() == b.placer.export_state()
    assert a.stats().as_dict() == b.stats().as_dict()


def test_topk_snapshot_round_trips_truncation_accounting(
    tmp_path, small_stream
):
    engine = PlacementEngine(
        make_placer("optchain-topk", 8, support_cap=2), epoch_length=300
    )
    engine.place_batch(small_stream)
    scorer = engine.placer.scorer
    assert scorer.dropped_mass_total > 0.0
    path = tmp_path / "topk.snap"
    save_engine_snapshot(engine, path)
    restored = load_engine_snapshot(path)
    assert restored.placer.support_cap == 2
    restored_scorer = restored.placer.scorer
    assert restored_scorer.dropped_mass_total == (
        scorer.dropped_mass_total
    )
    assert restored_scorer.truncated_vector_count == (
        scorer.truncated_vector_count
    )


def test_version_1_snapshot_still_loads(tmp_path, small_stream):
    """Old-format compatibility: an uncompressed exact-scorer snapshot
    is byte-identical to what a version-1 writer produced except for
    the version field itself, so patching the field reconstructs a
    genuine v1 file."""
    engine = PlacementEngine(make_placer("optchain", 8))
    first = engine.place_batch(small_stream[:1_000])
    path = tmp_path / "v1.snap"
    save_engine_snapshot(engine, path)
    raw = bytearray(path.read_bytes())
    raw[6:8] = struct.pack("<H", 1)
    path.write_bytes(bytes(raw))

    restored = load_engine_snapshot(path)
    second = restored.place_batch(small_stream[1_000:])
    reference = make_placer("optchain", 8)
    assert first + second == reference.place_stream(small_stream)


def test_quiescence_required(tmp_path, small_stream):
    placer = make_placer("optchain", 4)
    engine = PlacementEngine(placer)
    engine.place_batch(small_stream[:10])
    placer.scorer.add_transaction_raw(10, [3])
    with pytest.raises(PlacementError, match="pending"):
        save_engine_snapshot(engine, tmp_path / "x.snap")


def test_live_observer_not_snapshotable(tmp_path, small_stream):
    from repro.core.l2s import ShardLatencyModel

    placer = OptChainPlacer(4)
    placer.use_latency_provider(
        lambda: [ShardLatencyModel(1.0, 1.0)] * 4
    )
    engine = PlacementEngine(placer)
    with pytest.raises(PlacementError, match="live observers"):
        save_engine_snapshot(engine, tmp_path / "x.snap")


class TestCorruption:
    def _snapshot(self, tmp_path, small_stream):
        engine = PlacementEngine(make_placer("optchain", 4))
        engine.place_batch(small_stream[:200])
        path = tmp_path / "good.snap"
        save_engine_snapshot(engine, path)
        return path

    def test_not_a_snapshot(self, tmp_path):
        path = tmp_path / "garbage"
        path.write_bytes(b"definitely not a snapshot file")
        with pytest.raises(SnapshotError, match="not an OptChain"):
            load_engine_snapshot(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_engine_snapshot(tmp_path / "nope.snap")

    def test_unsupported_version(self, tmp_path, small_stream):
        path = self._snapshot(tmp_path, small_stream)
        raw = bytearray(path.read_bytes())
        # Version 3 is the delta format; the first truly unknown
        # full-snapshot version is one past it.
        raw[6:8] = struct.pack("<H", max(SUPPORTED_VERSIONS) + 1)
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="format"):
            load_engine_snapshot(path)

    def test_delta_stamped_full_refused(self, tmp_path, small_stream):
        """A v3 (delta) version stamp on a full snapshot is refused
        with a pointer to the base-loading behavior."""
        path = self._snapshot(tmp_path, small_stream)
        raw = bytearray(path.read_bytes())
        raw[6:8] = struct.pack("<H", 3)
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="delta"):
            load_engine_snapshot(path)

    def test_truncated_payload(self, tmp_path, small_stream):
        path = self._snapshot(tmp_path, small_stream)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 64])
        with pytest.raises(SnapshotError, match="truncated"):
            load_engine_snapshot(path)

    def test_corrupt_header(self, tmp_path, small_stream):
        path = self._snapshot(tmp_path, small_stream)
        raw = bytearray(path.read_bytes())
        (header_len,) = struct.unpack_from("<I", raw, 8)
        for offset in range(12, 12 + header_len):
            raw[offset] = 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="header"):
            load_engine_snapshot(path)

    def test_magic_constant_stability(self):
        # The on-disk contract: changing these breaks every existing
        # checkpoint, so it must be a deliberate, versioned decision.
        # Version 2 added optional payload compression and the
        # bounded-support scorer scalars; version 3 is the *delta*
        # container (full snapshots still write v2); version-1/2 files
        # must stay readable.
        assert MAGIC == b"OCSNAP"
        assert FORMAT_VERSION == 2
        assert SUPPORTED_VERSIONS == (1, 2, 3)

    def test_no_temp_file_left_behind(self, tmp_path, small_stream):
        self._snapshot(tmp_path, small_stream)
        leftovers = [
            p.name for p in tmp_path.iterdir() if ".tmp" in p.name
        ]
        assert leftovers == []
