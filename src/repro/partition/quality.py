"""Partition quality metrics.

Two families of metrics, deliberately separated because the paper's
central argument distinguishes them:

- **Graph metrics** (edge cut, balance): what classic partitioners like
  METIS optimize.
- **Sharding metrics** (cross-shard transaction count/fraction): what
  actually matters for a sharded blockchain. A transaction ``u`` is
  cross-shard iff some *input shard* differs from its own shard
  (``Sin(u) != {S(u)}`` in the paper's notation, §III-A). Coinbase
  transactions have no inputs and can never be cross-shard.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import PartitionError
from repro.partition.graph import StaticGraph
from repro.utxo.transaction import Transaction


def validate_partition(assignment: Sequence[int], n_shards: int) -> None:
    """Raise unless every entry is a shard id in ``[0, n_shards)``."""
    if n_shards <= 0:
        raise PartitionError(f"n_shards must be > 0, got {n_shards}")
    for node, shard in enumerate(assignment):
        if not 0 <= shard < n_shards:
            raise PartitionError(
                f"node {node} assigned to shard {shard}, valid range is "
                f"[0, {n_shards})"
            )


def shard_sizes(assignment: Sequence[int], n_shards: int) -> list[int]:
    """Node count per shard."""
    validate_partition(assignment, n_shards)
    sizes = [0] * n_shards
    for shard in assignment:
        sizes[shard] += 1
    return sizes


def balance_ratio(assignment: Sequence[int], n_shards: int) -> float:
    """Max shard size over ideal size (1.0 = perfectly balanced).

    This is the classic imbalance metric; METIS-style partitioners
    constrain it to ``1 + epsilon``.
    """
    sizes = shard_sizes(assignment, n_shards)
    total = sum(sizes)
    if total == 0:
        return 1.0
    ideal = total / n_shards
    return max(sizes) / ideal


def edge_cut(graph: StaticGraph, assignment: Sequence[int]) -> int:
    """Total weight of edges whose endpoints are in different parts."""
    if len(assignment) != graph.n_nodes:
        raise PartitionError(
            f"assignment covers {len(assignment)} nodes, graph has "
            f"{graph.n_nodes}"
        )
    cut = 0
    for u, v, weight in graph.edges():
        if assignment[u] != assignment[v]:
            cut += weight
    return cut


def edge_cut_fraction(graph: StaticGraph, assignment: Sequence[int]) -> float:
    """Cut weight as a fraction of total edge weight."""
    total = sum(weight for _, _, weight in graph.edges())
    if total == 0:
        return 0.0
    return edge_cut(graph, assignment) / total


def is_cross_shard(tx: Transaction, assignment: Sequence[int]) -> bool:
    """True when some input shard differs from the transaction's shard.

    ``assignment`` must cover the transaction and all its inputs.
    """
    own = assignment[tx.txid]
    return any(assignment[parent] != own for parent in tx.input_txids)


def cross_shard_count(
    txs: Sequence[Transaction], assignment: Sequence[int]
) -> int:
    """Number of cross-shard transactions in the stream."""
    if txs and len(assignment) < len(txs):
        raise PartitionError(
            f"assignment covers {len(assignment)} transactions, stream has "
            f"{len(txs)}"
        )
    return sum(1 for tx in txs if is_cross_shard(tx, assignment))


def cross_shard_fraction(
    txs: Sequence[Transaction], assignment: Sequence[int]
) -> float:
    """Fraction of the stream that is cross-shard (Tables I and II)."""
    if not txs:
        return 0.0
    return cross_shard_count(txs, assignment) / len(txs)


def input_shards(tx: Transaction, assignment: Sequence[int]) -> set[int]:
    """``Sin(u)``: the distinct shards holding the transaction's inputs."""
    return {assignment[parent] for parent in tx.input_txids}


def involved_shards(tx: Transaction, assignment: Sequence[int]) -> set[int]:
    """All shards that must participate in committing the transaction."""
    shards = input_shards(tx, assignment)
    shards.add(assignment[tx.txid])
    return shards
