"""Unit tests for the incremental T2S scorer (§IV-B)."""

from __future__ import annotations

import pytest

from repro.core.t2s import T2SScorer, t2s_reference_dense
from repro.errors import ConfigurationError, PlacementError


class TestValidation:
    def test_bad_shards(self):
        with pytest.raises(ConfigurationError):
            T2SScorer(0)

    def test_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            T2SScorer(4, alpha=0.0)
        with pytest.raises(ConfigurationError):
            T2SScorer(4, alpha=1.5)

    def test_bad_mode(self):
        with pytest.raises(ConfigurationError):
            T2SScorer(4, outdeg_mode="bogus")

    def test_out_of_order_rejected(self):
        scorer = T2SScorer(4)
        with pytest.raises(PlacementError):
            scorer.add_transaction(3, [])

    def test_place_without_add_rejected(self):
        scorer = T2SScorer(4)
        with pytest.raises(PlacementError):
            scorer.place(0, 1)

    def test_double_add_without_place_rejected(self):
        scorer = T2SScorer(4)
        scorer.add_transaction(0, [])
        with pytest.raises(PlacementError):
            scorer.add_transaction(1, [])

    def test_bad_shard_on_place_rejected(self):
        scorer = T2SScorer(4)
        scorer.add_transaction(0, [])
        with pytest.raises(PlacementError):
            scorer.place(0, 9)

    def test_future_input_rejected(self):
        scorer = T2SScorer(4)
        scorer.add_transaction(0, [])
        scorer.place(0, 0)
        with pytest.raises(PlacementError):
            scorer.add_transaction(1, [5])


class TestRecurrence:
    def test_coinbase_scores_zero(self):
        scorer = T2SScorer(4, alpha=0.5)
        assert scorer.add_transaction(0, []) == {}

    def test_single_parent_chain(self):
        """p'(child) = (1-a) * p'(parent) / 1 for a sole spender."""
        scorer = T2SScorer(2, alpha=0.5)
        scorer.add_transaction(0, [])
        scorer.place(0, 1)  # p'(0) = {1: 0.5}
        scores = scorer.add_transaction(1, [0])
        # p'(1) = 0.5 * {1: 0.5} = {1: 0.25}; normalized by |S_1| = 1.
        assert scores == pytest.approx({1: 0.25})
        scorer.place(1, 1)
        assert scorer.p_prime_of(1) == pytest.approx({1: 0.75})

    def test_two_spenders_split_mass(self):
        """|Nout(v)| divides the parent's contribution per spender."""
        scorer = T2SScorer(2, alpha=0.5)
        scorer.add_transaction(0, [])
        scorer.place(0, 0)
        scorer.add_transaction(1, [0])  # first spender: divisor 1
        scorer.place(1, 0)
        scores = scorer.add_transaction(2, [0])  # second spender: divisor 2
        # p'(2) = 0.5 * p'(0)/2 = 0.5 * {0: 0.5}/2 = {0: 0.125};
        # normalized by |S_0| = 2.
        assert scores == pytest.approx({0: 0.0625})
        scorer.place(2, 0)

    def test_duplicate_inputs_collapse(self):
        scorer = T2SScorer(2, alpha=0.5)
        scorer.add_transaction(0, [])
        scorer.place(0, 0)
        scores = scorer.add_transaction(1, [0, 0, 0])
        scorer.place(1, 0)
        # Same as a single edge: 0.5 * 0.5 / 1, normalized by 1.
        assert scores == pytest.approx({0: 0.25})

    def test_normalization_uses_shard_sizes(self):
        scorer = T2SScorer(2, alpha=1.0)
        scorer.add_transaction(0, [])
        scorer.place(0, 0)
        scorer.add_transaction(1, [])
        scorer.place(1, 0)
        # alpha=1: children inherit nothing, but normalization still
        # reflects |S_0|=2 for any raw mass.
        scorer.add_transaction(2, [0])
        scorer.place(2, 0)
        assert scorer.shard_sizes == [3, 0]

    def test_alpha_one_pure_placement(self):
        scorer = T2SScorer(2, alpha=1.0)
        scorer.add_transaction(0, [])
        scorer.place(0, 1)
        scores = scorer.add_transaction(1, [0])
        # (1 - alpha) = 0: no inherited mass at all.
        assert scores == {}
        scorer.place(1, 0)

    def test_outputs_mode_uses_output_count(self):
        scorer = T2SScorer(2, alpha=0.5, outdeg_mode="outputs")
        scorer.add_transaction(0, [], n_outputs=4)
        scorer.place(0, 0)
        scores = scorer.add_transaction(1, [0])
        # Divisor is max(outputs, spenders) = 4, not spenders-so-far = 1.
        assert scores == pytest.approx({0: 0.5 * 0.5 / 4})
        scorer.place(1, 0)


class TestAgainstDenseReference:
    def _replay(self, stream, n_shards, outdeg_mode="spenders"):
        scorer = T2SScorer(
            n_shards, alpha=0.5, outdeg_mode=outdeg_mode, prune_epsilon=0.0
        )
        placements = []
        arrivals = []
        for tx in stream:
            arrivals.append((tx.txid, tx.input_txids, len(tx.outputs)))
            sparse = scorer.add_transaction(
                tx.txid, tx.input_txids, len(tx.outputs)
            )
            shard = max(sparse, key=sparse.get) if sparse else (
                tx.txid % n_shards
            )
            scorer.place(tx.txid, shard)
            placements.append(shard)
        return scorer, arrivals, placements

    @pytest.mark.parametrize("outdeg_mode", ["spenders", "outputs"])
    def test_sparse_equals_dense(self, small_stream, outdeg_mode):
        """The sparse incremental engine reproduces the dense replay
        exactly when pruning is off."""
        n_shards = 4
        scorer, arrivals, placements = self._replay(
            small_stream[:600], n_shards, outdeg_mode
        )
        dense = t2s_reference_dense(
            arrivals, placements, n_shards, alpha=0.5, outdeg_mode=outdeg_mode
        )
        for txid in range(len(arrivals)):
            sparse = scorer.p_prime_of(txid)
            for shard in range(n_shards):
                assert sparse.get(shard, 0.0) == pytest.approx(
                    dense[txid][shard], abs=1e-12
                )

    def test_pruning_changes_little(self, small_stream):
        n_shards = 4
        exact, _, placements_a = self._replay(small_stream[:600], n_shards)
        pruned = T2SScorer(n_shards, alpha=0.5, prune_epsilon=1e-9)
        placements_b = []
        for tx in small_stream[:600]:
            sparse = pruned.add_transaction(
                tx.txid, tx.input_txids, len(tx.outputs)
            )
            shard = max(sparse, key=sparse.get) if sparse else (
                tx.txid % n_shards
            )
            pruned.place(tx.txid, shard)
            placements_b.append(shard)
        agreement = sum(
            1 for a, b in zip(placements_a, placements_b) if a == b
        )
        assert agreement / len(placements_a) > 0.999
