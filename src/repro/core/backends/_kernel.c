/* Fused OptChain placement kernel - the compiled twin of
 * OptChainPlacer.place_batch (src/repro/core/optchain.py).
 *
 * Bit-identity contract: every floating-point operation below is a
 * literal transcription of the pure-python fused loop, in the same
 * order, including the "useless" ones (the double reciprocal in the
 * expected-total formula, `total * 1.0` for the own-input latency
 * term). The load proxy's lazy heaps are replicated with CPython's
 * exact heapq algorithms because their layout is *state*: a query that
 * demotes a sub-resolution shard rewrites its scaled load to exactly
 * 0.0, and a later record() on that shard then computes
 * `0.0 + 1/scale` instead of `tiny + 1/scale` - a bitwise difference
 * that decides exact fitness ties. A side-effect-free argmax over the
 * loads would therefore diverge from the python path.
 *
 * The kernel only ever runs for the configuration the python fused
 * path accepts (offline load proxy, shard_load mode, spenders
 * divisor, prune_epsilon > 0, fused-compatible scorer); everything
 * else falls back to the per-transaction python loop in
 * numpy_backend.py.
 *
 * Dense-row representation: p'(v) vectors live as rows of an
 * (n_rows x n_shards) float64 matrix plus a live mask. Stored masses
 * are always > prune_epsilon > 0, so `row[shard] == 0.0` <=> "shard
 * absent from the sparse dict" and `live && isfinite(min_mass)` <=>
 * "vector is a non-empty dict" (placed vectors always hold their
 * alpha entry; released slots have live == 0).
 *
 * Error/capacity protocol: per-transaction commits are atomic. On an
 * invalid input the kernel stops *before* mutating anything for the
 * offending transaction and reports (txid, parent); on a full scratch
 * buffer it reports how far it got so the caller can grow buffers and
 * re-enter with the remaining suffix.
 */

#include <math.h>
#include <stddef.h>
#include <stdint.h>

#define KERN_OK 0
#define KERN_INVALID_INPUT 1
#define KERN_CAPACITY 2
#define KERN_INTERNAL 3

typedef struct {
    /* -- configuration (read-only) ----------------------------------- */
    int64_t n_shards;
    double alpha;
    double one_minus_alpha; /* scorer._scale */
    double epsilon;         /* scorer.prune_epsilon */
    double weight;          /* fitness.latency_weight */
    int64_t support_cap;    /* -1 = unbounded (exact scorer) */
    int32_t has_scale;      /* one_minus_alpha > 0.0 */
    int32_t has_eps;        /* epsilon > 0.0 */
    /* proxy configuration */
    double decay;
    double base_verify;
    double base_total;
    double comm_expected;
    double block;        /* float(block_capacity) */
    int64_t renorm_span;
    int64_t compact_limit;

    /* -- proxy state (in/out) ----------------------------------------- */
    double *scaled;      /* n_shards */
    double *heap_vals;   /* heap_cap */
    int64_t *heap_idx;   /* heap_cap */
    int64_t heap_len;
    int64_t heap_cap;
    int64_t *zero_heap;  /* zero_cap */
    int64_t zero_len;
    int64_t zero_cap;
    int64_t step;
    int64_t offset;
    double pscale;       /* proxy._scale */

    /* -- strategy state (in/out) -------------------------------------- */
    int64_t *strat_sizes;    /* n_shards, PlacementStrategy._shard_sizes */
    int64_t min_size_val;
    int64_t min_size_count;
    int64_t max_size_val;
    /* scorer per-shard sizes (in/out) - a separate array from the
     * strategy's even though both count the same placements, because
     * python keeps them as two lists that snapshots restore
     * independently. */
    int64_t *scorer_sizes;   /* n_shards, T2SScorer._shard_sizes */

    /* -- scorer per-txid state (in/out, persistent numpy buffers) ------ */
    double *pmat;            /* rows_cap * n_shards, row-major */
    uint8_t *live;           /* rows_cap */
    double *min_mass;        /* rows_cap */
    int64_t *spender_count;  /* rows_cap */
    int64_t *assignment;     /* rows_cap */
    int64_t n_placed;
    int64_t rows_cap;
    /* scorer truncation scalars (in/out; untouched when cap < 0) */
    double dropped_mass;
    int64_t truncated_vectors;

    /* -- batch input (read-only) --------------------------------------- */
    int64_t n_tx;
    const int64_t *parents;      /* deduped, first-appearance order */
    const int64_t *par_off;      /* n_tx + 1 */
    const int32_t *n_outpoints;  /* raw (pre-dedup) outpoint count */

    /* -- scratch (caller-allocated, n_shards-sized unless noted) ------- */
    double *raw;             /* dense p'(u) accumulator, zeroed */
    int64_t *touched;        /* shards present in raw */
    int64_t *shard_mark;     /* input-shard stamps, init -1 */
    int64_t *excl_mark;      /* exclusion stamps, init -1 */
    double *sort_mass;       /* truncation scratch */
    int64_t *sort_shard;     /* truncation scratch */
    int64_t *pb_ids;         /* zero-heap push-back, zero_cap-sized */
    double *pb_vals;         /* heap push-back, heap_cap-sized */
    int64_t *pb_idx;         /* heap push-back, heap_cap-sized */

    /* -- results ------------------------------------------------------- */
    int64_t n_done;          /* transactions fully committed this call */
    int64_t error_txid;
    int64_t error_parent;

    /* -- raw-parents mode (wire / engine shared marshal) ---------------- */
    int32_t raw_parents;     /* parents carry raw outpoint txids */
    int32_t _pad0;
    int64_t *dedup;          /* scratch: one tx's deduped parents */
    int64_t dedup_cap;
} KState;

/* ---------------------------------------------------------------------
 * CPython heapq, transcribed. Entries of the value heap are (value,
 * shard) tuples compared lexicographically; shards are distinct ints,
 * values doubles, so the comparison never falls through to error.
 * ------------------------------------------------------------------- */

static inline int vless(double av, int64_t ai, double bv, int64_t bi) {
    if (av < bv) return 1;
    if (av > bv) return 0;
    return ai < bi;
}

/* _siftdown(heap, startpos, pos): newitem walks up toward startpos. */
static void vheap_siftdown(KState *s, int64_t startpos, int64_t pos) {
    double nv = s->heap_vals[pos];
    int64_t ni = s->heap_idx[pos];
    while (pos > startpos) {
        int64_t parentpos = (pos - 1) >> 1;
        double pv = s->heap_vals[parentpos];
        int64_t pi = s->heap_idx[parentpos];
        if (vless(nv, ni, pv, pi)) {
            s->heap_vals[pos] = pv;
            s->heap_idx[pos] = pi;
            pos = parentpos;
            continue;
        }
        break;
    }
    s->heap_vals[pos] = nv;
    s->heap_idx[pos] = ni;
}

/* _siftup(heap, pos): bubble the smaller child up, then sift down. */
static void vheap_siftup(KState *s, int64_t pos) {
    int64_t endpos = s->heap_len;
    int64_t startpos = pos;
    double nv = s->heap_vals[pos];
    int64_t ni = s->heap_idx[pos];
    int64_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        int64_t rightpos = childpos + 1;
        if (rightpos < endpos &&
            !vless(s->heap_vals[childpos], s->heap_idx[childpos],
                   s->heap_vals[rightpos], s->heap_idx[rightpos])) {
            childpos = rightpos;
        }
        s->heap_vals[pos] = s->heap_vals[childpos];
        s->heap_idx[pos] = s->heap_idx[childpos];
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    s->heap_vals[pos] = nv;
    s->heap_idx[pos] = ni;
    vheap_siftdown(s, startpos, pos);
}

/* heappush; caller must have checked capacity. */
static void vheap_push(KState *s, double value, int64_t index) {
    int64_t n = s->heap_len++;
    s->heap_vals[n] = value;
    s->heap_idx[n] = index;
    vheap_siftdown(s, 0, n);
}

/* heappop; caller must know the heap is non-empty. */
static void vheap_pop(KState *s) {
    int64_t n = --s->heap_len;
    double lv = s->heap_vals[n];
    int64_t li = s->heap_idx[n];
    if (n > 0) {
        s->heap_vals[0] = lv;
        s->heap_idx[0] = li;
        vheap_siftup(s, 0);
    }
}

/* heapreplace(heap, item). */
static void vheap_replace(KState *s, double value, int64_t index) {
    s->heap_vals[0] = value;
    s->heap_idx[0] = index;
    vheap_siftup(s, 0);
}

static void vheap_heapify(KState *s) {
    for (int64_t i = s->heap_len / 2 - 1; i >= 0; i--) {
        vheap_siftup(s, i);
    }
}

/* Integer heap (the exact-zero cohort), same algorithms. */

static void iheap_siftdown(KState *s, int64_t startpos, int64_t pos) {
    int64_t ni = s->zero_heap[pos];
    while (pos > startpos) {
        int64_t parentpos = (pos - 1) >> 1;
        int64_t pi = s->zero_heap[parentpos];
        if (ni < pi) {
            s->zero_heap[pos] = pi;
            pos = parentpos;
            continue;
        }
        break;
    }
    s->zero_heap[pos] = ni;
}

static void iheap_siftup(KState *s, int64_t pos) {
    int64_t endpos = s->zero_len;
    int64_t startpos = pos;
    int64_t ni = s->zero_heap[pos];
    int64_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        int64_t rightpos = childpos + 1;
        if (rightpos < endpos &&
            !(s->zero_heap[childpos] < s->zero_heap[rightpos])) {
            childpos = rightpos;
        }
        s->zero_heap[pos] = s->zero_heap[childpos];
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    s->zero_heap[pos] = ni;
    iheap_siftdown(s, startpos, pos);
}

static void iheap_push(KState *s, int64_t index) {
    int64_t n = s->zero_len++;
    s->zero_heap[n] = index;
    iheap_siftdown(s, 0, n);
}

static int64_t iheap_pop(KState *s) {
    int64_t n = --s->zero_len;
    int64_t last = s->zero_heap[n];
    if (n > 0) {
        int64_t ret = s->zero_heap[0];
        s->zero_heap[0] = last;
        iheap_siftup(s, 0);
        return ret;
    }
    return last;
}

static void iheap_heapify(KState *s) {
    for (int64_t i = s->zero_len / 2 - 1; i >= 0; i--) {
        iheap_siftup(s, i);
    }
}

/* ---------------------------------------------------------------------
 * Load proxy internals (LoadProxyLatencyProvider).
 * ------------------------------------------------------------------- */

static inline double total_of_load(const KState *s, double load) {
    double verify = s->base_verify * (1.0 + load / s->block);
    return s->comm_expected + 1.0 / (1.0 / verify);
}

static void proxy_rebuild_heaps(KState *s) {
    int64_t k = s->n_shards;
    int64_t n = 0;
    for (int64_t i = 0; i < k; i++) {
        if (s->scaled[i] != 0.0) {
            s->heap_vals[n] = s->scaled[i];
            s->heap_idx[n] = i;
            n++;
        }
    }
    s->heap_len = n;
    vheap_heapify(s);
    n = 0;
    for (int64_t i = 0; i < k; i++) {
        if (s->scaled[i] == 0.0) {
            s->zero_heap[n++] = i;
        }
    }
    s->zero_len = n;
    iheap_heapify(s);
}

static void proxy_renormalize(KState *s) {
    double scale = s->pscale;
    int64_t k = s->n_shards;
    for (int64_t i = 0; i < k; i++) {
        double value = s->scaled[i];
        if (value != 0.0) {
            s->scaled[i] = value * scale;
        }
    }
    s->offset = s->step;
    s->pscale = 1.0;
    proxy_rebuild_heaps(s);
}

/* lightest_excluding via the direct complement scan (the
 * `2 * len(exclude) >= n_shards` branch): side-effect free, one
 * uniform formula, ties keep the lower index by strict `<`. */
static void lightest_direct(const KState *s, int64_t stamp,
                            int64_t *best_id, double *best_total) {
    int64_t k = s->n_shards;
    int64_t bid = -1;
    double btot = INFINITY;
    for (int64_t index = 0; index < k; index++) {
        if (s->excl_mark[index] == stamp) continue;
        double verify =
            s->base_verify * (1.0 + s->scaled[index] * s->pscale / s->block);
        double total = s->comm_expected + 1.0 / (1.0 / verify);
        if (total < btot) {
            btot = total;
            bid = index;
        }
    }
    *best_id = bid;
    *best_total = btot;
}

/* lightest_excluding(exclude): heap path with demotion side effects.
 * Returns KERN_CAPACITY if a zero-heap push would overflow. */
static int lightest_excluding(KState *s, int64_t stamp, int64_t n_excl,
                              int64_t *out_id, double *out_total) {
    if (2 * n_excl >= s->n_shards) {
        lightest_direct(s, stamp, out_id, out_total);
        return KERN_OK;
    }
    int64_t best_id = -1;
    double best_total = INFINITY;
    int64_t pbn = 0;
    while (s->zero_len) {
        int64_t index = s->zero_heap[0];
        if (s->scaled[index] != 0.0) {
            iheap_pop(s);
            continue;
        }
        if (s->excl_mark[index] == stamp) {
            s->pb_ids[pbn++] = iheap_pop(s);
            continue;
        }
        best_id = index;
        best_total = s->base_total;
        break;
    }
    for (int64_t i = 0; i < pbn; i++) {
        iheap_push(s, s->pb_ids[i]);
    }

    int64_t pb2n = 0;
    while (s->heap_len) {
        double value = s->heap_vals[0];
        int64_t index = s->heap_idx[0];
        double current = s->scaled[index];
        if (current != value) {
            vheap_replace(s, current, index);
            continue;
        }
        double load = value * s->pscale;
        double total;
        if (1.0 + load / s->block == 1.0) {
            vheap_pop(s);
            s->scaled[index] = 0.0;
            if (s->zero_len >= s->zero_cap) return KERN_INTERNAL;
            iheap_push(s, index);
            if (s->excl_mark[index] == stamp) continue;
            total = s->base_total;
        } else {
            if (s->excl_mark[index] == stamp) {
                s->pb_vals[pb2n] = value;
                s->pb_idx[pb2n] = index;
                pb2n++;
                vheap_pop(s);
                continue;
            }
            total = total_of_load(s, load);
            if (total > best_total) break;
            s->pb_vals[pb2n] = value;
            s->pb_idx[pb2n] = index;
            pb2n++;
            vheap_pop(s);
        }
        if (total < best_total ||
            (total == best_total && index < best_id)) {
            best_total = total;
            best_id = index;
        }
    }
    for (int64_t i = 0; i < pb2n; i++) {
        vheap_push(s, s->pb_vals[i], s->pb_idx[i]);
    }
    *out_id = best_id;
    *out_total = best_total;
    return KERN_OK;
}

/* ---------------------------------------------------------------------
 * Truncation: sorted(items, key=(-mass, shard))[:cap]; dropped mass
 * summed in rank order. Insertion sort - nnz <= n_shards and the key
 * is a strict total order, so any comparison sort yields the python
 * ranking.
 * ------------------------------------------------------------------- */

static inline int rank_before(double am, int64_t as, double bm, int64_t bs) {
    if (am > bm) return 1;
    if (am < bm) return 0;
    return as < bs;
}

static void truncate_support_dense(KState *s, int64_t *nnz_io,
                                   double *bound_out) {
    int64_t nnz = *nnz_io;
    int64_t cap = s->support_cap;
    for (int64_t i = 0; i < nnz; i++) {
        int64_t shard = s->touched[i];
        s->sort_mass[i] = s->raw[shard];
        s->sort_shard[i] = shard;
    }
    for (int64_t i = 1; i < nnz; i++) {
        double m = s->sort_mass[i];
        int64_t sh = s->sort_shard[i];
        int64_t j = i - 1;
        while (j >= 0 && rank_before(m, sh, s->sort_mass[j], s->sort_shard[j])) {
            s->sort_mass[j + 1] = s->sort_mass[j];
            s->sort_shard[j + 1] = s->sort_shard[j];
            j--;
        }
        s->sort_mass[j + 1] = m;
        s->sort_shard[j + 1] = sh;
    }
    double dropped = 0.0;
    for (int64_t i = cap; i < nnz; i++) {
        dropped += s->sort_mass[i];
        s->raw[s->sort_shard[i]] = 0.0;
    }
    /* Rebuild the touched list from the survivors and refresh the
     * bound: min over kept values (cap >= 1, never empty). */
    double bound = INFINITY;
    int64_t n = 0;
    for (int64_t i = 0; i < nnz; i++) {
        int64_t shard = s->touched[i];
        double mass = s->raw[shard];
        if (mass != 0.0) {
            s->touched[n++] = shard;
            if (mass < bound) bound = mass;
        }
    }
    *nnz_io = n;
    *bound_out = bound;
    s->dropped_mass += dropped;
    s->truncated_vectors += 1;
}

/* ---------------------------------------------------------------------
 * The batch loop.
 * ------------------------------------------------------------------- */

int place_batch(KState *s) {
    const int64_t k = s->n_shards;
    const double weight = s->weight;
    const double one_minus_alpha = s->one_minus_alpha;
    const double alpha = s->alpha;
    const double epsilon = s->epsilon;
    const int has_scale = s->has_scale;
    const int has_eps = s->has_eps;
    const int64_t cap = s->support_cap;

    s->n_done = 0;
    s->error_txid = -1;
    s->error_parent = -1;

    for (int64_t t = 0; t < s->n_tx; t++) {
        int64_t txid = s->n_placed;
        if (txid >= s->rows_cap) {
            return KERN_CAPACITY;
        }
        /* Heap headroom for the whole transaction, checked before any
         * state is touched so a CAPACITY return always leaves the
         * first n_done transactions fully committed and nothing else:
         * the value heap grows by at most one entry (proxy.record) and
         * the zero heap by at most heap_len (every demotion moves one
         * entry across). */
        if (s->heap_len + 1 > s->heap_cap ||
            s->zero_len + s->heap_len + 1 > s->zero_cap) {
            return KERN_CAPACITY;
        }
        int64_t p0 = s->par_off[t];
        int64_t p1 = s->par_off[t + 1];
        const int64_t *par = s->parents + p0;
        int64_t n_par = p1 - p0;
        int64_t n_raw;
        if (s->raw_parents) {
            /* One transaction's outpoints straight off the wire, not
             * yet deduplicated. Keep first-appearance order - exactly
             * what the python marshal's dict.fromkeys produces. Input
             * counts are tiny, so the quadratic scan beats any hashing
             * setup. */
            n_raw = n_par;
            if (n_par > 1) {
                if (n_par > s->dedup_cap) {
                    return KERN_INTERNAL;
                }
                int64_t nd = 0;
                for (int64_t p = 0; p < n_par; p++) {
                    int64_t parent = par[p];
                    int dup = 0;
                    for (int64_t j = 0; j < nd; j++) {
                        if (s->dedup[j] == parent) {
                            dup = 1;
                            break;
                        }
                    }
                    if (!dup) {
                        s->dedup[nd++] = parent;
                    }
                }
                par = s->dedup;
                n_par = nd;
            }
        } else {
            n_raw = s->n_outpoints[t];
        }
        int64_t nnz = 0;
        double bound = INFINITY;

        /* ---- T2S recurrence (add_transaction_raw, inlined) ---- */
        if (n_raw == 1) {
            int64_t parent = par[0];
            /* OutPoint guarantees parent >= 0; the extra check only
             * keeps a corrupted batch from indexing out of bounds. */
            if (parent < 0 || parent >= txid) {
                s->error_txid = txid;
                s->error_parent = parent;
                return KERN_INVALID_INPUT;
            }
            int64_t divisor = s->spender_count[parent] + 1;
            s->spender_count[parent] = divisor;
            if (has_scale && s->live[parent] && isfinite(s->min_mass[parent])) {
                double factor = one_minus_alpha / (double)divisor;
                bound = s->min_mass[parent] * factor;
                const double *prow = s->pmat + parent * k;
                if (has_eps && bound <= epsilon) {
                    bound = INFINITY;
                    for (int64_t shard = 0; shard < k; shard++) {
                        double rawmass = prow[shard];
                        if (rawmass != 0.0) {
                            double mass = rawmass * factor;
                            if (mass > epsilon) {
                                s->raw[shard] = mass;
                                s->touched[nnz++] = shard;
                                if (mass < bound) bound = mass;
                            }
                        }
                    }
                } else {
                    for (int64_t shard = 0; shard < k; shard++) {
                        double rawmass = prow[shard];
                        if (rawmass != 0.0) {
                            s->raw[shard] = rawmass * factor;
                            s->touched[nnz++] = shard;
                        }
                    }
                }
            }
        } else if (n_par > 0) {
            /* Parents are deduplicated in first-appearance order.
             * Validate all before registering any spender - the python
             * loop raises before its spender loop runs. */
            for (int64_t p = 0; p < n_par; p++) {
                int64_t parent = par[p];
                if (parent < 0 || parent >= txid) {
                    s->error_txid = txid;
                    s->error_parent = parent;
                    return KERN_INVALID_INPUT;
                }
            }
            for (int64_t p = 0; p < n_par; p++) {
                s->spender_count[par[p]] += 1;
            }
            if (has_scale) {
                for (int64_t p = 0; p < n_par; p++) {
                    int64_t parent = par[p];
                    if (!(s->live[parent] && isfinite(s->min_mass[parent]))) {
                        continue;
                    }
                    double factor =
                        one_minus_alpha / (double)s->spender_count[parent];
                    const double *prow = s->pmat + parent * k;
                    /* Per shard, contributions accumulate in parent
                     * order; the first contribution is `mass * factor`
                     * exactly (0.0 + m*f == m*f bitwise - masses are
                     * positive, no -0.0). The parent dict's own
                     * iteration order never matters: each shard gets
                     * at most one term per parent. */
                    for (int64_t shard = 0; shard < k; shard++) {
                        double rawmass = prow[shard];
                        if (rawmass != 0.0) {
                            double prev = s->raw[shard];
                            if (prev == 0.0) {
                                s->raw[shard] = rawmass * factor;
                                s->touched[nnz++] = shard;
                            } else {
                                s->raw[shard] = prev + rawmass * factor;
                            }
                        }
                    }
                }
            }
            if (has_eps && nnz) {
                int64_t n = 0;
                for (int64_t i = 0; i < nnz; i++) {
                    int64_t shard = s->touched[i];
                    if (s->raw[shard] > epsilon) {
                        s->touched[n++] = shard;
                    } else {
                        s->raw[shard] = 0.0;
                    }
                }
                nnz = n;
            }
            if (nnz) {
                bound = INFINITY;
                for (int64_t i = 0; i < nnz; i++) {
                    double mass = s->raw[s->touched[i]];
                    if (mass < bound) bound = mass;
                }
            }
        }
        if (cap >= 0 && nnz > cap) {
            truncate_support_dense(s, &nnz, &bound);
        }
        /* Append: store the new row (rows are pre-zeroed). */
        {
            double *row = s->pmat + txid * k;
            for (int64_t i = 0; i < nnz; i++) {
                int64_t shard = s->touched[i];
                row[shard] = s->raw[shard];
            }
            s->live[txid] = 1;
            s->min_mass[txid] = bound;
            s->spender_count[txid] = 0;
        }

        /* ---- fused fitness argmax ---- */
        double floor_total = -1.0;
        while (s->zero_len) {
            if (s->scaled[s->zero_heap[0]] == 0.0) {
                floor_total = s->base_total;
                break;
            }
            iheap_pop(s);
        }
        if (floor_total < 0.0) {
            for (;;) {
                if (s->heap_len == 0) return KERN_INTERNAL;
                double value = s->heap_vals[0];
                int64_t index = s->heap_idx[0];
                double current = s->scaled[index];
                if (current == value) {
                    double verify = s->base_verify *
                                    (1.0 + value * s->pscale / s->block);
                    floor_total = s->comm_expected + 1.0 / (1.0 / verify);
                    break;
                }
                vheap_replace(s, current, index);
            }
        }
        int64_t best_id = -1;
        double best_fitness = -INFINITY;
        double best_l2s = INFINITY;
        int has_inputs;
        double cross_floor;
        int64_t only_input;
        int64_t n_in_shards = 0; /* distinct input shards, via shard_mark */
        if (n_par > 0) {
            has_inputs = 1;
            cross_floor = floor_total * 2.0;
            if (n_par == 1) {
                int64_t shard = s->assignment[par[0]];
                only_input = shard;
                s->shard_mark[shard] = txid;
                n_in_shards = 1;
                double value = s->scaled[shard];
                double total;
                if (value == 0.0) {
                    total = s->base_total;
                } else {
                    double verify = s->base_verify *
                                    (1.0 + value * s->pscale / s->block);
                    total = s->comm_expected + 1.0 / (1.0 / verify);
                }
                double l2s = total;
                double mass_in = s->raw[shard];
                if (mass_in == 0.0) {
                    best_fitness = 0.0 - weight * l2s;
                } else {
                    /* The input shard holds at least its parent, so
                     * scorer_sizes[shard] >= 1: no max(1, .) needed. */
                    best_fitness = mass_in / (double)s->scorer_sizes[shard] -
                                   weight * l2s;
                }
                best_id = shard;
                best_l2s = l2s;
            } else {
                for (int64_t p = 0; p < n_par; p++) {
                    int64_t shard = s->assignment[par[p]];
                    if (s->shard_mark[shard] != txid) {
                        s->shard_mark[shard] = txid;
                        n_in_shards++;
                    }
                }
                only_input = -1;
                if (n_in_shards == 1) {
                    only_input = s->assignment[par[0]];
                }
                /* Iterate the distinct input shards. Python iterates a
                 * set; the (fitness, l2s, shard) tie-break is a strict
                 * total order, so any visit order yields the same
                 * winner. Ascending shard id is used here. */
                for (int64_t shard = 0; shard < k; shard++) {
                    if (s->shard_mark[shard] != txid) continue;
                    double value = s->scaled[shard];
                    double total;
                    if (value == 0.0) {
                        total = s->base_total;
                    } else {
                        double verify = s->base_verify *
                                        (1.0 + value * s->pscale / s->block);
                        total = s->comm_expected + 1.0 / (1.0 / verify);
                    }
                    double l2s =
                        (shard == only_input) ? total * 1.0 : total * 2.0;
                    double mass = s->raw[shard];
                    double fitness;
                    if (mass == 0.0) {
                        fitness = 0.0 - weight * l2s;
                    } else {
                        fitness = mass / (double)s->scorer_sizes[shard] -
                                  weight * l2s;
                    }
                    if (fitness > best_fitness ||
                        (fitness == best_fitness &&
                         (l2s < best_l2s ||
                          (l2s == best_l2s && shard < best_id)))) {
                        best_id = shard;
                        best_fitness = fitness;
                        best_l2s = l2s;
                    }
                }
            }
        } else {
            has_inputs = 0;
            only_input = -1;
            cross_floor = floor_total;
        }
        double weighted_cross_floor = weight * cross_floor;
        int64_t min_size = s->min_size_val > 0 ? s->min_size_val : 1;
        if (nnz) {
            double max_mass = 0.0;
            for (int64_t i = 0; i < nnz; i++) {
                double mass = s->raw[s->touched[i]];
                if (mass > max_mass) max_mass = mass;
            }
            if (max_mass / (double)min_size - weighted_cross_floor >=
                best_fitness) {
                double margin =
                    1e-6 *
                    ((best_fitness >= 0.0 ? best_fitness : -best_fitness) +
                     weighted_cross_floor + 1.0);
                double threshold =
                    (best_fitness + weighted_cross_floor - margin) *
                    (double)min_size;
                for (int64_t i = 0; i < nnz; i++) {
                    int64_t shard = s->touched[i];
                    double mass = s->raw[shard];
                    if (mass < threshold || shard == only_input) continue;
                    if (only_input < 0 && has_inputs &&
                        s->shard_mark[shard] == txid) {
                        continue;
                    }
                    int64_t size = s->scorer_sizes[shard];
                    double t2s = mass / (double)(size > 0 ? size : 1);
                    if (t2s - weighted_cross_floor < best_fitness) continue;
                    double value = s->scaled[shard];
                    double total;
                    if (value == 0.0) {
                        total = s->base_total;
                    } else {
                        double verify = s->base_verify *
                                        (1.0 + value * s->pscale / s->block);
                        total = s->comm_expected + 1.0 / (1.0 / verify);
                    }
                    double l2s = has_inputs ? total * 2.0 : total;
                    double fitness = t2s - weight * l2s;
                    if (fitness > best_fitness ||
                        (fitness == best_fitness &&
                         (l2s < best_l2s ||
                          (l2s == best_l2s && shard < best_id)))) {
                        best_id = shard;
                        best_fitness = fitness;
                        best_l2s = l2s;
                        margin = 1e-6 * (fabs(best_fitness) +
                                         weighted_cross_floor + 1.0);
                        threshold =
                            (best_fitness + weighted_cross_floor - margin) *
                            (double)min_size;
                    }
                }
            }
        }
        if (0.0 - weighted_cross_floor >= best_fitness) {
            /* exclude = set(raw) | input_shards via stamp marks. */
            int64_t n_excl = 0;
            for (int64_t i = 0; i < nnz; i++) {
                int64_t shard = s->touched[i];
                if (s->excl_mark[shard] != txid) {
                    s->excl_mark[shard] = txid;
                    n_excl++;
                }
            }
            if (has_inputs) {
                for (int64_t shard = 0; shard < k; shard++) {
                    if (s->shard_mark[shard] == txid &&
                        s->excl_mark[shard] != txid) {
                        s->excl_mark[shard] = txid;
                        n_excl++;
                    }
                }
            }
            int64_t spill_id;
            double spill_total;
            int rc = lightest_excluding(s, txid, n_excl, &spill_id,
                                        &spill_total);
            if (rc != KERN_OK) return rc;
            if (spill_id >= 0) {
                double l2s =
                    has_inputs ? spill_total * 2.0 : spill_total;
                double fitness = 0.0 - weight * l2s;
                if (fitness > best_fitness ||
                    (fitness == best_fitness &&
                     (l2s < best_l2s ||
                      (l2s == best_l2s && spill_id < best_id)))) {
                    best_id = spill_id;
                }
            }
        }
        if (best_id < 0) return KERN_INTERNAL;
        int64_t shard = best_id;

        /* ---- commit ---- */
        {
            double *row = s->pmat + txid * k;
            double new_mass = row[shard] + alpha;
            row[shard] = new_mass;
            if (new_mass < s->min_mass[txid]) s->min_mass[txid] = new_mass;
            s->scorer_sizes[shard] += 1;
            s->assignment[txid] = shard;
            s->n_placed += 1;
            int64_t old_size = s->strat_sizes[shard];
            s->strat_sizes[shard] = old_size + 1;
            if (old_size + 1 > s->max_size_val) {
                s->max_size_val = old_size + 1;
            }
            if (old_size == s->min_size_val) {
                int64_t count = s->min_size_count - 1;
                if (count == 0) {
                    s->min_size_val = old_size + 1;
                    count = 0;
                    for (int64_t i = 0; i < k; i++) {
                        if (s->strat_sizes[i] == s->min_size_val) count++;
                    }
                }
                s->min_size_count = count;
            }
            /* proxy.record, inlined */
            int64_t step = s->step + 1;
            s->step = step;
            int64_t span = step - s->offset;
            double pscale = pow(s->decay, (double)span);
            s->pscale = pscale;
            double old_value = s->scaled[shard];
            double value = old_value + 1.0 / pscale;
            s->scaled[shard] = value;
            if (old_value == 0.0) {
                if (s->heap_len >= s->heap_cap) return KERN_INTERNAL;
                vheap_push(s, value, shard);
            }
            if (span >= s->renorm_span) {
                proxy_renormalize(s);
            } else if (s->heap_len > s->compact_limit) {
                proxy_rebuild_heaps(s); /* _compact */
            }
        }

        /* clear the dense scratch for the next transaction */
        for (int64_t i = 0; i < nnz; i++) {
            s->raw[s->touched[i]] = 0.0;
        }
        s->n_done = t + 1;
    }
    return KERN_OK;
}

/* ---------------------------------------------------------------------
 * Batch validation - the compiled twin of
 * PlacementEngine._apply_inputs (src/repro/service/engine.py).
 *
 * Masks live in a dense int64 array indexed by txid (the MaskMap
 * store): 0 = absent, -1 = arbitrary-precision mask kept on the python
 * side. Dense stream order is the caller's responsibility (the marshal
 * checks it); everything else - per-outpoint check order, the undo
 * log, released-event order, and full rollback on the first invalid
 * outpoint - mirrors the python journal operation for operation, so an
 * invalid batch leaves the store bit-identical to the python path and
 * the error frontier (which txid / parent / output index is reported)
 * is exactly the same.
 *
 * Returns VALID_FALLBACK (after rolling back) when the batch touches
 * state the int64 encoding cannot represent: a sentinel mask, or a
 * transaction with more than 62 outputs. The caller then re-runs the
 * python journal on the untouched store.
 * ------------------------------------------------------------------- */

#define VALID_OK 0
#define VALID_UNKNOWN 1   /* unknown or fully-spent parent */
#define VALID_SPENT 2     /* output missing or already spent */
#define VALID_FUTURE 3    /* non-earlier parent reference */
#define VALID_FALLBACK 4  /* needs the python journal; rolled back */

typedef struct {
    /* -- batch (read-only) --------------------------------------------- */
    int64_t n_tx;
    int64_t first_txid;
    int64_t horizon_start;
    const int64_t *parents;   /* raw outpoint txids, total_inputs */
    const int32_t *indexes;   /* raw outpoint indexes, total_inputs */
    const int64_t *in_off;    /* n_tx + 1 */
    const int32_t *n_outputs; /* n_tx */

    /* -- mask store (in/out) ------------------------------------------- */
    int64_t *masks;           /* dense by txid; caller grew past the batch */

    /* -- caller-allocated result buffers ------------------------------- */
    int64_t *undo_txid;       /* >= total_inputs */
    int64_t *undo_mask;       /* >= total_inputs */
    int64_t *released;        /* >= total_inputs + n_tx */

    /* -- results ------------------------------------------------------- */
    int64_t n_undo;
    int64_t n_released;
    int64_t tracked_delta;    /* net change in live entry count */
    int64_t error_txid;
    int64_t error_parent;
    int64_t error_index;
} VState;

int validate_batch(VState *s) {
    const int64_t horizon = s->horizon_start;
    const int64_t last = s->first_txid + s->n_tx;
    int64_t n_undo = 0;
    int64_t n_rel = 0;
    int64_t delta = 0;
    int rc = VALID_OK;

    s->n_undo = 0;
    s->n_released = 0;
    s->tracked_delta = 0;
    s->error_txid = -1;
    s->error_parent = -1;
    s->error_index = -1;

    int64_t txid = s->first_txid;
    for (int64_t t = 0; t < s->n_tx; t++, txid++) {
        const int64_t i0 = s->in_off[t];
        const int64_t i1 = s->in_off[t + 1];
        for (int64_t i = i0; i < i1; i++) {
            int64_t parent = s->parents[i];
            int32_t index = s->indexes[i];
            /* A u64 wire txid past INT64_MAX arrives negative here;
             * python would compare it as a huge int and report it as
             * non-earlier, which is exactly this branch. */
            if (parent < 0 || parent >= txid) {
                rc = VALID_FUTURE;
                s->error_txid = txid;
                s->error_parent = parent;
                goto rollback;
            }
            if (parent < horizon) {
                continue; /* pre-horizon parents pass unchecked */
            }
            int64_t mask = s->masks[parent];
            if (mask == 0) {
                rc = VALID_UNKNOWN;
                s->error_txid = txid;
                s->error_parent = parent;
                goto rollback;
            }
            if (mask < 0) {
                rc = VALID_FALLBACK; /* arbitrary-precision mask */
                goto rollback;
            }
            /* Inline masks never reach bit 62, so an index at or past
             * it (or a u32 one that wrapped negative) cannot be set. */
            if (index < 0 || index >= 62 ||
                !(mask & ((int64_t)1 << index))) {
                rc = VALID_SPENT;
                s->error_txid = txid;
                s->error_parent = parent;
                s->error_index = (int64_t)index;
                goto rollback;
            }
            s->undo_txid[n_undo] = parent;
            s->undo_mask[n_undo] = mask;
            n_undo++;
            mask ^= (int64_t)1 << index;
            s->masks[parent] = mask;
            if (mask == 0) {
                s->released[n_rel++] = parent;
                delta -= 1;
            }
        }
        int64_t n_out = (int64_t)s->n_outputs[t];
        if (n_out > 62 || n_out < 0) {
            rc = VALID_FALLBACK; /* mask would not fit inline */
            goto rollback;
        }
        if (n_out > 0) {
            s->masks[txid] = (((int64_t)1 << n_out) - 1);
            delta += 1;
        } else {
            s->released[n_rel++] = txid;
        }
    }
    s->n_undo = n_undo;
    s->n_released = n_rel;
    s->tracked_delta = delta;
    return VALID_OK;

rollback:
    /* Mirror the python rollback exactly: undo entries restore in
     * reverse, then every mask the batch created is dropped. Entries
     * past the failure point were never created, so zeroing the whole
     * batch range matches the python pop loop. */
    for (int64_t u = n_undo - 1; u >= 0; u--) {
        s->masks[s->undo_txid[u]] = s->undo_mask[u];
    }
    for (int64_t id = s->first_txid; id < last; id++) {
        s->masks[id] = 0;
    }
    return rc;
}
