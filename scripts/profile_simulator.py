"""Profile the simulator event loop (cProfile, sorted by self-time).

Complements ``scripts/profile_placement.py`` (which covers static
placement): this drives a full discrete-event simulation at a chosen
configuration and prints where the loop spends its time - the tool the
event-loop overhaul was steered with.

Usage::

    PYTHONPATH=src python scripts/profile_simulator.py
    PYTHONPATH=src python scripts/profile_simulator.py \
        --txs 40000 --shards 16 --rate 500 --method optchain
    PYTHONPATH=src python scripts/profile_simulator.py --seed-loop
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core._seed_reference import SeedOmniLedgerRandomPlacer
from repro.core.baselines import OmniLedgerRandomPlacer
from repro.core.optchain import OptChainPlacer
from repro.experiments.configs import get_scale
from repro.experiments.runner import stream_for
from repro.simulator._seed_reference import run_simulation_seed
from repro.simulator.engine import run_simulation


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--txs", type=int, default=20_000)
    parser.add_argument("--scale", default="default")
    parser.add_argument("--shards", type=int, default=16)
    parser.add_argument("--rate", type=float, default=500.0)
    parser.add_argument(
        "--method", default="omniledger", choices=("omniledger", "optchain")
    )
    parser.add_argument(
        "--seed-loop",
        action="store_true",
        help="profile the preserved seed loop instead of the fast loop",
    )
    parser.add_argument("--lines", type=int, default=30)
    parser.add_argument("--sort", default="tottime")
    args = parser.parse_args(argv)

    scale = get_scale(args.scale)
    stream = stream_for(scale, 1)[: args.txs]
    config = scale.simulation(args.shards, args.rate)
    if args.seed_loop:
        runner = run_simulation_seed
        placer = (
            SeedOmniLedgerRandomPlacer(args.shards)
            if args.method == "omniledger"
            else OptChainPlacer(args.shards)
        )
    else:
        runner = run_simulation
        placer = (
            OmniLedgerRandomPlacer(args.shards)
            if args.method == "omniledger"
            else OptChainPlacer(args.shards)
        )

    loop = "seed" if args.seed_loop else "fast"
    print(
        f"profiling {loop} loop: {args.method}, k={args.shards}, "
        f"rate={args.rate}, {len(stream)} txs ({scale.name} scale)"
    )
    profiler = cProfile.Profile()
    profiler.enable()
    result = runner(stream, placer, config)
    profiler.disable()
    print(
        f"committed {result.n_committed}/{result.n_issued}, "
        f"sim duration {result.duration:.1f}s, drained={result.drained}"
    )
    pstats.Stats(profiler).sort_stats(args.sort).print_stats(args.lines)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
