"""Kernel-resident batch validation vs the python spend journal.

The serving hot path moved into C (``validate_batch`` in
``_kernel.c``): the mask store became a typed array (:class:`MaskMap`),
validation+rollback run in one kernel call, and binary ``place`` frames
feed the kernel without materializing :class:`Transaction` objects.
Every test here is differential - the python journal is the spec, and
the kernel path must be *byte-identical*: same placements, same
exception type and message, same committed prefix, same post-rollback
mask store, same replies through the sharded service.

Skipped wholesale when numpy is missing; kernel-specific lanes skip
(not fail) when no C compiler is available - the degrade lane then
still runs, which is exactly the configuration it asserts.
"""

from __future__ import annotations

import asyncio
import warnings

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.backends.arrays import MaskMap  # noqa: E402
from repro.core.backends.ckernel import load_kernel  # noqa: E402
from repro.core.placement import make_placer  # noqa: E402
from repro.errors import EngineError  # noqa: E402
from repro.service.engine import PlacementEngine  # noqa: E402
from repro.service.wire import (  # noqa: E402
    FRAME_HEADER_BYTES,
    concat_wire_batches,
    decode_place_arrays,
    encode_place_request,
)
from repro.utxo.transaction import (  # noqa: E402
    OutPoint,
    Transaction,
    TxOutput,
)

N_SHARDS = 8

requires_kernel = pytest.mark.skipif(
    load_kernel() is None, reason="compiled kernel unavailable"
)


def _tx(txid, parents, n_outputs=1):
    return Transaction(
        txid=txid,
        inputs=tuple(OutPoint(p, i) for p, i in parents),
        outputs=tuple(TxOutput(1) for _ in range(n_outputs)),
    )


def _twin_engines(**kwargs):
    engines = []
    for backend in ("python", "numpy"):
        engines.append(
            PlacementEngine(
                make_placer("optchain", N_SHARDS, backend=backend),
                **kwargs,
            )
        )
    return engines


def _remaining_dict(engine):
    remaining = engine._remaining
    if isinstance(remaining, MaskMap):
        return dict(remaining.items())
    return dict(remaining)


def _outcome(engine, batch, **kwargs):
    """(placements, None) or (None, error message) - plus invariance:
    a rejected batch must leave the engine serving."""
    try:
        return engine.place_batch(batch, **kwargs), None
    except EngineError as exc:
        return None, str(exc)


class TestMaskMap:
    def test_mapping_contract(self):
        masks = MaskMap()
        masks[3] = 0b101
        masks[0] = 1
        masks[7] = (1 << 62) - 1
        assert len(masks) == 3
        assert masks[3] == 0b101
        assert sorted(masks) == [0, 3, 7]
        assert dict(masks.items()) == {0: 1, 3: 0b101, 7: (1 << 62) - 1}
        assert 3 in masks and 4 not in masks
        del masks[3]
        assert len(masks) == 2
        with pytest.raises(KeyError):
            masks[3]
        assert masks.pop(99, None) is None
        assert masks == {0: 1, 7: (1 << 62) - 1}

    def test_zero_or_negative_masks_rejected(self):
        masks = MaskMap()
        with pytest.raises(ValueError):
            masks[0] = 0
        with pytest.raises(ValueError):
            masks[1] = -1

    def test_big_masks_roundtrip_through_overflow_store(self):
        """Masks past 62 bits (a >62-output transaction) leave the
        typed array and live in the exact-int side store - reads,
        deletes, and equality must not notice."""
        masks = MaskMap()
        big = (1 << 100) - 1
        masks[5] = big
        masks[6] = 7
        assert masks[5] == big
        assert dict(masks.items()) == {5: big, 6: 7}
        masks[5] = 3  # shrink back into the inline array
        assert masks[5] == 3
        masks[5] = big
        del masks[5]
        assert dict(masks.items()) == {6: 7}

    def test_clear_range_matches_pop_loop(self):
        reference = {}
        masks = MaskMap()
        for txid in range(0, 200, 3):
            mask = (txid % 61) + 1
            reference[txid] = mask
            masks[txid] = mask
        masks[90] = 1 << 90  # an overflow entry inside the range
        reference[90] = 1 << 90
        for txid in list(reference):
            if 40 <= txid < 150 and txid not in (90, 99):
                del reference[txid]
        masks.clear_range(40, 150, exclude=(90, 99))
        assert dict(masks.items()) == reference
        assert len(masks) == len(reference)
        masks.clear_range(0, 1_000_000)
        assert dict(masks.items()) == {}
        assert len(masks) == 0

    def test_growth_preserves_contents(self):
        masks = MaskMap(capacity=2)
        for txid in range(500):
            masks[txid] = txid + 1
        assert len(masks) == 500
        assert masks[499] == 500


@st.composite
def engine_scenarios(draw):
    """A valid spend prefix plus an arbitrary (usually invalid) batch.

    The prefix tracks open outputs so it always commits; the follow-up
    batch draws parents and output indexes from a range that covers
    unknown parents, future parents, spent outputs, out-of-range
    indexes, duplicate outpoints, and (occasionally) fully valid
    spends - the differential must hold for every one of them.
    """
    n_prefix = draw(st.integers(min_value=2, max_value=30))
    txs = []
    open_outputs: dict[int, list[int]] = {}
    for i in range(n_prefix):
        n_out = draw(st.integers(min_value=0 if i else 1, max_value=3))
        inputs = []
        candidates = [
            (t, index)
            for t, indexes in sorted(open_outputs.items())
            for index in indexes
        ]
        if candidates and draw(st.booleans()):
            count = draw(
                st.integers(min_value=1, max_value=min(2, len(candidates)))
            )
            picks = draw(
                st.lists(
                    st.sampled_from(candidates),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            for t, index in picks:
                open_outputs[t].remove(index)
                if not open_outputs[t]:
                    del open_outputs[t]
                inputs.append((t, index))
        txs.append(_tx(i, inputs, n_outputs=n_out))
        if n_out:
            open_outputs[i] = list(range(n_out))
    n_bad = draw(st.integers(min_value=1, max_value=6))
    bad = []
    for j in range(n_bad):
        txid = n_prefix + j
        fan_in = draw(st.integers(min_value=0, max_value=3))
        inputs = [
            (
                draw(st.integers(min_value=0, max_value=txid + 2)),
                draw(st.integers(min_value=0, max_value=4)),
            )
            for _ in range(fan_in)
        ]
        bad.append(_tx(txid, inputs))
    return txs, bad


class TestKernelJournalDifferential:
    @requires_kernel
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_invalid_batches_bit_identical(self, data):
        txs, bad = data.draw(engine_scenarios())
        python_eng, numpy_eng = _twin_engines(
            epoch_length=16, horizon_epochs=2
        )
        assert numpy_eng.kernel_validation
        for start in range(0, len(txs), 7):
            chunk = txs[start : start + 7]
            assert python_eng.place_batch(chunk) == numpy_eng.place_batch(
                chunk
            )
        result_py = _outcome(python_eng, bad)
        result_np = _outcome(numpy_eng, bad)
        # Same acceptance, and on rejection the same exception message
        # (code, txid, parent, and index all baked into the string).
        assert result_py == result_np
        # Same committed prefix and identical post-rollback mask store.
        assert python_eng.n_placed == numpy_eng.n_placed
        assert _remaining_dict(python_eng) == _remaining_dict(numpy_eng)
        assert (
            python_eng._pending_release == numpy_eng._pending_release
        )
        # Both keep serving the identical continuation.
        follow = [_tx(python_eng.n_placed, [])]
        assert python_eng.place_batch(follow) == numpy_eng.place_batch(
            follow
        )
        assert _remaining_dict(python_eng) == _remaining_dict(numpy_eng)

    @requires_kernel
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_wire_path_matches_object_path(self, data):
        """place_wire_batch (zero-copy arrays) vs place_batch (objects)
        on twin kernel engines: same placements, same errors, same
        state - valid and invalid batches alike."""
        txs, bad = data.draw(engine_scenarios())
        object_eng, wire_eng = (
            PlacementEngine(
                make_placer("optchain", N_SHARDS, backend="numpy"),
                epoch_length=16,
                horizon_epochs=2,
            )
            for _ in range(2)
        )
        cursor = 0
        for batch in ([*txs[: len(txs) // 2]], [*txs[len(txs) // 2 :]], bad):
            if not batch:
                continue
            payload = encode_place_request(0, batch)[FRAME_HEADER_BYTES:]
            wire_batch = decode_place_arrays(payload)
            assert wire_batch is not None
            try:
                placed_obj = object_eng.place_batch(batch)
                error_obj = None
            except EngineError as exc:
                placed_obj, error_obj = None, str(exc)
            try:
                placed_wire = wire_eng.place_wire_batch(wire_batch)
                error_wire = None
            except EngineError as exc:
                placed_wire, error_wire = None, str(exc)
            assert placed_obj == placed_wire
            assert error_obj == error_wire
            assert object_eng.n_placed == wire_eng.n_placed
            assert _remaining_dict(object_eng) == _remaining_dict(
                wire_eng
            )
            cursor += len(batch)

    @requires_kernel
    def test_oversized_output_masks_fall_back_identically(self):
        """>62-output transactions overflow the inline mask words; the
        kernel punts those batches to the python journal and the two
        backends stay identical - including invalid spends against an
        arbitrary-precision mask."""
        python_eng, numpy_eng = _twin_engines()
        wide = [
            _tx(0, [], n_outputs=100),
            _tx(1, [(0, 99)], n_outputs=1),
        ]
        for engine in (python_eng, numpy_eng):
            engine.place_batch(wide)
        bad = [_tx(2, [(0, 99)])]  # index 99 already spent
        result_py = _outcome(python_eng, bad)
        result_np = _outcome(numpy_eng, bad)
        assert result_py == result_np
        assert result_py[1] is not None and "already spent" in result_py[1]
        assert _remaining_dict(python_eng) == _remaining_dict(numpy_eng)
        assert _remaining_dict(numpy_eng)[0] == ((1 << 100) - 1) ^ (
            1 << 99
        )


class TestExcludeRelease:
    @requires_kernel
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_exclude_filter_preserves_pending_order(self, backend):
        """The partition layer's ``_exclude_release`` hook must withhold
        exactly the excluded txids while keeping the survivors in spend
        event order - the order the epoch sweep releases them in."""
        engine = PlacementEngine(
            make_placer("optchain", N_SHARDS, backend=backend)
        )
        engine.place_batch(
            [_tx(i, [], n_outputs=1) for i in range(6)]
        )
        # One batch spending parents in a deliberate non-sorted order.
        batch = [
            _tx(6, [(3, 0)]),
            _tx(7, [(0, 0), (5, 0)]),
            _tx(8, [(1, 0)]),
        ]
        engine.place_batch(batch, _exclude_release=frozenset({0, 1}))
        assert engine._pending_release == [3, 5]

    @requires_kernel
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_empty_exclusion_set_is_inert(self, backend):
        engine = PlacementEngine(
            make_placer("optchain", N_SHARDS, backend=backend)
        )
        engine.place_batch([_tx(0, []), _tx(1, [])])
        engine.place_batch(
            [_tx(2, [(1, 0), (0, 0)])], _exclude_release=frozenset()
        )
        assert engine._pending_release == [1, 0]


class TestWireBatchPlumbing:
    def test_concat_matches_single_frame_decode(self):
        from repro.datasets.synthetic import synthetic_stream

        stream = synthetic_stream(120, seed=11)
        whole = decode_place_arrays(
            encode_place_request(0, stream)[FRAME_HEADER_BYTES:]
        )
        parts = [
            decode_place_arrays(
                encode_place_request(0, stream[start : start + 40])[
                    FRAME_HEADER_BYTES:
                ]
            )
            for start in range(0, 120, 40)
        ]
        merged = concat_wire_batches(parts)
        assert merged.first_txid == whole.first_txid
        assert merged.n_txs == whole.n_txs
        for field in ("parents", "indexes", "in_off", "n_inputs", "n_outputs"):
            assert np.array_equal(
                getattr(merged, field), getattr(whole, field)
            ), field
        assert len(merged.payloads) == 3

    def test_degraded_worker_warns_and_serves_object_path(
        self, monkeypatch
    ):
        """No compiler (or a kernel-incompatible config): the worker
        must warn - not fail - and serve through the object decoder."""
        import repro.core.backends.numpy_backend as backend_module

        from repro.service.partition import EnginePartition
        from repro.service.worker import PlacementWorker

        monkeypatch.setattr(backend_module, "load_kernel", lambda: None)
        engine = PlacementEngine(
            make_placer("optchain", N_SHARDS, backend="numpy")
        )
        assert not engine.kernel_validation
        partition = EnginePartition(
            engine, partition_id=0, n_partitions=1, lease_length=600
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            worker = PlacementWorker(partition)
        assert worker._wire_arrays is False
        messages = [
            str(entry.message)
            for entry in caught
            if entry.category is RuntimeWarning
        ]
        assert any(
            "wire fast path is disabled" in message
            for message in messages
        ), messages
        # And the engine still places correctly through the journal.
        assert len(engine.place_batch([_tx(0, []), _tx(1, [(0, 0)])])) == 2

    @requires_kernel
    def test_kernel_worker_does_not_warn(self):
        from repro.service.partition import EnginePartition
        from repro.service.worker import PlacementWorker

        engine = PlacementEngine(
            make_placer("optchain", N_SHARDS, backend="numpy")
        )
        partition = EnginePartition(
            engine, partition_id=0, n_partitions=1, lease_length=600
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            worker = PlacementWorker(partition)
        assert worker._wire_arrays is True
        assert not [
            entry
            for entry in caught
            if entry.category is RuntimeWarning
        ]


class TestShardedWireLane:
    @requires_kernel
    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_sharded_wire_replies_bit_identical(self, n_workers):
        """The wire fast path through real worker processes at N=1/2/3
        must reproduce the monolithic python engine's replies."""
        from repro.datasets.synthetic import synthetic_stream
        from repro.service.client import AsyncBinaryPlacementClient
        from repro.service.coordinator import ShardedPlacementServer

        stream = synthetic_stream(2_000, seed=7)
        expected = make_placer("optchain", 4).place_stream(stream)
        served = []

        async def main():
            server = ShardedPlacementServer(
                {
                    "method": "optchain:backend=numpy",
                    "n_shards": 4,
                    "epoch_length": 500,
                },
                n_workers,
                port=0,
                lease_length=600,
            )
            await server.start()
            try:
                client = await AsyncBinaryPlacementClient.connect(
                    port=server.port
                )
                for offset in range(0, len(stream), 250):
                    served.extend(
                        await client.place(stream[offset : offset + 250])
                    )
                await client.close()
            finally:
                await server.stop()

        asyncio.run(main())
        assert served == expected
