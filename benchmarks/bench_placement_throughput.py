"""Placement throughput benchmark - the perf trajectory for the hot path.

Measures transactions-per-second of each placement strategy over a fixed
synthetic stream, including the ``*_seed`` reference implementations
(the pre-optimization code paths preserved in
``repro.core._seed_reference``) so speedups are recorded against an
honest baseline *in the same file*. Results land in
``BENCH_placement.json``.

Not a pytest-benchmark module: throughput benches want explicit warmup,
repeats, and a machine-readable artifact. Run it directly::

    PYTHONPATH=src python benchmarks/bench_placement_throughput.py
    PYTHONPATH=src python benchmarks/bench_placement_throughput.py \
        --txs 1000000 --shards 16 --strategies optchain,optchain_seed
    PYTHONPATH=src python benchmarks/bench_placement_throughput.py \
        --txs 20000 --repeats 1 --check   # CI smoke

``--topk-caps`` sweeps the bounded-support (``optchain-topk``)
speed-vs-quality frontier at each shard count: per cap, throughput plus
the cross-shard-fraction delta against exact optchain measured in the
same run (rows land under ``topk_frontier``). ``optchain-topk`` and
``optchain-topk@<cap>`` are also valid ``--strategies`` tokens. The
1M-tx/64-shard frontier recorded in BENCH_placement.json::

    PYTHONPATH=src python benchmarks/bench_placement_throughput.py \
        --txs 1000000 --shards 64 --strategies optchain --repeats 1 \
        --topk-caps 4,8,16 --append

``--check`` enforces the acceptance gates:

- ``optchain`` >= 5x ``optchain_seed`` at 16 shards (constant-factor
  win: no per-transaction model objects, estimators, or dense scans);
- the load proxy's ``record`` cost stays roughly flat from 4 to 64
  shards (O(1) lazy decay - the seed proxy decayed every shard on every
  placement);
- every ``topk_frontier`` row with ``cap >= n_shards`` is placement-
  identical to exact optchain (truncation provably never fires there),
  and finite-cap rows clear ``--min-topk-tx-per-s`` /
  ``--min-topk-speedup`` when set;
- with ``--numpy``, every vectorized-backend lane is placement-
  identical to its python twin (unconditional) and clears
  ``--min-numpy-speedup`` when set.

``--numpy`` adds a vectorized-backend twin lane (rows land under
``numpy_backend``) for each eligible strategy token; full spec strings
such as ``optchain-topk:cap=16,backend=numpy`` are also valid
``--strategies`` tokens. The recorded numpy frontier::

    PYTHONPATH=src python benchmarks/bench_placement_throughput.py \
        --txs 100000 --shards 16,64 --repeats 2 --numpy \
        --strategies optchain,optchain-topk@8 --append

See PERFORMANCE.md for how to read the output.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro.core._seed_reference  # noqa: F401  (registers *_seed strategies)
from repro.core.optchain import LoadProxyLatencyProvider
from repro.core.placement import make_placer
from repro.core._seed_reference import EagerLoadProxy
from repro.datasets.synthetic import synthetic_stream
from repro.partition.quality import cross_shard_fraction

DEFAULT_STRATEGIES = (
    "optchain",
    "optchain_seed",
    "t2s",
    "t2s_seed",
    "greedy",
    "greedy_seed",
    "omniledger",
)
DEFAULT_SHARDS = (4, 16, 64)
STREAM_SEED = 42


def _make(name: str, n_shards: int, n_tx: int):
    if ":" in name:
        # Full strategy-spec string, e.g. "optchain:backend=numpy" or
        # "optchain-topk:cap=16,backend=numpy" - make_placer parses it.
        return make_placer(name, n_shards)
    if name.startswith("optchain-topk"):
        # "optchain-topk" (strategy default cap) or "optchain-topk@8".
        if "@" in name:
            cap = int(name.split("@", 1)[1])
            return make_placer("optchain-topk", n_shards, support_cap=cap)
        return make_placer("optchain-topk", n_shards)
    if name in ("t2s", "t2s_seed", "greedy", "greedy_seed"):
        return make_placer(name, n_shards, expected_total=n_tx)
    return make_placer(name, n_shards)


def bench_strategy(name, n_shards, stream, repeats):
    """Best-of-``repeats`` wall time placing the whole stream.

    Collects before each timed run (the sibling benches' protocol):
    late lanes otherwise inherit gen-2 pressure from every placer the
    earlier lanes dropped, and a collection landing inside the timed
    region of a fast lane can cost it 3x.
    """
    best = float("inf")
    assignment = None
    for _ in range(repeats):
        gc.collect()
        placer = _make(name, n_shards, len(stream))
        start = time.perf_counter()
        assignment = placer.place_stream(stream)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, assignment


def bench_proxy_record(n_shards, n_records, proxy_cls):
    """Seconds per record() call, best of 3 - the O(1)-vs-O(n) probe."""
    pattern = [i % n_shards for i in range(n_records)]
    best = float("inf")
    for _ in range(3):
        proxy = proxy_cls(n_shards)
        start = time.perf_counter()
        record = proxy.record
        for shard in pattern:
            record(shard)
        best = min(best, time.perf_counter() - start)
    return best / n_records


def bench_topk_frontier(n_shards, stream, args, assignments, timings):
    """The bounded-support speed-vs-quality frontier at one shard count.

    One row per cap in ``--topk-caps`` plus the exact (``cap: null``)
    baseline, each with throughput and cross-shard fraction - the two
    axes of the trade. The exact lane reuses this run's ``optchain``
    measurement when the strategy list included it, so appending
    frontier rows to an existing file does not re-pay the exact run.
    """
    n_tx = len(stream)
    if "optchain" in timings:
        exact_s = timings["optchain"]
        exact_assignment = assignments["optchain"]
    else:
        exact_s, exact_assignment = bench_strategy(
            "optchain", n_shards, stream, args.repeats
        )
    exact_cross = cross_shard_fraction(stream, exact_assignment)
    exact_us = exact_s / n_tx * 1e6
    rows = [
        {
            "cap": None,
            "n_shards": n_shards,
            "n_tx": n_tx,
            "seconds": round(exact_s, 4),
            "tx_per_s": round(n_tx / exact_s, 1),
            "per_tx_us": round(exact_us, 3),
            "cross_shard": round(exact_cross, 6),
        }
    ]
    print(
        f"  topk frontier  k={n_shards:<3} cap=exact "
        f"{n_tx / exact_s:>12,.0f} tx/s  cross {exact_cross:.4f}",
        flush=True,
    )
    for cap in args.topk_caps:
        elapsed, assignment = bench_strategy(
            f"optchain-topk@{cap}", n_shards, stream, args.repeats
        )
        cross = cross_shard_fraction(stream, assignment)
        identical = assignment == exact_assignment
        rows.append(
            {
                "cap": cap,
                "n_shards": n_shards,
                "n_tx": n_tx,
                "seconds": round(elapsed, 4),
                "tx_per_s": round(n_tx / elapsed, 1),
                "per_tx_us": round(elapsed / n_tx * 1e6, 3),
                "cross_shard": round(cross, 6),
                "cross_shard_delta_pp": round(
                    (cross - exact_cross) * 100.0, 4
                ),
                "speedup_vs_exact": round(exact_s / elapsed, 2),
                "identical_to_exact": identical,
            }
        )
        print(
            f"  topk frontier  k={n_shards:<3} cap={cap:<5} "
            f"{n_tx / elapsed:>12,.0f} tx/s  cross {cross:.4f} "
            f"({(cross - exact_cross) * 100.0:+.3f}pp, "
            f"{exact_s / elapsed:.2f}x exact)"
            + ("  [== exact]" if identical else ""),
            flush=True,
        )
    return rows


def _numpy_spec(name: str) -> "str | None":
    """The spec string of *name*'s numpy-backend twin, or ``None``."""
    if ":" in name or name.endswith("_seed"):
        return None
    if name == "optchain":
        return "optchain:backend=numpy"
    if name.startswith("optchain-topk"):
        if "@" in name:
            cap = name.split("@", 1)[1]
            return f"optchain-topk:cap={cap},backend=numpy"
        return "optchain-topk:backend=numpy"
    return None


def bench_numpy_backend(n_shards, stream, args, assignments, timings):
    """Vectorized-backend lanes: bit-identity vs python plus speedup.

    One row per strategy in this run that has a numpy twin
    (``optchain``, ``optchain-topk[@cap]``). The identity bit is the
    contract - the backend must place *identically* to the python
    golden path, so ``--check`` fails on any divergence regardless of
    thresholds.
    """
    rows = []
    n_tx = len(stream)
    for name in args.strategies:
        spec = _numpy_spec(name)
        if spec is None or name not in timings:
            continue
        elapsed, assignment = bench_strategy(
            spec, n_shards, stream, args.repeats
        )
        identical = assignment == assignments[name]
        speedup = timings[name] / elapsed
        rows.append(
            {
                "strategy": name,
                "spec": spec,
                "n_shards": n_shards,
                "n_tx": n_tx,
                "seconds": round(elapsed, 4),
                "tx_per_s": round(n_tx / elapsed, 1),
                "speedup_vs_python": round(speedup, 2),
                "identical_to_python": identical,
            }
        )
        print(
            f"  numpy backend  k={n_shards:<3} {name:<18} "
            f"{n_tx / elapsed:>12,.0f} tx/s  ({speedup:.2f}x python)"
            + ("  [== python]" if identical else "  !! DIVERGED"),
            flush=True,
        )
    return rows


def run(args):
    if args.numpy:
        from repro.core.backends import backend_unavailable_reason

        reason = backend_unavailable_reason("numpy")
        if reason is not None:
            print(
                f"--numpy requested but unavailable: {reason}",
                file=sys.stderr,
            )
            return 1
    t0 = time.perf_counter()
    stream = synthetic_stream(args.txs, seed=STREAM_SEED)
    gen_seconds = time.perf_counter() - t0

    # Warm the allocator and code paths so the first strategy measured
    # is not penalized.
    warm = stream[: min(5_000, args.txs)]
    for name in args.strategies:
        _make(name, args.shards[0], len(warm)).place_stream(warm)

    results = []
    equivalences = []
    frontier = []
    numpy_rows = []
    for n_shards in args.shards:
        assignments = {}
        timings = {}
        for name in args.strategies:
            elapsed, assignment = bench_strategy(
                name, n_shards, stream, args.repeats
            )
            assignments[name] = assignment
            timings[name] = elapsed
            tx_per_s = args.txs / elapsed
            results.append(
                {
                    "strategy": name,
                    "n_shards": n_shards,
                    "n_tx": args.txs,
                    "seconds": round(elapsed, 4),
                    "tx_per_s": round(tx_per_s, 1),
                }
            )
            print(
                f"  {name:<14} k={n_shards:<3} {tx_per_s:>12,.0f} tx/s "
                f"({elapsed:.2f}s)",
                flush=True,
            )
        for fast, seed in (
            ("optchain", "optchain_seed"),
            ("t2s", "t2s_seed"),
            ("greedy", "greedy_seed"),
        ):
            if fast in assignments and seed in assignments:
                identical = assignments[fast] == assignments[seed]
                equivalences.append(
                    {
                        "fast": fast,
                        "seed": seed,
                        "n_shards": n_shards,
                        "n_tx": args.txs,
                        "identical_placements": identical,
                    }
                )
                if not identical:
                    print(
                        f"  !! {fast} != {seed} at k={n_shards}",
                        file=sys.stderr,
                    )
        if args.topk_caps:
            frontier.extend(
                bench_topk_frontier(
                    n_shards, stream, args, assignments, timings
                )
            )
        if args.numpy:
            numpy_rows.extend(
                bench_numpy_backend(
                    n_shards, stream, args, assignments, timings
                )
            )

    # Speedups vs the seed measurement in this same run.
    by_key = {(r["strategy"], r["n_shards"], r["n_tx"]): r for r in results}
    for r in results:
        seed_row = by_key.get(
            (r["strategy"] + "_seed", r["n_shards"], r["n_tx"])
        )
        if seed_row is not None:
            r["speedup_vs_seed"] = round(
                r["tx_per_s"] / seed_row["tx_per_s"], 2
            )

    previous = None
    if args.append and Path(args.out).exists():
        previous = json.loads(Path(args.out).read_text())

    # When appending, reuse the already-recorded record() scaling rows
    # instead of burning time re-measuring and then discarding them.
    proxy_scaling = (
        previous.get("proxy_record_scaling") if previous else None
    )
    if not proxy_scaling:
        proxy_scaling = []
        for n_shards in (4, 16, 64):
            lazy_ns = bench_proxy_record(
                n_shards, args.proxy_records, LoadProxyLatencyProvider
            )
            eager_ns = bench_proxy_record(
                n_shards, args.proxy_records, EagerLoadProxy
            )
            proxy_scaling.append(
                {
                    "n_shards": n_shards,
                    "lazy_record_us": round(lazy_ns * 1e6, 4),
                    "eager_record_us": round(eager_ns * 1e6, 4),
                }
            )
            print(
                f"  proxy.record   k={n_shards:<3} "
                f"lazy {lazy_ns*1e9:7.1f} ns"
                f"  eager {eager_ns*1e9:7.1f} ns"
            )

    payload = {
        "meta": {
            "stream_seed": STREAM_SEED,
            "n_tx": args.txs,
            "repeats": args.repeats,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "stream_generation_seconds": round(gen_seconds, 2),
        },
        "results": results,
        "golden_equivalence": equivalences,
        "proxy_record_scaling": proxy_scaling,
        "topk_frontier": frontier,
        "numpy_backend": numpy_rows,
    }
    out = Path(args.out)
    if previous is not None:
        keep = [
            r
            for r in previous.get("results", [])
            if not any(
                r["strategy"] == n["strategy"]
                and r["n_shards"] == n["n_shards"]
                and r["n_tx"] == n["n_tx"]
                for n in results
            )
        ]
        payload["results"] = keep + results
        keep_eq = [
            e
            for e in previous.get("golden_equivalence", [])
            if not any(
                e["fast"] == n["fast"]
                and e["n_shards"] == n["n_shards"]
                and e.get("n_tx") == n["n_tx"]
                for n in equivalences
            )
        ]
        payload["golden_equivalence"] = keep_eq + equivalences
        keep_frontier = [
            f
            for f in previous.get("topk_frontier", [])
            if not any(
                f["cap"] == n["cap"]
                and f["n_shards"] == n["n_shards"]
                and f["n_tx"] == n["n_tx"]
                for n in frontier
            )
        ]
        payload["topk_frontier"] = keep_frontier + frontier
        keep_numpy = [
            r
            for r in previous.get("numpy_backend", [])
            if not any(
                r["strategy"] == n["strategy"]
                and r["n_shards"] == n["n_shards"]
                and r["n_tx"] == n["n_tx"]
                for n in numpy_rows
            )
        ]
        payload["numpy_backend"] = keep_numpy + numpy_rows
        payload["meta"] = previous.get("meta", payload["meta"])
        payload["meta"][f"appended_run_{args.txs}tx"] = {
            "repeats": args.repeats,
            "shards": list(args.shards),
        }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    if args.check:
        failures = check(payload, args)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("all checks passed")
    return 0


def check(payload, args):
    """The acceptance gates; returns a list of failure messages."""
    failures = []
    for eq in payload["golden_equivalence"]:
        if not eq["identical_placements"]:
            failures.append(
                f"{eq['fast']} placements diverge from {eq['seed']} at "
                f"k={eq['n_shards']}"
            )
    # Gate on this run's scale only: merged files may hold rows for
    # other transaction counts with different expected ratios.
    by_key = {
        (r["strategy"], r["n_shards"], r["n_tx"]): r
        for r in payload["results"]
    }
    gate_shards = 16 if 16 in args.shards else args.shards[0]
    fast = by_key.get(("optchain", gate_shards, args.txs))
    seed = by_key.get(("optchain_seed", gate_shards, args.txs))
    if fast and seed:
        speedup = fast["tx_per_s"] / seed["tx_per_s"]
        if speedup < args.min_speedup:
            failures.append(
                f"optchain speedup at k={gate_shards} is {speedup:.2f}x "
                f"< {args.min_speedup}x"
            )
    scaling = {
        row["n_shards"]: row["lazy_record_us"]
        for row in payload["proxy_record_scaling"]
    }
    if 4 in scaling and 64 in scaling:
        ratio = scaling[64] / scaling[4]
        if ratio > args.max_record_ratio:
            failures.append(
                f"lazy record() time grows {ratio:.2f}x from 4 to 64 "
                f"shards (> {args.max_record_ratio}x); decay is no "
                "longer O(1)"
            )
    # Bounded-support gates, on this run's scale only. The equivalence
    # gate is unconditional: a cap >= n_shards provably reduces to the
    # exact scorer, so any divergence is a bug, not a trade-off.
    for row in payload.get("topk_frontier", []):
        cap = row.get("cap")
        if cap is None or row["n_tx"] != args.txs:
            continue
        if cap >= row["n_shards"] and not row["identical_to_exact"]:
            failures.append(
                f"optchain-topk cap={cap} >= k={row['n_shards']} must "
                "be placement-identical to exact optchain, but diverged"
            )
        if cap >= row["n_shards"]:
            continue
        if (
            args.min_topk_tx_per_s
            and row["tx_per_s"] < args.min_topk_tx_per_s
        ):
            failures.append(
                f"optchain-topk cap={cap} at k={row['n_shards']} "
                f"places {row['tx_per_s']:.0f} tx/s < floor "
                f"{args.min_topk_tx_per_s}"
            )
        if (
            args.min_topk_speedup
            and row["speedup_vs_exact"] < args.min_topk_speedup
        ):
            failures.append(
                f"optchain-topk cap={cap} at k={row['n_shards']} is "
                f"{row['speedup_vs_exact']:.2f}x exact < "
                f"{args.min_topk_speedup}x"
            )
    # Vectorized-backend gates, on this run's scale only. Bit-identity
    # is unconditional: the backend's contract is *identical
    # placements*, so divergence is a bug never excused by speed.
    for row in payload.get("numpy_backend", []):
        if row["n_tx"] != args.txs:
            continue
        if not row["identical_to_python"]:
            failures.append(
                f"numpy backend {row['spec']} diverged from the python "
                f"golden path at k={row['n_shards']}"
            )
        if (
            args.min_numpy_speedup
            and row["speedup_vs_python"] < args.min_numpy_speedup
        ):
            failures.append(
                f"numpy backend {row['spec']} at k={row['n_shards']} "
                f"is {row['speedup_vs_python']:.2f}x python < "
                f"{args.min_numpy_speedup}x"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--txs", type=int, default=100_000)
    parser.add_argument(
        "--shards",
        type=lambda s: tuple(int(x) for x in s.split(",")),
        default=DEFAULT_SHARDS,
    )
    parser.add_argument(
        "--strategies",
        type=lambda s: tuple(s.split(",")),
        default=DEFAULT_STRATEGIES,
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--proxy-records", type=int, default=200_000)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_placement.json"
        ),
    )
    parser.add_argument("--check", action="store_true")
    parser.add_argument(
        "--append",
        action="store_true",
        help="merge results into an existing --out file (e.g. add a 1M-tx "
        "row to the default 100k run)",
    )
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument("--max-record-ratio", type=float, default=3.0)
    parser.add_argument(
        "--topk-caps",
        type=lambda s: tuple(int(x) for x in s.split(",")),
        default=None,
        help="sweep the optchain-topk frontier at these support caps "
        "(e.g. 4,8,16); the exact baseline row is always included",
    )
    parser.add_argument(
        "--min-topk-tx-per-s",
        type=float,
        default=0.0,
        help="--check: throughput floor for finite-cap frontier rows",
    )
    parser.add_argument(
        "--min-topk-speedup",
        type=float,
        default=0.0,
        help="--check: required speedup of finite-cap rows vs exact",
    )
    parser.add_argument(
        "--numpy",
        action="store_true",
        help="also run the vectorized (numpy) backend twin of each "
        "eligible strategy lane, with a bit-identity gate vs python",
    )
    parser.add_argument(
        "--min-numpy-speedup",
        type=float,
        default=0.0,
        help="--check: required speedup of numpy lanes vs their python "
        "twin at every measured shard count",
    )
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":
    raise SystemExit(main())
