"""Table I spot check at 1M transactions (paper-scale workload slice).

Validates that the default-scale Table I shape holds on a workload 17x
larger; results are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import time

from repro.core.placement import make_placer
from repro.datasets.synthetic import BitcoinLikeGenerator, GeneratorConfig
from repro.partition.metis_like import partition_tan
from repro.partition.quality import cross_shard_fraction
from repro.txgraph.tan import TaNGraph

N = 1_000_000
K = 16


def main() -> None:
    start = time.time()
    config = GeneratorConfig(
        n_wallets=60_000,
        coinbase_interval=2_000,
        bootstrap_coinbase=2_000,
        burst_length=150_000,
    )
    stream = BitcoinLikeGenerator(config=config, seed=1).generate(N)
    print(f"generated {N} txs in {time.time() - start:.0f}s", flush=True)

    rows = {}
    t0 = time.time()
    tan = TaNGraph.from_transactions(stream)
    rows["metis"] = cross_shard_fraction(stream, partition_tan(tan, K))
    print(f"metis: {rows['metis']:.2%} ({time.time() - t0:.0f}s)", flush=True)
    for method in ("greedy", "t2s", "omniledger"):
        t0 = time.time()
        kwargs = {"expected_total": N} if method != "omniledger" else {}
        placer = make_placer(method, K, **kwargs)
        rows[method] = cross_shard_fraction(
            stream, placer.place_stream(stream)
        )
        print(
            f"{method}: {rows[method]:.2%} ({time.time() - t0:.0f}s)",
            flush=True,
        )
    print("paper k=16: metis 4.70 greedy 28.14 omni 94.87 t2s 15.73")


if __name__ == "__main__":
    main()
