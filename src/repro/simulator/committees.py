"""Validator-to-shard committee assignment (epochs).

§II lists three components of a sharding protocol; this module is the
first - "how to (randomly) assign nodes into shards to form shard
committees". OmniLedger derives per-epoch randomness (RandHound) and
shuffles validators into committees; RapidChain rotates a bounded subset
per epoch (Cuckoo rule). The paper holds this component fixed while
varying component three (transaction placement), and so do we: the
simulator represents a committee by its consensus-latency model. This
module exists so the representation is *derived from* an explicit
validator population rather than assumed, and so epoch churn and its
safety bounds are testable:

- deterministic seeded shuffle into balanced committees (OmniLedger
  style), or bounded per-epoch swaps (RapidChain style);
- safety accounting: given a global Byzantine fraction, the probability
  bound arguments require every committee to stay under 1/3 - the
  hypergeometric tail check here raises when a configuration is unsafe
  to simulate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError
from repro.rng import make_rng

BFT_THRESHOLD = 1.0 / 3.0


@dataclass(frozen=True, slots=True)
class Validator:
    """One committee member."""

    node_id: int
    byzantine: bool = False


@dataclass(slots=True)
class Committee:
    """A shard's validator set for one epoch."""

    shard_id: int
    members: list[Validator] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.members)

    @property
    def byzantine_fraction(self) -> float:
        """Fraction of Byzantine members."""
        if not self.members:
            return 0.0
        bad = sum(1 for member in self.members if member.byzantine)
        return bad / len(self.members)

    @property
    def is_safe(self) -> bool:
        """BFT safety: strictly fewer than 1/3 Byzantine members."""
        return self.byzantine_fraction < BFT_THRESHOLD


class CommitteeAssignment:
    """Epoch-based validator-to-shard assignment."""

    def __init__(
        self,
        n_shards: int,
        n_validators: int,
        byzantine_fraction: float = 0.0,
        seed: int = 0,
    ) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        if n_validators < n_shards:
            raise ConfigurationError(
                f"need at least one validator per shard: "
                f"{n_validators} validators for {n_shards} shards"
            )
        if not 0.0 <= byzantine_fraction < BFT_THRESHOLD:
            raise ConfigurationError(
                f"global Byzantine fraction must be in [0, 1/3), got "
                f"{byzantine_fraction}"
            )
        self.n_shards = n_shards
        self._rng = make_rng(seed)
        n_byzantine = int(n_validators * byzantine_fraction)
        # Byzantine identities are arbitrary; the shuffle below is what
        # spreads them.
        self._validators = [
            Validator(node_id=i, byzantine=(i < n_byzantine))
            for i in range(n_validators)
        ]
        self.epoch = 0
        self.committees: list[Committee] = []
        self._reshuffle()

    # -- epoch transitions --------------------------------------------------

    def next_epoch_shuffle(self) -> None:
        """OmniLedger-style epoch: full random re-assignment."""
        self.epoch += 1
        self._reshuffle()

    def next_epoch_rotate(self, swap_fraction: float = 0.1) -> None:
        """RapidChain-style epoch: swap a bounded member fraction.

        Each committee evicts ``ceil(size * swap_fraction)`` random
        members into a pool which is then redistributed randomly -
        bounded churn, so warm state (the shard's ledger slice) mostly
        stays put.
        """
        if not 0.0 < swap_fraction <= 1.0:
            raise ConfigurationError(
                f"swap_fraction must be in (0, 1], got {swap_fraction}"
            )
        self.epoch += 1
        pool: list[Validator] = []
        for committee in self.committees:
            n_out = math.ceil(committee.size * swap_fraction)
            # Cannot empty a committee.
            n_out = min(n_out, committee.size - 1)
            for _ in range(n_out):
                index = self._rng.randrange(len(committee.members))
                pool.append(committee.members.pop(index))
        self._rng.shuffle(pool)
        for offset, validator in enumerate(pool):
            committee = self.committees[offset % self.n_shards]
            committee.members.append(validator)

    # -- queries -------------------------------------------------------------

    def committee_of(self, shard_id: int) -> Committee:
        """The current committee of one shard."""
        if not 0 <= shard_id < self.n_shards:
            raise ConfigurationError(
                f"shard {shard_id} out of range [0, {self.n_shards})"
            )
        return self.committees[shard_id]

    def all_safe(self) -> bool:
        """Every committee under the BFT threshold this epoch."""
        return all(committee.is_safe for committee in self.committees)

    def require_safe(self) -> None:
        """Raise when any committee crossed the BFT threshold."""
        unsafe = [
            committee.shard_id
            for committee in self.committees
            if not committee.is_safe
        ]
        if unsafe:
            raise SimulationError(
                f"epoch {self.epoch}: committees {unsafe} exceed the 1/3 "
                f"Byzantine threshold; configuration is not safely "
                f"simulatable"
            )

    def sizes(self) -> list[int]:
        """Committee sizes (balanced within one by construction after a
        shuffle; rotation preserves totals)."""
        return [committee.size for committee in self.committees]

    # -- internals -----------------------------------------------------------

    def _reshuffle(self) -> None:
        order = list(self._validators)
        self._rng.shuffle(order)
        self.committees = [
            Committee(shard_id=s) for s in range(self.n_shards)
        ]
        for index, validator in enumerate(order):
            self.committees[index % self.n_shards].members.append(validator)


def failure_probability_bound(
    committee_size: int,
    global_byzantine_fraction: float,
) -> float:
    """Chernoff upper bound on one committee crossing 1/3 Byzantine.

    For a uniformly sampled committee of size ``n`` from a population
    with Byzantine fraction ``p < 1/3``, the probability that the sample
    fraction reaches 1/3 is at most ``exp(-n * D(1/3 || p))`` where ``D``
    is the Kullback-Leibler divergence between Bernoulli distributions -
    the standard committee-sampling safety argument sharding protocols
    rely on (OmniLedger §III). Used by tests and capacity planning.
    """
    if committee_size <= 0:
        raise ConfigurationError(
            f"committee_size must be > 0, got {committee_size}"
        )
    if not 0.0 <= global_byzantine_fraction < BFT_THRESHOLD:
        raise ConfigurationError(
            f"global fraction must be in [0, 1/3), got "
            f"{global_byzantine_fraction}"
        )
    p = global_byzantine_fraction
    if p == 0.0:
        return 0.0
    a = BFT_THRESHOLD
    divergence = a * math.log(a / p) + (1 - a) * math.log(
        (1 - a) / (1 - p)
    )
    return math.exp(-committee_size * divergence)
