"""Table III - experiment configuration.

The paper's Table III lists the simulation constants. This runner prints
the same rows for any scale next to the paper's values, making the
scaling factors explicit (DESIGN.md §4: workload, block capacity and
rates scale together).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments.configs import ExperimentScale

_PAPER = {
    "Number of transactions": "10,000,000",
    "Block size": "1 MB",
    "Transactions per block": "2,000",
    "Network bandwidth": "20 Mbps",
    "Number of shards": "4, 6, 8, 10, 12, 14, 16",
    "Transactions rate (tps)": "2000, 3000, 4000, 5000, 6000",
    "Algorithms": "OptChain, Metis k-way, OmniLedger, Greedy",
}


def run(scale: ExperimentScale) -> dict[str, str]:
    """The configuration rows for one scale."""
    sample = scale.simulation(max(scale.shard_counts), max(scale.tx_rates))
    return {
        "Number of transactions": f"{scale.n_transactions:,}",
        "Block size": f"{scale.block_size_bytes / 1_000_000:g} MB",
        "Transactions per block": f"{scale.block_capacity:,}",
        "Network bandwidth": f"{sample.bandwidth_mbps:g} Mbps",
        "Number of shards": ", ".join(
            str(k) for k in scale.shard_counts
        ),
        "Transactions rate (tps)": ", ".join(
            f"{rate:g}" for rate in scale.tx_rates
        ),
        "Algorithms": "OptChain, Metis k-way, OmniLedger, Greedy",
    }


def as_table(rows: dict[str, str], scale_name: str) -> str:
    """Paper vs scale side by side."""
    return format_table(
        ["parameter", "paper", scale_name],
        [[key, _PAPER[key], value] for key, value in rows.items()],
        title="Table III: experiment configuration",
    )


def main(scale_name: str | None = None) -> str:
    from repro.experiments.runner import scale_by_name

    scale = scale_by_name(scale_name)
    output = as_table(run(scale), scale.name)
    print(output)
    return output


if __name__ == "__main__":
    main()
