"""Quickstart: place a transaction stream with OptChain vs random.

Generates a Bitcoin-like workload, runs the OptChain placer and the
OmniLedger random-hash baseline over it, and prints the two numbers the
paper's abstract leads with: the cross-shard transaction fraction (up to
10x lower with OptChain) and the load balance across shards.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    OmniLedgerRandomPlacer,
    OptChainPlacer,
    cross_shard_fraction,
    synthetic_stream,
)
from repro.partition.quality import balance_ratio

N_TRANSACTIONS = 20_000
N_SHARDS = 16


def main() -> None:
    print(f"generating {N_TRANSACTIONS} Bitcoin-like transactions...")
    stream = synthetic_stream(N_TRANSACTIONS, seed=7)

    placers = {
        "OptChain": OptChainPlacer(N_SHARDS),
        "OmniLedger (random hash)": OmniLedgerRandomPlacer(N_SHARDS),
    }
    print(f"placing into {N_SHARDS} shards:\n")
    for name, placer in placers.items():
        assignment = placer.place_stream(stream)
        cross = cross_shard_fraction(stream, assignment)
        balance = balance_ratio(assignment, N_SHARDS)
        print(f"  {name}")
        print(f"    cross-shard transactions: {cross:.1%}")
        print(f"    load balance (max shard / ideal): {balance:.2f}")
        print()
    print(
        "OptChain groups related transactions while keeping shards "
        "balanced;\nrandom placement balances but makes almost every "
        "transaction cross-shard."
    )


if __name__ == "__main__":
    main()
