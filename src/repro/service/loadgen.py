"""Open/closed-loop load generator for the placement service.

Replays a :mod:`repro.datasets.synthetic` stream from many simulated
users, each on its own connection, each holding a round-robin deal of
the stream's chunks (:func:`repro.datasets.replay.round_robin_chunks`)
so the server's sequencer always re-merges the interleaved arrivals.

Two driving modes, the standard pair from load-testing practice:

- **closed** (default): each user submits its next chunk only after the
  previous response arrives. Offered load adapts to service capacity;
  latency measures the request/response round trip under concurrency
  ``n_users``.
- **open**: chunks are injected on a fixed wall-clock schedule derived
  from ``rate`` (transactions/second across all users), pipelined
  without waiting for responses. Offered load is independent of
  service speed, so queueing delay shows up in the latencies - the
  honest way to ask "can it sustain X tx/s?".
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.datasets.replay import round_robin_chunks
from repro.datasets.synthetic import GeneratorConfig, synthetic_stream
from repro.errors import ConfigurationError
from repro.service.client import PROTOCOLS, async_client_class
from repro.utxo.transaction import Transaction

MODES = ("closed", "open")


@dataclass(frozen=True, slots=True)
class LoadgenReport:
    """What one load-generation run measured."""

    mode: str
    #: Wire codec the run drove: "binary" (frames) or "json" (NDJSON).
    proto: str
    n_users: int
    n_txs: int
    chunk_size: int
    n_chunks: int
    elapsed_s: float
    placements_per_s: float
    #: Per-chunk request->response latency in milliseconds.
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    latency_ms_max: float
    errors: int
    #: Offered rate (tx/s) in open mode; None in closed mode.
    target_rate: float | None
    #: Transparent client retries performed across all users (retryable
    #: replies, timeouts, reconnects) - 0 when max_retries is 0.
    retries: int = 0
    #: Message of the last error a user saw (hard failure or the last
    #: retried failure); None when the run was clean.
    last_error: "str | None" = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "proto": self.proto,
            "n_users": self.n_users,
            "n_txs": self.n_txs,
            "chunk_size": self.chunk_size,
            "n_chunks": self.n_chunks,
            "elapsed_s": round(self.elapsed_s, 4),
            "placements_per_s": round(self.placements_per_s, 1),
            "latency_ms_p50": round(self.latency_ms_p50, 3),
            "latency_ms_p95": round(self.latency_ms_p95, 3),
            "latency_ms_p99": round(self.latency_ms_p99, 3),
            "latency_ms_max": round(self.latency_ms_max, 3),
            "errors": self.errors,
            "target_rate": self.target_rate,
            "retries": self.retries,
            "last_error": self.last_error,
        }

    def summary(self) -> str:
        """One human-readable block (the CLI's output)."""
        lines = [
            f"protocol:        {self.proto}",
            f"mode:            {self.mode}"
            + (
                f" (target {self.target_rate:,.0f} tx/s)"
                if self.target_rate
                else ""
            ),
            f"users:           {self.n_users}",
            f"transactions:    {self.n_txs:,} "
            f"({self.n_chunks} chunks of <= {self.chunk_size})",
            f"elapsed:         {self.elapsed_s:.2f}s",
            f"throughput:      {self.placements_per_s:,.0f} placements/s",
            f"chunk latency:   p50 {self.latency_ms_p50:.1f}ms   "
            f"p95 {self.latency_ms_p95:.1f}ms   "
            f"p99 {self.latency_ms_p99:.1f}ms   "
            f"max {self.latency_ms_max:.1f}ms",
            f"errors:          {self.errors}",
        ]
        if self.retries:
            lines.append(f"retries:         {self.retries}")
        if self.last_error:
            lines.append(f"last error:      {self.last_error}")
        return "\n".join(lines)


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * len(sorted_values))
    )
    return sorted_values[index]


async def run_loadgen_async(
    host: str = "127.0.0.1",
    port: int = 9171,
    *,
    n_txs: int = 20_000,
    n_users: int = 8,
    chunk_size: int = 256,
    mode: str = "closed",
    rate: float | None = None,
    seed: int = 1,
    config: GeneratorConfig | None = None,
    stream: Sequence[Transaction] | None = None,
    full_outputs: bool = False,
    proto: str = "binary",
    request_timeout: "float | None" = None,
    max_retries: int = 0,
    retry_backoff: float = 0.05,
) -> LoadgenReport:
    """Drive a running server; returns the measured report.

    Assumes a fresh server (the replayed stream's txids start where the
    generator's do, at 0); pass ``stream`` to replay custom workloads.
    ``proto`` picks the wire codec ("binary" by default; "json" drives
    the NDJSON compat path - the codec-comparison lane of the service
    bench).

    ``max_retries`` arms the clients' transparent retry path (jittered
    exponential backoff from ``retry_backoff``, reconnect on transport
    loss) so the generator rides out worker respawns, ``retry``
    replies, and ``overload`` shedding; ``request_timeout`` bounds each
    round trip. Retries are counted in the report, not as errors.
    """
    if mode not in MODES:
        raise ConfigurationError(
            f"mode must be one of {MODES}, got {mode!r}"
        )
    if proto not in PROTOCOLS:
        raise ConfigurationError(
            f"proto must be one of {PROTOCOLS}, got {proto!r}"
        )
    if mode == "open":
        if rate is None or rate <= 0:
            raise ConfigurationError(
                "open mode needs a positive rate (transactions/second)"
            )
    if stream is None:
        stream = synthetic_stream(n_txs, seed=seed, config=config)
    else:
        n_txs = len(stream)
    deals = round_robin_chunks(stream, n_users, chunk_size)
    n_chunks = sum(len(deal) for deal in deals)
    base_txid = stream[0].txid if stream else 0

    latencies: list[float] = []
    errors = 0
    last_error: "str | None" = None

    connect = async_client_class(proto).connect
    clients = [
        await connect(
            host,
            port,
            retries=max_retries,
            request_timeout=request_timeout,
            backoff_base=retry_backoff,
            backoff_seed=seed + index,
        )
        for index in range(n_users)
    ]
    start = time.perf_counter()

    async def closed_user(client, chunks) -> None:
        nonlocal errors, last_error
        for chunk in chunks:
            sent = time.perf_counter()
            try:
                await client.place(chunk, full_outputs)
            except Exception as exc:  # noqa: BLE001 - one failed chunk
                # is a counted error, not the end of the run.
                errors += 1
                last_error = str(exc) or type(exc).__name__
            latencies.append((time.perf_counter() - sent) * 1e3)

    async def open_user(client, chunks) -> None:
        nonlocal errors, last_error
        pending = []
        for chunk in chunks:
            due = start + (chunk[0].txid - base_txid) / rate
            delay = due - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            sent = time.perf_counter()
            future = client.place_nowait(chunk, full_outputs)

            def record(done, sent=sent) -> None:
                nonlocal errors, last_error
                latencies.append((time.perf_counter() - sent) * 1e3)
                exc = done.exception()
                if exc is not None:
                    errors += 1
                    last_error = str(exc) or type(exc).__name__
                elif not done.result().get("ok"):
                    errors += 1
                    last_error = done.result().get(
                        "error", "unknown server error"
                    )

            future.add_done_callback(record)
            pending.append(future)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    runner = closed_user if mode == "closed" else open_user
    try:
        await asyncio.gather(
            *(
                runner(client, deal)
                for client, deal in zip(clients, deals)
            )
        )
    finally:
        retries = sum(
            getattr(client, "retries_used", 0) for client in clients
        )
        if last_error is None:
            last_error = next(
                (
                    client.last_error
                    for client in clients
                    if getattr(client, "last_error", None)
                ),
                None,
            )
        for client in clients:
            await client.close()
    elapsed = time.perf_counter() - start

    latencies.sort()
    return LoadgenReport(
        mode=mode,
        proto=proto,
        n_users=n_users,
        n_txs=n_txs,
        chunk_size=chunk_size,
        n_chunks=n_chunks,
        elapsed_s=elapsed,
        placements_per_s=n_txs / elapsed if elapsed > 0 else 0.0,
        latency_ms_p50=_percentile(latencies, 0.50),
        latency_ms_p95=_percentile(latencies, 0.95),
        latency_ms_p99=_percentile(latencies, 0.99),
        latency_ms_max=latencies[-1] if latencies else 0.0,
        errors=errors,
        target_rate=rate if mode == "open" else None,
        retries=retries,
        last_error=last_error,
    )


def run_loadgen(**kwargs: Any) -> LoadgenReport:
    """Synchronous wrapper around :func:`run_loadgen_async`."""
    return asyncio.run(run_loadgen_async(**kwargs))
