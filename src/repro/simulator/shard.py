"""Shard committees: mempool queues and sequential block production.

Each shard keeps a FIFO mempool of *entries* - a same-shard transaction,
a cross-shard lock, or a cross-shard commit each occupy one block slot,
which is exactly why cross-shard transactions triple resource consumption
(§III-B). When the committee is idle and the mempool is non-empty it
immediately starts consensus on the next batch (up to ``block_capacity``
entries); block duration comes from the
:class:`~repro.simulator.consensus.ConsensusModel`. Queue size, the
paper's Fig. 6 metric, is the mempool length.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.simulator.config import SimulationConfig
from repro.simulator.consensus import ConsensusModel
from repro.simulator.events import EventQueue

# Entry kinds - each occupies one block slot.
KIND_TX = "tx"  # same-shard transaction
KIND_LOCK = "lock"  # cross-shard input lock (proof-of-acceptance source)
KIND_COMMIT = "commit"  # cross-shard unlock-to-commit at the output shard


@dataclass(frozen=True, slots=True)
class Entry:
    """One block-slot of work: (kind, transaction id)."""

    kind: str
    txid: int


class Shard:
    """One shard committee: a mempool and a sequential block pipeline."""

    def __init__(
        self,
        shard_id: int,
        config: SimulationConfig,
        consensus: ConsensusModel,
        events: EventQueue,
        on_committed: Callable[[int, Entry], None],
    ) -> None:
        self.shard_id = shard_id
        self._config = config
        self._consensus = consensus
        self._events = events
        self._on_committed = on_committed
        self._mempool: deque[Entry] = deque()
        self._busy = False
        # Stats / observer state.
        self.n_blocks = 0
        self.n_entries_committed = 0
        self.paused = False
        # EMA of completed block durations; seeded with the full-block
        # duration so the latency observer has a sane prior before the
        # first block lands.
        self.recent_block_duration = consensus.duration(
            config.block_capacity
        )

    @property
    def queue_size(self) -> int:
        """Entries waiting in the mempool (the Fig. 6 metric)."""
        return len(self._mempool)

    @property
    def busy(self) -> bool:
        """True while a block is in consensus."""
        return self._busy

    def enqueue(self, entry: Entry) -> None:
        """Add an entry to the mempool and kick the pipeline."""
        self._mempool.append(entry)
        self._maybe_start_block()

    def pause(self) -> None:
        """Failure injection: stop producing blocks (outage)."""
        self.paused = True

    def resume(self) -> None:
        """End an outage and restart the pipeline."""
        self.paused = False
        self._maybe_start_block()

    def expected_verification_time(self) -> float:
        """What a wallet would estimate: queue drain time for a new entry.

        The paper estimates ``1/lambda_v`` "from observation of recent
        consensus time of shard i and its current queue size": the queue
        ahead of a newly arriving entry, in fractional blocks, times the
        recent block duration. Continuous (not block-quantized) so the
        L2S gradient responds to small load differences instead of
        ratcheting at block boundaries.
        """
        blocks_ahead = 1.0 + (
            len(self._mempool) / self._config.block_capacity
        )
        return blocks_ahead * self.recent_block_duration

    def _maybe_start_block(self) -> None:
        if self._busy or self.paused or not self._mempool:
            return
        self._busy = True
        batch_size = min(len(self._mempool), self._config.block_capacity)
        batch = [self._mempool.popleft() for _ in range(batch_size)]
        duration = self._consensus.duration(batch_size)
        self._events.schedule(
            duration, lambda: self._commit_block(batch, duration)
        )

    def _commit_block(self, batch: list[Entry], duration: float) -> None:
        self._busy = False
        self.n_blocks += 1
        self.n_entries_committed += len(batch)
        # EMA with weight 0.3: responsive to load changes, stable under
        # alternating fill levels.
        self.recent_block_duration = (
            0.7 * self.recent_block_duration + 0.3 * duration
        )
        for entry in batch:
            self._on_committed(self.shard_id, entry)
        self._maybe_start_block()
