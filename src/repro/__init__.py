"""OptChain reproduction: optimal transaction placement for blockchain sharding.

This package is a from-scratch reproduction of *OptChain: Optimal
Transactions Placement for Scalable Blockchain Sharding* (Nguyen, Nguyen,
Dinh, Thai - ICDCS 2019). It contains:

- :mod:`repro.utxo` - the UTXO transaction model the paper builds on.
- :mod:`repro.txgraph` - the Transactions-as-Nodes (TaN) online DAG.
- :mod:`repro.datasets` - synthetic Bitcoin-like workload generation and IO.
- :mod:`repro.partition` - offline (METIS-like multilevel) and streaming
  graph partitioners used as baselines.
- :mod:`repro.core` - the paper's contribution: T2S / L2S scores, Temporal
  Fitness, and the OptChain placement algorithm plus all baselines.
- :mod:`repro.simulator` - a discrete-event sharded-blockchain simulator
  (the OverSim/OMNeT++ substitute) with the OmniLedger atomic cross-shard
  commit protocol.
- :mod:`repro.analysis` - metric post-processing shared by experiments.
- :mod:`repro.experiments` - one runner per paper table/figure.

Quickstart::

    from repro import synthetic_stream, OptChainPlacer, cross_shard_fraction

    stream = synthetic_stream(n_transactions=20_000, seed=7)
    placer = OptChainPlacer(n_shards=16)
    assignment = placer.place_stream(stream)
    print(cross_shard_fraction(stream, assignment))
"""

from repro.core.baselines import (
    GreedyPlacer,
    MetisOfflinePlacer,
    OmniLedgerRandomPlacer,
    T2SOnlyPlacer,
)
from repro.core.fitness import TemporalFitness
from repro.core.l2s import L2SEstimator, ShardLatencyModel
from repro.core.optchain import (
    USE_LOAD_PROXY,
    LoadProxyLatencyProvider,
    OptChainPlacer,
    TopKOptChainPlacer,
)
from repro.core.placement import PlacementStrategy, make_placer
from repro.core.t2s import T2SScorer, TopKT2SScorer
from repro.datasets.synthetic import BitcoinLikeGenerator, synthetic_stream
from repro.partition.quality import cross_shard_fraction, edge_cut_fraction
from repro.txgraph.tan import TaNGraph
from repro.utxo.transaction import Transaction

__version__ = "1.0.0"

__all__ = [
    "BitcoinLikeGenerator",
    "GreedyPlacer",
    "L2SEstimator",
    "MetisOfflinePlacer",
    "OmniLedgerRandomPlacer",
    "LoadProxyLatencyProvider",
    "OptChainPlacer",
    "USE_LOAD_PROXY",
    "PlacementStrategy",
    "ShardLatencyModel",
    "T2SOnlyPlacer",
    "T2SScorer",
    "TaNGraph",
    "TemporalFitness",
    "TopKOptChainPlacer",
    "TopKT2SScorer",
    "Transaction",
    "cross_shard_fraction",
    "edge_cut_fraction",
    "make_placer",
    "synthetic_stream",
    "__version__",
]
