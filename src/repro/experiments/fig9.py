"""Figure 9 - maximum transaction latency.

Paper (16 shards, 6000 tps): OptChain's worst transaction takes 100.9 s
versus 1309.5 s (OmniLedger), 1345.9 s (Metis), 628.9 s (Greedy). Same
series as Fig. 8 but with the max instead of the mean.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments.configs import ExperimentScale
from repro.experiments.fig3 import GridCell
from repro.experiments.fig3 import run as fig3_run


def run(scale: ExperimentScale, seed: int = 1) -> list[GridCell]:
    """Same grid as Fig. 3."""
    return fig3_run(scale, seed)


def max_latency_at_max_shards(
    cells: list[GridCell],
) -> dict[str, list[tuple[float, float]]]:
    """Fig. 9a series: ``rate -> max latency`` at the top shard count."""
    top = max(cell.n_shards for cell in cells)
    series: dict[str, list[tuple[float, float]]] = {}
    for cell in cells:
        if cell.n_shards != top:
            continue
        series.setdefault(cell.method, []).append(
            (cell.tx_rate, cell.max_latency)
        )
    for points in series.values():
        points.sort()
    return series


def worst_case(cells: list[GridCell]) -> dict[str, float]:
    """Fig. 9b headline: worst latency per method over the grid."""
    worst: dict[str, float] = {}
    for cell in cells:
        worst[cell.method] = max(
            worst.get(cell.method, 0.0), cell.max_latency
        )
    return worst


def as_table(cells: list[GridCell]) -> str:
    series = max_latency_at_max_shards(cells)
    methods = sorted(series)
    rates = sorted({rate for pts in series.values() for rate, _ in pts})
    rows = []
    for rate in rates:
        row: list[object] = [int(rate)]
        for method in methods:
            row.append(f"{dict(series[method])[rate]:.1f}s")
        rows.append(row)
    table = format_table(
        ["rate"] + list(methods),
        rows,
        title="Fig. 9a: maximum latency vs rate at the largest shard count",
    )
    worst = worst_case(cells)
    summary = format_table(
        ["method", "worst latency (s)"],
        [[m, f"{v:.1f}"] for m, v in sorted(worst.items())],
        title="Fig. 9b: worst case over the grid (OptChain smallest)",
    )
    return table + "\n\n" + summary


def main(scale_name: str | None = None) -> str:
    from repro.experiments.runner import scale_by_name

    output = as_table(run(scale_by_name(scale_name)))
    print(output)
    return output


if __name__ == "__main__":
    main()
