"""Rolling placement-quality drift monitor.

A capped (``cap=4``, ``cap=auto:...``) or vectorized (``backend=numpy``)
production strategy is supposed to track the exact python OptChain
policy within a small cross-shard-rate margin - that claim is bench'd
offline, but a production stream can wander into regimes the bench
never saw. :class:`DriftMonitor` measures it live:

**Shadow state.** The monitor keeps a *shadow* exact-python placer
(uncapped ``optchain``) whose history is production's history: every
committed transaction is absorbed with the production-assigned shard
(:meth:`~repro.core.placement.PlacementStrategy.force_place`), so the
shadow's ancestry vectors and load proxy describe exactly the stream
the production engine actually built. Engine truncation sweeps are
mirrored, so shadow memory obeys the same epoch/horizon policy.

**Sampled scoring.** Every ``sample_every``-th batch is *replayed*
through the exact decision path:
:meth:`~repro.core.optchain.OptChainPlacer.place_observed` scores each
transaction with the exact policy, returns the shard it would have
chosen (the one-step counterfactual against the shared history), then
adopts the production shard. Per sampled transaction the monitor
records whether production's choice and the exact choice are
cross-shard with respect to their (production-placed) parents.

**The drift signal.** Over a rolling window of sampled transactions the
monitor exports ``production_cross_rate``, ``shadow_cross_rate``, their
delta (positive = production places *worse* than the exact policy),
and a disagreement rate. When the delta exceeds ``threshold`` with at
least ``min_samples`` in the window, a breach counter increments -
alert-shaped: wire it to a rate() alarm, gate it in soak.

**Windowed (lease) mode.** Sharded workers only see their own leases,
and a respawned process has no shadow history at all. ``rebase(cursor)``
restarts the shadow at an arbitrary stream position: transactions are
fed with txids translated to a fresh dense range and inputs older than
the base dropped (a dropped parent scores as zero ancestry mass - the
same graceful degradation as the engine's horizon policy, whose
measured cost is small because spends are temporally local). Within a
lease the comparison is apples-to-apples: both policies score with the
identical truncated history.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence

from repro.core.placement import PlacementStrategy, make_placer
from repro.errors import ConfigurationError
from repro.utxo.transaction import OutPoint, Transaction

__all__ = ["DriftMonitor", "merge_drift_dicts", "shadow_method_for"]

#: Production methods the exact-python shadow can stand in for.
_SHADOW_OF = {
    "optchain": "optchain",
    "optchain-topk": "optchain",
}


def shadow_method_for(method: str) -> str:
    """Exact-reference strategy for a production method.

    Accepts a bare method name or a full spec string
    (``optchain-topk:cap=auto:0.01,backend=numpy``) - the shadow
    ignores cap and backend by construction.
    """
    base = method.split(":", 1)[0]
    try:
        return _SHADOW_OF[base]
    except KeyError:
        known = ", ".join(sorted(_SHADOW_OF))
        raise ConfigurationError(
            f"drift monitoring has no exact shadow for strategy "
            f"{base!r}; supported: {known}"
        ) from None


class DriftMonitor:
    """Sampled shadow scorer comparing production placement quality
    against the exact python path."""

    def __init__(
        self,
        n_shards: int,
        *,
        method: str = "optchain-topk",
        sample_every: int = 16,
        window: int = 20_000,
        threshold: float = 0.01,
        min_samples: int = 500,
    ) -> None:
        if sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if threshold < 0:
            raise ConfigurationError(
                f"threshold must be >= 0, got {threshold}"
            )
        self.n_shards = n_shards
        self.sample_every = sample_every
        self.window = window
        self.threshold = threshold
        self.min_samples = min_samples
        self._shadow_method = shadow_method_for(method)
        self._shadow = self._fresh_shadow()
        self._base = 0
        self._batch_index = 0
        #: Set by the engine if the monitor ever raised (detached).
        self.failed: "str | None" = None
        # Rolling window of per-sampled-batch aggregates plus their
        # running sums: (sampled, prod_cross, shadow_cross, disagreed).
        self._window: deque[tuple[int, int, int, int]] = deque()
        self._win_sampled = 0
        self._win_prod_cross = 0
        self._win_shadow_cross = 0
        self._win_disagreed = 0
        # Lifetime counters (monotonic; exported as Prometheus counters).
        self.sampled_txs_total = 0
        self.observed_txs_total = 0
        self.disagreements_total = 0
        self.breaches_total = 0
        self.rebases_total = 0

    def _fresh_shadow(self) -> PlacementStrategy:
        return make_placer(self._shadow_method, self.n_shards)

    # -- stream hooks (called by PlacementEngine) --------------------------

    def rebase(self, cursor: int) -> None:
        """Restart the shadow at stream position ``cursor``.

        Used when the monitor attaches mid-stream: at every sharded
        lease grant, after a restore-from-checkpoint, or after a worker
        respawn. History before ``cursor`` scores as zero ancestry mass
        on both sides of the comparison.
        """
        if cursor < 0:
            raise ConfigurationError(f"cursor must be >= 0, got {cursor}")
        self._shadow = self._fresh_shadow()
        self._base = cursor
        self.rebases_total += 1

    def observe_batch(
        self, txs: Sequence[Transaction], shards: Sequence[int]
    ) -> None:
        """Absorb one committed production batch (txs + chosen shards)."""
        self._batch_index += 1
        sampled = self._batch_index % self.sample_every == 0
        base = self._base
        shadow = self._shadow
        self.observed_txs_total += len(txs)
        if not sampled:
            if base == 0:
                for tx, shard in zip(txs, shards):
                    shadow.force_place(tx, shard)
            else:
                for tx, shard in zip(txs, shards):
                    shadow.force_place(self._translate(tx), shard)
            return
        n_sampled = 0
        prod_cross = 0
        shadow_cross = 0
        disagreed = 0
        assignment = shadow._assignment
        for tx, shard in zip(txs, shards):
            ttx = tx if base == 0 else self._translate(tx)
            preferred = shadow.place_observed(ttx, shard)
            n_sampled += 1
            if preferred != shard:
                disagreed += 1
            parents = ttx.input_txids
            if not parents:
                continue
            # Both policies are judged against the same (production)
            # parent placements - the one-step counterfactual.
            if any(assignment[parent] != shard for parent in parents):
                prod_cross += 1
            if any(assignment[parent] != preferred for parent in parents):
                shadow_cross += 1
        self._commit_sample(n_sampled, prod_cross, shadow_cross, disagreed)

    def _translate(self, tx: Transaction) -> Transaction:
        """Shift ``tx`` into the shadow's dense range, dropping inputs
        that reference history before the base."""
        base = self._base
        inputs = tuple(
            OutPoint(outpoint.txid - base, outpoint.index)
            for outpoint in tx.inputs
            if outpoint.txid >= base
        )
        return Transaction(
            txid=tx.txid - base,
            inputs=inputs,
            outputs=tx.outputs,
            timestamp=tx.timestamp,
            size_bytes=tx.size_bytes,
            fee=tx.fee,
        )

    def release_vectors(self, txids) -> None:
        """Mirror an engine truncation sweep into the shadow scorer."""
        scorer = getattr(self._shadow, "scorer", None)
        if scorer is None:
            return
        base = self._base
        if base:
            txids = [txid - base for txid in txids if txid >= base]
        scorer.release_vectors(txids)

    # -- window bookkeeping ------------------------------------------------

    def _commit_sample(
        self, sampled: int, prod_cross: int, shadow_cross: int, disagreed: int
    ) -> None:
        if not sampled:
            return
        self._window.append((sampled, prod_cross, shadow_cross, disagreed))
        self._win_sampled += sampled
        self._win_prod_cross += prod_cross
        self._win_shadow_cross += shadow_cross
        self._win_disagreed += disagreed
        self.sampled_txs_total += sampled
        self.disagreements_total += disagreed
        while (
            len(self._window) > 1
            and self._win_sampled - self._window[0][0] >= self.window
        ):
            old = self._window.popleft()
            self._win_sampled -= old[0]
            self._win_prod_cross -= old[1]
            self._win_shadow_cross -= old[2]
            self._win_disagreed -= old[3]
        if self._win_sampled >= self.min_samples and (
            self.delta > self.threshold
        ):
            self.breaches_total += 1

    # -- exported signal ---------------------------------------------------

    @property
    def production_cross_rate(self) -> float:
        if not self._win_sampled:
            return 0.0
        return self._win_prod_cross / self._win_sampled

    @property
    def shadow_cross_rate(self) -> float:
        if not self._win_sampled:
            return 0.0
        return self._win_shadow_cross / self._win_sampled

    @property
    def delta(self) -> float:
        """Positive = production cross-shard rate exceeds the exact
        policy's over the current window."""
        return self.production_cross_rate - self.shadow_cross_rate

    @property
    def disagreement_rate(self) -> float:
        if not self._win_sampled:
            return 0.0
        return self._win_disagreed / self._win_sampled

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe wire/stats form (merged by the coordinator)."""
        return {
            "window_sampled": self._win_sampled,
            "window_prod_cross": self._win_prod_cross,
            "window_shadow_cross": self._win_shadow_cross,
            "window_disagreed": self._win_disagreed,
            "sampled_txs_total": self.sampled_txs_total,
            "observed_txs_total": self.observed_txs_total,
            "disagreements_total": self.disagreements_total,
            "breaches_total": self.breaches_total,
            "rebases_total": self.rebases_total,
            "threshold": self.threshold,
            "failed": self.failed,
        }


def merge_drift_dicts(dicts: "list[dict[str, Any]]") -> dict[str, Any]:
    """Fold per-partition drift dicts into one service-level view.

    Window aggregates and lifetime counters are additive; rates derive
    from the merged window (sample-count weighted, i.e. the rate over
    the union of sampled transactions).
    """
    keys = (
        "window_sampled",
        "window_prod_cross",
        "window_shadow_cross",
        "window_disagreed",
        "sampled_txs_total",
        "observed_txs_total",
        "disagreements_total",
        "breaches_total",
        "rebases_total",
    )
    merged: dict[str, Any] = {key: 0 for key in keys}
    merged["threshold"] = 0.0
    merged["failed"] = None
    for data in dicts:
        if not data:
            continue
        for key in keys:
            merged[key] += int(data.get(key, 0))
        merged["threshold"] = max(
            merged["threshold"], float(data.get("threshold", 0.0))
        )
        if data.get("failed") and merged["failed"] is None:
            merged["failed"] = data["failed"]
    sampled = merged["window_sampled"]
    merged["production_cross_rate"] = (
        merged["window_prod_cross"] / sampled if sampled else 0.0
    )
    merged["shadow_cross_rate"] = (
        merged["window_shadow_cross"] / sampled if sampled else 0.0
    )
    merged["delta"] = (
        merged["production_cross_rate"] - merged["shadow_cross_rate"]
    )
    merged["disagreement_rate"] = (
        merged["window_disagreed"] / sampled if sampled else 0.0
    )
    return merged
