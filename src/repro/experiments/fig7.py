"""Figure 7 - queue-size ratio (max/min) over time.

The temporal-balance metric: Metis and Greedy show huge or infinite
ratios (idle shards while others drown); OptChain and OmniLedger stay
near 1. Infinite ratios (min queue = 0 while max > 0) are reported as
``inf`` and summarized by their frequency.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.analysis.timeseries import queue_ratio_series
from repro.experiments.configs import ExperimentScale
from repro.experiments.runner import METHODS, simulate


def run(
    scale: ExperimentScale, seed: int = 1
) -> dict[str, list[tuple[float, float]]]:
    """(time, max/min ratio) series per method at the top config."""
    n_shards = max(scale.shard_counts)
    tx_rate = max(scale.tx_rates)
    series: dict[str, list[tuple[float, float]]] = {}
    for method in METHODS:
        result = simulate(scale, method, n_shards, tx_rate, seed)
        series[method] = queue_ratio_series(
            result.queue_sample_times, result.queue_samples
        )
    return series


def summarize(series: list[tuple[float, float]]) -> dict[str, float]:
    """Median finite ratio and the share of unbalanced samples."""
    finite = sorted(r for _, r in series if r != float("inf"))
    infinite = sum(1 for _, r in series if r == float("inf"))
    median = finite[len(finite) // 2] if finite else float("inf")
    return {
        "median_ratio": median,
        "fraction_idle_shard": infinite / len(series) if series else 0.0,
    }


def as_table(series: dict[str, list[tuple[float, float]]]) -> str:
    rows = []
    for method in sorted(series):
        stats = summarize(series[method])
        rows.append(
            [
                method,
                f"{stats['median_ratio']:.1f}",
                f"{stats['fraction_idle_shard']:.1%}",
            ]
        )
    return format_table(
        ["method", "median max/min ratio", "samples with an idle shard"],
        rows,
        title="Fig. 7: queue-size ratio (OptChain lowest in the paper)",
    )


def main(scale_name: str | None = None) -> str:
    from repro.experiments.runner import scale_by_name

    output = as_table(run(scale_by_name(scale_name)))
    print(output)
    return output


if __name__ == "__main__":
    main()
