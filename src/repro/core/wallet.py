"""SPV-style wallet integration - the paper's practicality claim (§I).

OptChain is designed to run inside user wallets *without* the full
transaction history: "as computing the T2S score only requires the
information on the input txs, it can be done efficiently at the user
side by modifying the existing Simple Payment Verification protocol".

This module splits Algorithm 1 across that trust boundary:

- :class:`ShardDirectory` is the network side - the state a (sharded)
  full-node population collectively maintains: one small record per
  transaction (its shard, unnormalized T2S vector, spender count) plus
  per-shard placement counts. Wallets query it per *input transaction*.
- :class:`SPVWallet` is the user side - it makes the placement decision
  from ``|Nin(u)|`` directory lookups plus its own latency observations,
  never touching any other part of the chain. ``n_queries`` exposes the
  communication cost, which tests pin to exactly ``|Nin(u)|`` lookups
  per transaction (plus one shard-size read), the paper's "lightweight"
  property.

The wallet's decisions are bit-for-bit identical to the monolithic
:class:`~repro.core.optchain.OptChainPlacer` given the same latency
models (tested), so every experiment result transfers to the
decentralized deployment unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.fitness import PAPER_LATENCY_WEIGHT, TemporalFitness
from repro.core.l2s import L2SEstimator, ShardLatencyModel
from repro.core.optchain import LatencyProvider, LoadProxyLatencyProvider
from repro.core.placement import PlacementStrategy
from repro.errors import ConfigurationError, PlacementError
from repro.utxo.transaction import Transaction

_PRUNE_EPSILON = 1e-12  # matches T2SScorer's default


@dataclass(frozen=True, slots=True)
class ParentView:
    """What a shard server returns for one input-transaction query."""

    shard: int
    p_prime: dict[int, float]
    spender_count: int


@dataclass(slots=True)
class _Record:
    shard: int
    p_prime: dict[int, float]
    spender_count: int


class ShardDirectory:
    """Network-side per-transaction records, queryable by wallets.

    ``parent_view`` registers the caller as a new spender before
    answering (the query *is* the spend announcement), so the returned
    count already includes the in-flight transaction - the same
    semantics as the incremental scorer's ``|Nout(v)|``.
    """

    def __init__(self, n_shards: int) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        self.n_shards = n_shards
        self._records: dict[int, _Record] = {}
        self._sizes = [0] * n_shards
        self.n_parent_queries = 0
        self.n_size_queries = 0

    def parent_view(self, txid: int) -> ParentView:
        """Record of one input transaction (registers the spend)."""
        record = self._records.get(txid)
        if record is None:
            raise PlacementError(
                f"directory has no record of transaction {txid}"
            )
        record.spender_count += 1
        self.n_parent_queries += 1
        return ParentView(
            shard=record.shard,
            p_prime=dict(record.p_prime),
            spender_count=record.spender_count,
        )

    def shard_sizes(self) -> list[int]:
        """Current per-shard placement counts (one lightweight query)."""
        self.n_size_queries += 1
        return list(self._sizes)

    def announce(
        self, txid: int, shard: int, p_prime: dict[int, float]
    ) -> None:
        """Publish a placed transaction's record."""
        if txid in self._records:
            raise PlacementError(f"transaction {txid} announced twice")
        if not 0 <= shard < self.n_shards:
            raise PlacementError(
                f"shard {shard} out of range [0, {self.n_shards})"
            )
        self._records[txid] = _Record(
            shard=shard, p_prime=dict(p_prime), spender_count=0
        )
        self._sizes[shard] += 1

    @property
    def n_records(self) -> int:
        """Transactions known to the directory."""
        return len(self._records)


class SPVWallet:
    """User-side OptChain: decides placements from directory lookups."""

    def __init__(
        self,
        directory: ShardDirectory,
        alpha: float = 0.5,
        latency_weight: float = PAPER_LATENCY_WEIGHT,
        l2s_mode: str = "shard_load",
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.directory = directory
        self.alpha = alpha
        self.fitness = TemporalFitness(latency_weight=latency_weight)
        self.l2s_mode = l2s_mode
        self.n_submitted = 0

    def decide_and_submit(
        self,
        tx: Transaction,
        latency_models: Sequence[ShardLatencyModel],
    ) -> int:
        """Run Algorithm 1 for one transaction; returns the chosen shard.

        Queries the directory once per distinct input transaction,
        computes ``p'(u)`` and the Temporal Fitness locally, announces
        the placement, and returns the shard.
        """
        if len(latency_models) != self.directory.n_shards:
            raise ConfigurationError(
                f"{len(latency_models)} latency models for "
                f"{self.directory.n_shards} shards"
            )
        views = [
            self.directory.parent_view(parent)
            for parent in tx.input_txids
        ]
        p_prime: dict[int, float] = {}
        scale = 1.0 - self.alpha
        if scale > 0.0:
            for view in views:
                if not view.p_prime:
                    continue
                factor = scale / view.spender_count
                for shard, mass in view.p_prime.items():
                    p_prime[shard] = (
                        p_prime.get(shard, 0.0) + mass * factor
                    )
        if p_prime:
            p_prime = {
                shard: mass
                for shard, mass in p_prime.items()
                if mass > _PRUNE_EPSILON
            }
        sizes = self.directory.shard_sizes()
        t2s = {
            shard: mass / max(1, sizes[shard])
            for shard, mass in p_prime.items()
        }
        estimator = L2SEstimator(latency_models, mode=self.l2s_mode)
        input_shards = {view.shard for view in views}
        l2s = estimator.scores_all(input_shards)
        shard = self.fitness.best_shard(t2s, l2s)
        p_prime[shard] = p_prime.get(shard, 0.0) + self.alpha
        self.directory.announce(tx.txid, shard, p_prime)
        self.n_submitted += 1
        return shard


class SPVWalletPlacer(PlacementStrategy):
    """The SPV wallet wrapped as a placement strategy.

    Lets the decentralized wallet+directory deployment run anywhere a
    placer does - including inside the simulator, where the engine wires
    its latency provider to the live queue observer exactly as it does
    for :class:`~repro.core.optchain.OptChainPlacer`.
    """

    name = "spv"

    def __init__(
        self,
        n_shards: int,
        alpha: float = 0.5,
        latency_weight: float = PAPER_LATENCY_WEIGHT,
        l2s_mode: str = "shard_load",
    ) -> None:
        super().__init__(n_shards)
        self.directory = ShardDirectory(n_shards)
        self.wallet = SPVWallet(
            self.directory,
            alpha=alpha,
            latency_weight=latency_weight,
            l2s_mode=l2s_mode,
        )
        self._proxy: LoadProxyLatencyProvider | None = (
            LoadProxyLatencyProvider(n_shards)
        )
        self.latency_provider: LatencyProvider = self._proxy

    def use_latency_provider(self, provider: LatencyProvider) -> None:
        """Swap in a live latency source (the simulator's observer)."""
        self._proxy = None
        self.latency_provider = provider

    def _choose(self, tx: Transaction) -> int:
        shard = self.wallet.decide_and_submit(tx, self.latency_provider())
        if self._proxy is not None:
            self._proxy.record(shard)
        return shard

    def _on_forced(self, tx: Transaction, shard: int) -> None:
        # Warm starts: replay the decision's directory effects without
        # the wallet's scoring.
        views = [
            self.directory.parent_view(parent)
            for parent in tx.input_txids
        ]
        p_prime: dict[int, float] = {}
        scale = 1.0 - self.wallet.alpha
        for view in views:
            factor = scale / view.spender_count
            for target, mass in view.p_prime.items():
                p_prime[target] = p_prime.get(target, 0.0) + mass * factor
        p_prime[shard] = p_prime.get(shard, 0.0) + self.wallet.alpha
        self.directory.announce(tx.txid, shard, p_prime)
        if self._proxy is not None:
            self._proxy.record(shard)
