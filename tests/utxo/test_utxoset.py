"""Unit tests for the UTXO set."""

from __future__ import annotations

import pytest

from repro.errors import DoubleSpendError, UnknownOutputError, ValidationError
from repro.utxo.transaction import OutPoint, Transaction, TxOutput
from repro.utxo.utxoset import UTXOSet


def coinbase(txid, value=100, address=0):
    return Transaction(
        txid=txid, inputs=(), outputs=(TxOutput(value, address),)
    )


def spend(txid, outpoints, values):
    return Transaction(
        txid=txid,
        inputs=tuple(OutPoint(t, i) for t, i in outpoints),
        outputs=tuple(TxOutput(v) for v in values),
    )


class TestApply:
    def test_coinbase_creates_outputs(self):
        utxos = UTXOSet()
        utxos.apply(coinbase(0))
        assert OutPoint(0, 0) in utxos
        assert len(utxos) == 1
        assert utxos.value_of(OutPoint(0, 0)) == 100

    def test_spend_consumes_and_creates(self):
        utxos = UTXOSet()
        utxos.apply(coinbase(0))
        utxos.apply(spend(1, [(0, 0)], [60, 40]))
        assert OutPoint(0, 0) not in utxos
        assert utxos.value_of(OutPoint(1, 0)) == 60
        assert utxos.value_of(OutPoint(1, 1)) == 40
        assert utxos.spender_of(OutPoint(0, 0)) == 1

    def test_double_spend_rejected(self):
        utxos = UTXOSet()
        utxos.apply(coinbase(0))
        utxos.apply(spend(1, [(0, 0)], [100]))
        with pytest.raises(DoubleSpendError):
            utxos.apply(spend(2, [(0, 0)], [100]))

    def test_internal_double_spend_rejected(self):
        utxos = UTXOSet()
        utxos.apply(coinbase(0))
        with pytest.raises(DoubleSpendError):
            utxos.apply(spend(1, [(0, 0), (0, 0)], [100]))

    def test_unknown_output_rejected(self):
        utxos = UTXOSet()
        with pytest.raises(UnknownOutputError):
            utxos.apply(spend(1, [(0, 0)], [100]))

    def test_replay_rejected(self):
        utxos = UTXOSet()
        utxos.apply(coinbase(0))
        with pytest.raises(ValidationError):
            utxos.apply(coinbase(0))

    def test_rejection_does_not_mutate(self):
        utxos = UTXOSet()
        utxos.apply(coinbase(0))
        bad = spend(1, [(0, 0), (9, 0)], [100])
        with pytest.raises(UnknownOutputError):
            utxos.apply(bad)
        # The valid input must not have been consumed by the failed apply.
        assert OutPoint(0, 0) in utxos
        assert utxos.n_applied == 1

    def test_apply_all(self):
        utxos = UTXOSet()
        utxos.apply_all([coinbase(0), spend(1, [(0, 0)], [100])])
        assert utxos.n_applied == 2


class TestQueries:
    def test_counts(self):
        utxos = UTXOSet()
        utxos.apply(coinbase(0))
        utxos.apply(spend(1, [(0, 0)], [50, 50]))
        assert len(utxos) == 2
        assert utxos.n_spent == 1
        assert utxos.n_applied == 2

    def test_value_of_spent_raises_double_spend(self):
        utxos = UTXOSet()
        utxos.apply(coinbase(0))
        utxos.apply(spend(1, [(0, 0)], [100]))
        with pytest.raises(DoubleSpendError):
            utxos.value_of(OutPoint(0, 0))

    def test_address_of(self):
        utxos = UTXOSet()
        utxos.apply(coinbase(0, address=42))
        assert utxos.address_of(OutPoint(0, 0)) == 42

    def test_snapshot_is_copy(self):
        utxos = UTXOSet()
        utxos.apply(coinbase(0))
        snapshot = utxos.snapshot_unspent()
        snapshot.clear()
        assert len(utxos) == 1

    def test_iteration(self):
        utxos = UTXOSet()
        utxos.apply(coinbase(0))
        assert list(utxos) == [OutPoint(0, 0)]
