"""Wire codecs for the placement service: NDJSON and binary frames.

Two interchangeable codecs share one request/response model. The server
sniffs the first byte of each connection (:data:`BIN_MAGIC` vs anything
else) and speaks whichever protocol the client opened with, so old JSON
clients and new binary clients coexist on one port.

**NDJSON** (protocol 1, the compat codec): one request or response per
line. Every request carries an ``op`` and a client-chosen ``id`` that
the response echoes, so clients may pipeline.

Transactions travel in a compact array form::

    [txid, [[parent_txid, output_index], ...], n_outputs]

``n_outputs`` may instead be a list of ``[value, address]`` pairs
(``encode_tx(..., full_outputs=True)``) when output *content* matters -
placement itself only reads the output count, but hash-based strategies
(``omniledger``) fold output values into the transaction digest, so
replaying through the wire with bare counts would change their
placements. OptChain and the capped baselines are count-only.

Requests::

    {"op": "place",      "id": 1, "txs": [...]}        -> {"id": 1, "ok": true, "shards": [...]}
    {"op": "stats",      "id": 2}                      -> {"id": 2, "ok": true, "stats": {...}}
    {"op": "checkpoint", "id": 3, "path": "x.snap"?}   -> {"id": 3, "ok": true, "path": ..., "bytes": n}
    {"op": "ping",       "id": 4}                      -> {"id": 4, "ok": true, "n_placed": n}
    {"op": "shutdown",   "id": 5}                      -> {"id": 5, "ok": true}  (then drain + close)

Errors: ``{"id": ..., "ok": false, "error": "...", "code": "protocol" |
"engine" | "shutdown"}``. Protocol errors are the client's fault (bad
JSON, unknown op, oversized batch); engine errors are serving-contract
violations (out-of-order txids, double spends) - both leave the server
serving.

**Binary frames** (protocol 2, the fast codec). The JSON socket path is
codec-bound (~31k placements/s against ~105k in-process - see
PERFORMANCE.md "Serving"): every transaction pays ``json.loads`` plus
per-element type checks. The binary codec moves the bulk payload into
packed typed arrays decoded at C speed, and puts the routing facts (op,
request id, first txid, batch length) at fixed offsets so a front-end
can route a ``place`` request **without decoding its payload at all**
(:func:`peek_place_header` - how the sharded coordinator stays thin).

Frame layout (everything little-endian)::

    1 byte   magic 0xF5
    1 byte   kind (request op, or response status with bit 7 set)
    8 bytes  request id u64 (echoed by the response)
    4 bytes  payload length u32
    N bytes  payload

``place`` payload::

    13 bytes  first_txid u64, n_txs u32, flags u8 (bit 0: full outputs)
    array u32[n_txs]    inputs per transaction
    array u32[n_txs]    outputs per transaction
    (full outputs only)
    array i64[sum outs] output values
    array i64[sum outs] output addresses
    array u64[sum ins]  parent txids, concatenated
    array u32[sum ins]  output indexes, concatenated

Txids inside one request are implicitly dense (``first_txid + i``), so
contiguity - which :func:`decode_batch` must check entry by entry on
the JSON path - holds by construction. Control ops (``stats``,
``checkpoint``, ``ping``, ``shutdown``) carry a small JSON object (or
nothing); they are not hot. Responses: a ``shards`` payload is one
packed i32 array, a JSON payload is the response object minus the
``id`` (which travels in the header), an error payload is the UTF-8
message with the code in the kind byte. Both codecs surface the same
response dict shape, so client error mapping is shared.
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from typing import Any, Sequence

from repro.errors import ProtocolError, ValidationError
from repro.utxo.transaction import OutPoint, Transaction, TxOutput

#: Wire-format/protocol revision, echoed by ``ping``. 2 = binary frames
#: available (NDJSON remains accepted on the same port).
PROTOCOL_VERSION = 2

#: Output-count ceiling per transaction: far above any real workload
#: (the generator's exchange payouts top out at 40) while keeping a
#: hostile count from ballooning the decoded tuple and the engine's
#: per-output spend bitmask.
MAX_OUTPUTS_PER_TX = 65_536

OPS = ("place", "stats", "checkpoint", "ping", "shutdown")


def encode_tx(tx: Transaction, full_outputs: bool = False) -> list[Any]:
    """Compact array form of one transaction."""
    outputs: Any
    if full_outputs:
        outputs = [[out.value, out.address] for out in tx.outputs]
    else:
        outputs = len(tx.outputs)
    return [
        tx.txid,
        [[op.txid, op.index] for op in tx.inputs],
        outputs,
    ]


def decode_tx(obj: Any) -> Transaction:
    """Rebuild a :class:`Transaction` from the wire form.

    Raises :class:`~repro.errors.ProtocolError` on malformed input; the
    message is safe to echo back to the client.
    """
    if not isinstance(obj, (list, tuple)) or len(obj) != 3:
        raise ProtocolError(
            "transaction must be [txid, inputs, outputs], got "
            f"{type(obj).__name__}"
        )
    txid, inputs, outputs = obj
    if not isinstance(txid, int) or isinstance(txid, bool) or txid < 0:
        raise ProtocolError(f"txid must be a non-negative int, got {txid!r}")
    if not isinstance(inputs, (list, tuple)):
        raise ProtocolError("inputs must be a list of [txid, index] pairs")
    decoded_inputs = []
    for entry in inputs:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or not isinstance(entry[0], int)
            or not isinstance(entry[1], int)
            or isinstance(entry[0], bool)
            or isinstance(entry[1], bool)
            or entry[0] < 0
            or entry[1] < 0
        ):
            raise ProtocolError(
                f"input must be [parent_txid, output_index], got {entry!r}"
            )
        decoded_inputs.append(OutPoint(entry[0], entry[1]))
    if isinstance(outputs, int) and not isinstance(outputs, bool):
        if not 0 <= outputs <= MAX_OUTPUTS_PER_TX:
            raise ProtocolError(
                f"n_outputs must be in [0, {MAX_OUTPUTS_PER_TX}], "
                f"got {outputs}"
            )
        decoded_outputs = zero_outputs(outputs)
    elif isinstance(outputs, (list, tuple)):
        if len(outputs) > MAX_OUTPUTS_PER_TX:
            raise ProtocolError(
                f"transaction has {len(outputs)} outputs; the limit "
                f"is {MAX_OUTPUTS_PER_TX}"
            )
        decoded = []
        for entry in outputs:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not isinstance(entry[0], int)
                or not isinstance(entry[1], int)
            ):
                raise ProtocolError(
                    f"output must be [value, address], got {entry!r}"
                )
            decoded.append(TxOutput(value=entry[0], address=entry[1]))
        decoded_outputs = tuple(decoded)
    else:
        raise ProtocolError(
            "outputs must be an int count or a list of [value, address]"
        )
    return Transaction(
        txid=txid, inputs=tuple(decoded_inputs), outputs=decoded_outputs
    )


def decode_batch(objs: Any) -> list[Transaction]:
    """Decode a ``place`` payload; enforces a contiguous txid run.

    The server's reorder buffer keys each request by its first txid and
    merges contiguous runs, so a request with internal gaps could never
    be dispatched - rejected here with a precise message instead.
    """
    if not isinstance(objs, (list, tuple)):
        raise ProtocolError("txs must be a list")
    if not objs:
        raise ProtocolError("txs must not be empty")
    batch = [decode_tx(entry) for entry in objs]
    first = batch[0].txid
    for index, tx in enumerate(batch):
        if tx.txid != first + index:
            raise ProtocolError(
                f"txs must form a contiguous txid run: position {index} "
                f"has txid {tx.txid}, expected {first + index}"
            )
    return batch


def encode_batch(
    txs: Sequence[Transaction], full_outputs: bool = False
) -> list[list[Any]]:
    """Encode a batch for a ``place`` request."""
    return [encode_tx(tx, full_outputs) for tx in txs]


# -- binary frames ---------------------------------------------------------

#: First byte of every binary frame. NDJSON requests start with a
#: printable character (``{``), so one sniffed byte routes a connection.
BIN_MAGIC = 0xF5

#: Frame header: magic u8, kind u8, request id u64, payload length u32.
_HEADER = struct.Struct("<BBQI")
FRAME_HEADER_BYTES = _HEADER.size

#: ``place`` payload prefix: first_txid u64, n_txs u32, flags u8.
_PLACE_HEADER = struct.Struct("<QIB")
PLACE_HEADER_BYTES = _PLACE_HEADER.size

#: Hard ceiling on one frame's payload (matches the NDJSON line limit).
MAX_FRAME_BYTES = 8 * 1024 * 1024

# Request kinds (the op byte). Kinds >= 0x10 are reserved for the
# inter-worker channel of the sharded service (see service.coordinator).
KIND_PLACE = 0x01
KIND_STATS = 0x02
KIND_CHECKPOINT = 0x03
KIND_PING = 0x04
KIND_SHUTDOWN = 0x05

_KIND_TO_OP = {
    KIND_PLACE: "place",
    KIND_STATS: "stats",
    KIND_CHECKPOINT: "checkpoint",
    KIND_PING: "ping",
    KIND_SHUTDOWN: "shutdown",
}
_OP_TO_KIND = {op: kind for kind, op in _KIND_TO_OP.items()}

#: Bit 7 marks a response frame; low bits carry the status.
RESPONSE_FLAG = 0x80
STATUS_SHARDS = 0x01
STATUS_JSON = 0x02
STATUS_ERROR_PROTOCOL = 0x03
STATUS_ERROR_ENGINE = 0x04
STATUS_ERROR_SHUTDOWN = 0x05
STATUS_ERROR_RETRY = 0x06
STATUS_ERROR_OVERLOAD = 0x07

_STATUS_TO_CODE = {
    STATUS_ERROR_PROTOCOL: "protocol",
    STATUS_ERROR_ENGINE: "engine",
    STATUS_ERROR_SHUTDOWN: "shutdown",
    STATUS_ERROR_RETRY: "retry",
    STATUS_ERROR_OVERLOAD: "overload",
}
_CODE_TO_STATUS = {code: status for status, code in _STATUS_TO_CODE.items()}

_LITTLE_ENDIAN = sys.byteorder == "little"


def _packed(typecode: str, values) -> bytes:
    """Little-endian bytes of one typed array (byteswapped on BE hosts)."""
    data = array(typecode, values)
    if not _LITTLE_ENDIAN:  # pragma: no cover - no BE host in CI
        data.byteswap()
    return data.tobytes()


class _ArrayReader:
    """Sequential typed-array sections out of one payload buffer."""

    __slots__ = ("_buf", "_offset")

    def __init__(self, buf: bytes, offset: int) -> None:
        self._buf = buf
        self._offset = offset

    def take(self, typecode: str, count: int) -> array:
        data = array(typecode)
        nbytes = count * data.itemsize
        end = self._offset + nbytes
        chunk = self._buf[self._offset : end]
        if len(chunk) != nbytes:
            raise ProtocolError(
                f"place payload truncated: wanted {nbytes} bytes for "
                f"{count} '{typecode}' entries, had {len(chunk)}"
            )
        data.frombytes(chunk)
        if not _LITTLE_ENDIAN:  # pragma: no cover - no BE host in CI
            data.byteswap()
        self._offset = end
        return data

    def done(self) -> None:
        if self._offset != len(self._buf):
            raise ProtocolError(
                f"place payload has {len(self._buf) - self._offset} "
                "trailing bytes"
            )


def encode_frame(kind: int, request_id: int, payload: bytes = b"") -> bytes:
    """One complete binary frame."""
    return _HEADER.pack(BIN_MAGIC, kind, request_id, len(payload)) + payload


def decode_frame_header(header: bytes) -> tuple[int, int, int]:
    """``(kind, request_id, payload_length)`` of one frame header.

    Raises :class:`~repro.errors.ProtocolError` on a bad magic byte or
    an oversized payload - the framing is unrecoverable either way.
    """
    magic, kind, request_id, length = _HEADER.unpack(header)
    if magic != BIN_MAGIC:
        raise ProtocolError(
            f"bad frame magic 0x{magic:02x} (expected 0x{BIN_MAGIC:02x})"
        )
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {length} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return kind, request_id, length


async def read_frame(reader, *, first_byte: bytes = b""):
    """Read one frame from an asyncio stream.

    Returns ``(kind, request_id, payload)``, or ``None`` on clean EOF at
    a frame boundary. ``first_byte`` re-injects the protocol-sniffing
    byte the connection handler already consumed.
    """
    header = first_byte
    try:
        header += await reader.readexactly(
            FRAME_HEADER_BYTES - len(header)
        )
    except EOFError as exc:
        # asyncio raises IncompleteReadError (an EOFError) with the
        # partial read attached; mid-header EOF is a protocol error,
        # boundary EOF (nothing of the frame read at all) is a clean
        # close.
        if not first_byte and not getattr(exc, "partial", b""):
            return None
        raise ProtocolError("connection closed inside a frame header")
    kind, request_id, length = decode_frame_header(header)
    try:
        payload = await reader.readexactly(length) if length else b""
    except EOFError:
        raise ProtocolError("connection closed inside a frame payload")
    return kind, request_id, payload


def op_of_kind(kind: int) -> str:
    """Request-op name of a kind byte (raises on unknown/response kinds)."""
    try:
        return _KIND_TO_OP[kind]
    except KeyError:
        raise ProtocolError(f"unknown frame kind 0x{kind:02x}")


def encode_place_request(
    request_id: int, txs: Sequence[Transaction], full_outputs: bool = False
) -> bytes:
    """A complete ``place`` frame for a contiguous batch."""
    if not txs:
        raise ProtocolError("txs must not be empty")
    first = txs[0].txid
    n_inputs = array("I")
    n_outputs = array("I")
    parents = array("Q")
    indexes = array("I")
    for tx in txs:
        n_inputs.append(len(tx.inputs))
        n_outputs.append(len(tx.outputs))
        for outpoint in tx.inputs:
            parents.append(outpoint.txid)
            indexes.append(outpoint.index)
    sections = [
        _PLACE_HEADER.pack(first, len(txs), 1 if full_outputs else 0),
        _packed("I", n_inputs),
        _packed("I", n_outputs),
    ]
    if full_outputs:
        try:
            sections.append(
                _packed(
                    "q", (out.value for tx in txs for out in tx.outputs)
                )
            )
            sections.append(
                _packed(
                    "q", (out.address for tx in txs for out in tx.outputs)
                )
            )
        except OverflowError:
            raise ProtocolError(
                "output value/address exceeds the binary codec's i64 "
                "range; use the JSON protocol for this stream"
            )
    sections.append(_packed("Q", parents))
    sections.append(_packed("I", indexes))
    payload = b"".join(sections)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"place payload of {len(payload)} bytes exceeds "
            f"{MAX_FRAME_BYTES}; split the batch"
        )
    return encode_frame(KIND_PLACE, request_id, payload)


def peek_place_header(payload: bytes) -> tuple[int, int]:
    """``(first_txid, n_txs)`` without decoding the payload.

    This is the whole point of the fixed prefix: a routing front-end
    sequences and forwards ``place`` requests by their txid range while
    the owning worker pays the actual decode.
    """
    if len(payload) < PLACE_HEADER_BYTES:
        raise ProtocolError(
            f"place payload of {len(payload)} bytes is shorter than "
            f"its {PLACE_HEADER_BYTES}-byte header"
        )
    first, n_txs, _flags = _PLACE_HEADER.unpack_from(payload)
    if n_txs == 0:
        raise ProtocolError("txs must not be empty")
    return first, n_txs


# Count-only outputs carry no content, and TxOutput is immutable, so
# every decoded transaction with n zero-value outputs can share one
# tuple. Saves ~2 object constructions per transaction on the serving
# hot path; bounded by MAX_OUTPUTS_PER_TX. Grown one step at a time on
# demand (real workloads top out at a few dozen outputs).
_ZERO_OUTPUT = TxOutput(0)
_ZERO_OUTPUT_TUPLES: list[tuple[TxOutput, ...]] = [()]


def zero_outputs(count: int) -> tuple[TxOutput, ...]:
    """Shared tuple of ``count`` zero-value outputs (both codecs)."""
    cache = _ZERO_OUTPUT_TUPLES
    while len(cache) <= count:
        cache.append(cache[-1] + (_ZERO_OUTPUT,))
    return cache[count]


def decode_place_payload(payload: bytes) -> list[Transaction]:
    """Rebuild the transaction batch of one ``place`` payload.

    Txids are assigned densely from the header's ``first_txid``;
    contiguity therefore holds by construction (the property
    :func:`decode_batch` checks pairwise on the JSON path). This is the
    server's per-transaction decode path, written for C-level bulk
    operations: one ``map`` constructs every outpoint, inputs come out
    as list slices, and count-only outputs are shared tuples - the
    Python-level loop runs once per *transaction*, not per element.
    """
    if len(payload) < PLACE_HEADER_BYTES:
        raise ProtocolError(
            f"place payload of {len(payload)} bytes is shorter than "
            f"its {PLACE_HEADER_BYTES}-byte header"
        )
    first, n_txs, flags = _PLACE_HEADER.unpack_from(payload)
    if n_txs == 0:
        raise ProtocolError("txs must not be empty")
    if n_txs > MAX_FRAME_BYTES // 8:
        raise ProtocolError(
            f"place batch of {n_txs} transactions cannot fit a "
            f"{MAX_FRAME_BYTES}-byte frame"
        )
    reader = _ArrayReader(payload, PLACE_HEADER_BYTES)
    n_inputs = reader.take("I", n_txs)
    n_outputs = reader.take("I", n_txs)
    if n_outputs and max(n_outputs) > MAX_OUTPUTS_PER_TX:
        raise ProtocolError(
            f"n_outputs must be in [0, {MAX_OUTPUTS_PER_TX}], "
            f"got {max(n_outputs)}"
        )
    total_outputs = sum(n_outputs)
    full_outputs = bool(flags & 1)
    if full_outputs:
        values = reader.take("q", total_outputs)
        addresses = reader.take("q", total_outputs)
    total_inputs = sum(n_inputs)
    parents = reader.take("Q", total_inputs)
    indexes = reader.take("I", total_inputs)
    reader.done()

    txs: list[Transaction] = []
    append = txs.append
    in_cursor = 0
    out_cursor = 0
    txid = first
    try:
        # All outpoints in one C-level pass (u64/u32 entries are never
        # negative, so OutPoint's own validation cannot fire).
        outpoints = list(map(OutPoint, parents, indexes))
        if full_outputs:
            for count_in, count_out in zip(n_inputs, n_outputs):
                in_end = in_cursor + count_in
                out_end = out_cursor + count_out
                append(
                    Transaction(
                        txid,
                        tuple(outpoints[in_cursor:in_end]),
                        tuple(
                            map(
                                TxOutput,
                                values[out_cursor:out_end],
                                addresses[out_cursor:out_end],
                            )
                        ),
                    )
                )
                in_cursor = in_end
                out_cursor = out_end
                txid += 1
        else:
            shared = _ZERO_OUTPUT_TUPLES
            for count_in, count_out in zip(n_inputs, n_outputs):
                in_end = in_cursor + count_in
                append(
                    Transaction(
                        txid,
                        tuple(outpoints[in_cursor:in_end]),
                        shared[count_out]
                        if count_out < len(shared)
                        else zero_outputs(count_out),
                    )
                )
                in_cursor = in_end
                txid += 1
    except ValidationError as exc:
        # Corrupt content bytes (e.g. a negative i64 value) surface as
        # model validation errors; to the wire they are malformed input.
        raise ProtocolError(f"malformed transaction in payload: {exc}")
    return txs


class WireBatch:
    """Zero-copy typed-array view of one (or several coalesced)
    ``place`` payloads.

    The kernel serving path: ``parents``/``indexes`` are numpy views
    straight over the payload bytes with the wire's unsigned integers
    reinterpreted as signed (the validation kernel ranges-checks them,
    reporting out-of-range values exactly as the object path would).
    ``payloads`` keeps the raw payload bytes for the WAL journal and
    for materializing :class:`Transaction` objects when a fallback
    needs them.
    """

    __slots__ = (
        "first_txid",
        "n_txs",
        "n_inputs",
        "n_outputs",
        "parents",
        "indexes",
        "in_off",
        "payloads",
    )

    def __init__(
        self,
        first_txid: int,
        n_txs: int,
        n_inputs,
        n_outputs,
        parents,
        indexes,
        in_off,
        payloads: "tuple[bytes, ...]",
    ) -> None:
        self.first_txid = first_txid
        self.n_txs = n_txs
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.parents = parents
        self.indexes = indexes
        self.in_off = in_off
        self.payloads = payloads

    def __len__(self) -> int:
        return self.n_txs


def decode_place_arrays(payload: bytes) -> "WireBatch | None":
    """Typed-array decode of one ``place`` payload (the kernel path).

    Returns ``None`` when the payload needs the object decoder (the
    full-outputs flag - content-hashing strategies never run the
    kernel). Malformed payloads raise :class:`ProtocolError` with the
    exact messages of :func:`decode_place_payload`, checked in the same
    order, so both decode paths produce byte-identical error replies.
    Requires numpy (callers gate on the kernel being active).
    """
    import numpy as np

    if len(payload) < PLACE_HEADER_BYTES:
        raise ProtocolError(
            f"place payload of {len(payload)} bytes is shorter than "
            f"its {PLACE_HEADER_BYTES}-byte header"
        )
    first, n_txs, flags = _PLACE_HEADER.unpack_from(payload)
    if n_txs == 0:
        raise ProtocolError("txs must not be empty")
    if n_txs > MAX_FRAME_BYTES // 8:
        raise ProtocolError(
            f"place batch of {n_txs} transactions cannot fit a "
            f"{MAX_FRAME_BYTES}-byte frame"
        )
    if flags & 1:
        return None

    offset = PLACE_HEADER_BYTES

    def take(dtype: str, itemsize: int, typecode: str, count: int):
        nonlocal offset
        nbytes = count * itemsize
        end = offset + nbytes
        if end > len(payload):
            raise ProtocolError(
                f"place payload truncated: wanted {nbytes} bytes for "
                f"{count} '{typecode}' entries, had {len(payload) - offset}"
            )
        section = np.frombuffer(payload, dtype=dtype, count=count,
                                offset=offset)
        offset = end
        return section

    n_inputs_u = take("<u4", 4, "I", n_txs)
    n_outputs_u = take("<u4", 4, "I", n_txs)
    max_out = int(n_outputs_u.max()) if n_txs else 0
    if max_out > MAX_OUTPUTS_PER_TX:
        raise ProtocolError(
            f"n_outputs must be in [0, {MAX_OUTPUTS_PER_TX}], "
            f"got {max_out}"
        )
    total_inputs = int(n_inputs_u.sum(dtype=np.int64))
    parents = take("<u8", 8, "Q", total_inputs).view(np.int64)
    indexes = take("<u4", 4, "I", total_inputs).view(np.int32)
    if offset != len(payload):
        raise ProtocolError(
            f"place payload has {len(payload) - offset} trailing bytes"
        )
    in_off = np.zeros(n_txs + 1, dtype=np.int64)
    np.cumsum(n_inputs_u, out=in_off[1:])
    return WireBatch(
        first,
        n_txs,
        n_inputs_u.view(np.int32),
        n_outputs_u.view(np.int32),
        parents,
        indexes,
        in_off,
        (payload,),
    )


def concat_wire_batches(batches: "Sequence[WireBatch]") -> WireBatch:
    """Merge txid-contiguous wire batches (the worker's coalescer
    guarantees adjacency) into one, concatenating the array sections."""
    import numpy as np

    if len(batches) == 1:
        return batches[0]
    n_txs = sum(b.n_txs for b in batches)
    n_inputs = np.concatenate([b.n_inputs for b in batches])
    n_outputs = np.concatenate([b.n_outputs for b in batches])
    parents = np.concatenate([b.parents for b in batches])
    indexes = np.concatenate([b.indexes for b in batches])
    in_off = np.zeros(n_txs + 1, dtype=np.int64)
    np.cumsum(n_inputs, out=in_off[1:])
    return WireBatch(
        batches[0].first_txid,
        n_txs,
        n_inputs,
        n_outputs,
        parents,
        indexes,
        in_off,
        tuple(p for b in batches for p in b.payloads),
    )


def encode_control_request(
    request_id: int, op: str, obj: "dict[str, Any] | None" = None
) -> bytes:
    """A non-``place`` request frame (JSON payload, tiny, not hot)."""
    try:
        kind = _OP_TO_KIND[op]
    except KeyError:
        raise ProtocolError(f"unknown op {op!r}")
    if kind == KIND_PLACE:
        raise ProtocolError("place requests use encode_place_request")
    payload = (
        json.dumps(obj, separators=(",", ":")).encode() if obj else b""
    )
    return encode_frame(kind, request_id, payload)


def encode_shards_response(request_id: int, shards: Sequence[int]) -> bytes:
    """The hot response: one packed i32 array of shard assignments."""
    return encode_frame(
        RESPONSE_FLAG | STATUS_SHARDS, request_id, _packed("i", shards)
    )


def encode_json_response(request_id: int, obj: dict[str, Any]) -> bytes:
    """A control-op response (the dict minus ``id``/``ok``)."""
    payload = json.dumps(obj, separators=(",", ":")).encode()
    return encode_frame(RESPONSE_FLAG | STATUS_JSON, request_id, payload)


def encode_error_response(
    request_id: int, code: str, message: str
) -> bytes:
    """An error response; unknown codes collapse to ``protocol``."""
    status = _CODE_TO_STATUS.get(code, STATUS_ERROR_PROTOCOL)
    return encode_frame(
        RESPONSE_FLAG | status, request_id, message.encode()
    )


def encode_response_for(request_id: int, response: dict[str, Any]) -> bytes:
    """Binary frame for one server-side response dict.

    ``{"ok": True, "shards": [...]}`` becomes a packed shards frame,
    other successes a JSON frame, failures an error frame - the inverse
    of :func:`decode_response`.
    """
    if response.get("ok"):
        shards = response.get("shards")
        if shards is not None and len(response) == 2:
            return encode_shards_response(request_id, shards)
        body = {
            key: value
            for key, value in response.items()
            if key not in ("ok", "id")
        }
        return encode_json_response(request_id, body)
    return encode_error_response(
        request_id,
        response.get("code", "protocol"),
        response.get("error", "unknown server error"),
    )


def decode_response(kind: int, payload: bytes) -> dict[str, Any]:
    """Response dict of one binary response frame.

    The shape matches the NDJSON protocol (minus ``id``, which travels
    in the frame header), so both clients share their error mapping.
    """
    if not kind & RESPONSE_FLAG:
        raise ProtocolError(
            f"expected a response frame, got request kind 0x{kind:02x}"
        )
    status = kind & ~RESPONSE_FLAG
    if status == STATUS_SHARDS:
        shards = array("i")
        if len(payload) % shards.itemsize:
            raise ProtocolError(
                f"shards payload of {len(payload)} bytes is not a "
                f"whole number of {shards.itemsize}-byte entries"
            )
        shards.frombytes(payload)
        if not _LITTLE_ENDIAN:  # pragma: no cover - no BE host in CI
            shards.byteswap()
        return {"ok": True, "shards": shards.tolist()}
    if status == STATUS_JSON:
        try:
            body = json.loads(payload) if payload else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"malformed JSON response payload: {exc}")
        if not isinstance(body, dict):
            raise ProtocolError("JSON response payload must be an object")
        body["ok"] = True
        return body
    code = _STATUS_TO_CODE.get(status)
    if code is None:
        raise ProtocolError(f"unknown response status 0x{status:02x}")
    return {
        "ok": False,
        "code": code,
        "error": payload.decode("utf-8", "replace"),
    }
