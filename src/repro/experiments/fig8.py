"""Figure 8 - average transaction latency.

(8a) average latency versus rate at the largest shard count: OptChain
stays flat (8.7 s at 4000 tps in the paper) while the others blow up at
their saturation points (OmniLedger 346.2 s at 6000 tps / 16 shards -
the 93% reduction headline). (8b) the same metric across the full
(rate, shards) grid.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments.configs import ExperimentScale
from repro.experiments.fig3 import GridCell
from repro.experiments.fig3 import run as fig3_run


def run(scale: ExperimentScale, seed: int = 1) -> list[GridCell]:
    """Same grid as Fig. 3."""
    return fig3_run(scale, seed)


def latency_at_max_shards(
    cells: list[GridCell],
) -> dict[str, list[tuple[float, float]]]:
    """Fig. 8a series: ``rate -> average latency`` at the top shards."""
    top = max(cell.n_shards for cell in cells)
    series: dict[str, list[tuple[float, float]]] = {}
    for cell in cells:
        if cell.n_shards != top:
            continue
        series.setdefault(cell.method, []).append(
            (cell.tx_rate, cell.average_latency)
        )
    for points in series.values():
        points.sort()
    return series


def reduction_vs(
    cells: list[GridCell], baseline: str = "omniledger"
) -> float:
    """Latency reduction of OptChain vs a baseline at the top config
    (paper headline: up to 93% vs OmniLedger)."""
    top_shards = max(cell.n_shards for cell in cells)
    top_rate = max(cell.tx_rate for cell in cells)
    by_method = {
        cell.method: cell
        for cell in cells
        if cell.n_shards == top_shards and cell.tx_rate == top_rate
    }
    base = by_method[baseline].average_latency
    ours = by_method["optchain"].average_latency
    if base <= 0:
        return 0.0
    return 1.0 - ours / base


def as_table(cells: list[GridCell]) -> str:
    series = latency_at_max_shards(cells)
    methods = sorted(series)
    rates = sorted({rate for pts in series.values() for rate, _ in pts})
    rows = []
    for rate in rates:
        row: list[object] = [int(rate)]
        for method in methods:
            row.append(f"{dict(series[method])[rate]:.1f}s")
        rows.append(row)
    table = format_table(
        ["rate"] + list(methods),
        rows,
        title="Fig. 8a: average latency vs rate at the largest shard count",
    )
    headline = (
        f"OptChain latency reduction vs OmniLedger at the top "
        f"configuration: {reduction_vs(cells):.0%} (paper: up to 93%)"
    )
    return table + "\n" + headline


def main(scale_name: str | None = None) -> str:
    from repro.experiments.runner import scale_by_name

    output = as_table(run(scale_by_name(scale_name)))
    print(output)
    return output


if __name__ == "__main__":
    main()
