"""Tests for the multilevel k-way partitioner and coarsening."""

from __future__ import annotations

import pytest

from repro.errors import PartitionError
from repro.partition.coarsen import (
    build_hierarchy,
    contract,
    heavy_edge_matching,
)
from repro.partition.graph import StaticGraph
from repro.partition.metis_like import (
    MultilevelConfig,
    metis_kway,
    partition_tan,
)
from repro.partition.quality import (
    balance_ratio,
    edge_cut,
    validate_partition,
)
from repro.rng import make_rng


def two_cliques(size=6, bridge_weight=1):
    """Two cliques joined by one weak edge - the canonical cut test."""
    graph = StaticGraph(2 * size)
    for base in (0, size):
        for i in range(size):
            for j in range(i + 1, size):
                graph.add_edge(base + i, base + j, 10)
    graph.add_edge(size - 1, size, bridge_weight)
    return graph


class TestMatching:
    def test_matching_is_symmetric(self):
        graph = two_cliques()
        match = heavy_edge_matching(graph, make_rng(1))
        for u, partner in enumerate(match):
            assert match[partner] == u

    def test_isolated_nodes_self_match(self):
        graph = StaticGraph(3)
        graph.add_edge(0, 1)
        match = heavy_edge_matching(graph, make_rng(1))
        assert match[2] == 2

    def test_contract_preserves_total_weight(self):
        graph = two_cliques()
        level = contract(graph, heavy_edge_matching(graph, make_rng(1)))
        assert level.graph.total_node_weight == graph.total_node_weight
        assert level.graph.n_nodes < graph.n_nodes

    def test_hierarchy_stops_at_target(self):
        graph = two_cliques(size=10)
        coarsest, levels = build_hierarchy(
            graph, make_rng(1), target_size=5
        )
        assert coarsest.n_nodes <= graph.n_nodes
        assert levels  # at least one contraction happened


class TestMetisKway:
    def test_two_cliques_cut_on_bridge(self):
        graph = two_cliques()
        assignment = metis_kway(graph, 2, MultilevelConfig(seed=3))
        validate_partition(assignment, 2)
        assert edge_cut(graph, assignment) == 1  # only the bridge

    def test_balance_respected(self, small_graph):
        from repro.partition.graph import StaticGraph

        graph = StaticGraph.from_tan(small_graph)
        config = MultilevelConfig(epsilon=0.1, seed=1)
        assignment = metis_kway(graph, 8, config)
        validate_partition(assignment, 8)
        # Cap is ceil(1.1 * ideal); ratio can exceed 1.1 by the ceiling
        # rounding only.
        assert balance_ratio(assignment, 8) <= 1.1 + 8 / small_graph.n_nodes

    def test_beats_random_cut(self, small_graph):
        import random

        graph = StaticGraph.from_tan(small_graph)
        assignment = metis_kway(graph, 4, MultilevelConfig(seed=1))
        rng = random.Random(7)
        random_assignment = [rng.randrange(4) for _ in range(graph.n_nodes)]
        assert edge_cut(graph, assignment) < 0.5 * edge_cut(
            graph, random_assignment
        )

    def test_single_part(self):
        graph = two_cliques()
        assert metis_kway(graph, 1) == [0] * graph.n_nodes

    def test_empty_graph(self):
        assert metis_kway(StaticGraph(0), 4) == []

    def test_too_many_parts_rejected(self):
        with pytest.raises(PartitionError):
            metis_kway(StaticGraph(2), 3)

    def test_nonpositive_parts_rejected(self):
        with pytest.raises(PartitionError):
            metis_kway(StaticGraph(2), 0)

    def test_deterministic(self, small_graph):
        graph = StaticGraph.from_tan(small_graph)
        a = metis_kway(graph, 4, MultilevelConfig(seed=5))
        b = metis_kway(graph, 4, MultilevelConfig(seed=5))
        assert a == b

    def test_bad_config_rejected(self):
        with pytest.raises(PartitionError):
            MultilevelConfig(epsilon=-1).validate()
        with pytest.raises(PartitionError):
            MultilevelConfig(min_coarsest=0).validate()

    def test_partition_tan(self, small_graph):
        assignment = partition_tan(small_graph, 4)
        validate_partition(assignment, 4)
        assert len(assignment) == small_graph.n_nodes


class TestStreaming:
    def test_hashing_covers_all_shards(self, small_graph):
        from repro.partition.streaming import hashing_partition

        assignment = hashing_partition(small_graph, 4, seed=1)
        validate_partition(assignment, 4)
        assert set(assignment) == {0, 1, 2, 3}

    def test_chunking_round_robin(self, small_graph):
        from repro.partition.streaming import chunking_partition

        assignment = chunking_partition(small_graph, 2, chunk=10)
        assert assignment[0:10] == [0] * 10
        assert assignment[10:20] == [1] * 10

    def test_chunking_bad_chunk(self, small_graph):
        from repro.partition.streaming import chunking_partition

        with pytest.raises(PartitionError):
            chunking_partition(small_graph, 2, chunk=0)

    def test_linear_greedy_cut_beats_hashing(self, small_graph):
        from repro.partition.graph import StaticGraph
        from repro.partition.quality import edge_cut
        from repro.partition.streaming import (
            hashing_partition,
            linear_greedy_partition,
        )

        graph = StaticGraph.from_tan(small_graph)
        greedy = linear_greedy_partition(small_graph, 4)
        hashed = hashing_partition(small_graph, 4, seed=2)
        validate_partition(greedy, 4)
        assert edge_cut(graph, greedy) < edge_cut(graph, hashed)

    def test_linear_greedy_balanced(self, small_graph):
        from repro.partition.streaming import linear_greedy_partition

        assignment = linear_greedy_partition(small_graph, 4, epsilon=0.1)
        assert balance_ratio(assignment, 4) <= 1.35

    def test_fennel_cut_beats_hashing(self, small_graph):
        from repro.partition.graph import StaticGraph
        from repro.partition.quality import edge_cut
        from repro.partition.streaming import (
            fennel_partition,
            hashing_partition,
        )

        graph = StaticGraph.from_tan(small_graph)
        fennel = fennel_partition(small_graph, 4)
        hashed = hashing_partition(small_graph, 4, seed=2)
        validate_partition(fennel, 4)
        assert edge_cut(graph, fennel) < edge_cut(graph, hashed)

    def test_fennel_reasonably_balanced(self, small_graph):
        from repro.partition.streaming import fennel_partition

        assignment = fennel_partition(small_graph, 4)
        assert balance_ratio(assignment, 4) <= 2.5

    def test_fennel_bad_gamma(self, small_graph):
        from repro.partition.streaming import fennel_partition

        with pytest.raises(PartitionError):
            fennel_partition(small_graph, 4, gamma=1.0)

    def test_exponential_greedy_valid(self, small_graph):
        from repro.partition.streaming import exponential_greedy_partition

        assignment = exponential_greedy_partition(small_graph, 4)
        validate_partition(assignment, 4)

    def test_balance_pressure_extremes(self, small_graph):
        """High alpha forces balance; alpha ~ 0 follows edges only."""
        from repro.partition.streaming import fennel_partition

        forced = fennel_partition(
            small_graph, 4, balance_pressure=1e9
        )
        loose = fennel_partition(
            small_graph, 4, balance_pressure=1e-9
        )
        assert balance_ratio(forced, 4) < balance_ratio(loose, 4) + 1e-9
