"""Regenerates Fig. 6: max/min shard queue sizes over time.

Shape asserted: OptChain's peak queue stays below OmniLedger's (whose
queues grow without bound past saturation) and below Metis's (whose
placement floods single shards). Paper peaks: OptChain ~44k vs Metis
507k, Greedy 230k, OmniLedger 499k.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import fig6


def test_fig6(benchmark, scale):
    series = run_once(benchmark, lambda: fig6.run(scale))
    print()
    print(fig6.as_table(series))
    peaks = {
        method: fig6.worst_max_queue(points)
        for method, points in series.items()
    }
    # OmniLedger is past saturation at the top configuration: its queues
    # grow without bound, OptChain's stay bounded. Comparisons carry a
    # margin because at tiny scale queues are only a few block-sizes
    # deep and the orderings are noisy; at default scale (EXPERIMENTS.md)
    # OptChain's peak is far below both.
    assert peaks["optchain"] <= 1.25 * peaks["omniledger"]
    assert peaks["optchain"] <= 2 * peaks["metis"]
    for method, points in series.items():
        assert all(
            biggest >= smallest for _, biggest, smallest in points
        ), method
