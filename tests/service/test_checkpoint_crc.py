"""Checkpoint integrity: corrupt snapshot and delta files must fail
fast with :class:`~repro.errors.CorruptCheckpointError`, never restore
garbage - and pre-CRC (v1-v3) containers without the integrity keys
must stay readable."""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

import pytest

from repro.core.placement import make_placer
from repro.datasets.synthetic import synthetic_stream
from repro.errors import CorruptCheckpointError, SnapshotError
from repro.service.engine import PlacementEngine

N_SHARDS = 4


def build_engine(n_txs: int = 800) -> PlacementEngine:
    engine = PlacementEngine(
        make_placer("optchain", N_SHARDS), epoch_length=250
    )
    stream = synthetic_stream(n_txs, seed=5)
    for offset in range(0, n_txs, 200):
        engine.place_batch(stream[offset : offset + 200])
    return engine


def corrupt(path: Path, *, flip_at: "int | None" = None,
            truncate_to: "int | None" = None) -> None:
    raw = bytearray(path.read_bytes())
    if truncate_to is not None:
        raw = raw[:truncate_to]
    if flip_at is not None:
        raw[flip_at] ^= 0xFF
    path.write_bytes(bytes(raw))


@pytest.mark.parametrize("compress", [False, True])
class TestSnapshotIntegrity:
    def test_payload_bit_flip_detected(self, tmp_path, compress):
        snap = tmp_path / "engine.snap"
        build_engine().checkpoint(snap, compress=compress)
        corrupt(snap, flip_at=-100)
        with pytest.raises(CorruptCheckpointError, match="CRC32"):
            PlacementEngine.restore(snap)

    def test_truncated_payload_detected(self, tmp_path, compress):
        snap = tmp_path / "engine.snap"
        size = build_engine().checkpoint(snap, compress=compress)
        corrupt(snap, truncate_to=size - 64)
        with pytest.raises(CorruptCheckpointError, match="torn"):
            PlacementEngine.restore(snap)

    def test_intact_snapshot_roundtrips(self, tmp_path, compress):
        snap = tmp_path / "engine.snap"
        engine = build_engine()
        engine.checkpoint(snap, compress=compress)
        restored = PlacementEngine.restore(snap)
        stream = synthetic_stream(1_000, seed=5)
        assert restored.place_batch(
            stream[800:1_000]
        ) == engine.place_batch(stream[800:1_000])


class TestDeltaIntegrity:
    def write_pair(self, tmp_path) -> tuple[PlacementEngine, Path, Path]:
        snap = tmp_path / "engine.snap"
        engine = build_engine()
        engine.checkpoint(snap, track_delta=True)
        stream = synthetic_stream(1_200, seed=5)
        for offset in range(800, 1_200, 200):
            engine.place_batch(stream[offset : offset + 200])
        engine.checkpoint(snap, delta=True)
        return engine, snap, Path(str(snap) + ".delta")

    def test_delta_bit_flip_detected(self, tmp_path):
        _, snap, delta = self.write_pair(tmp_path)
        corrupt(delta, flip_at=-30)
        with pytest.raises(CorruptCheckpointError, match="CRC32"):
            PlacementEngine.restore(snap)

    def test_delta_truncation_detected(self, tmp_path):
        _, snap, delta = self.write_pair(tmp_path)
        corrupt(delta, truncate_to=delta.stat().st_size - 40)
        with pytest.raises(CorruptCheckpointError, match="torn"):
            PlacementEngine.restore(snap)

    def test_intact_pair_roundtrips(self, tmp_path):
        engine, snap, _ = self.write_pair(tmp_path)
        restored = PlacementEngine.restore(snap)
        stream = synthetic_stream(1_400, seed=5)
        assert restored.place_batch(
            stream[1_200:1_400]
        ) == engine.place_batch(stream[1_200:1_400])


class TestLegacyHeaders:
    def strip_integrity_keys(self, path: Path) -> None:
        """Rewrite the container as a pre-CRC writer would have."""
        raw = path.read_bytes()
        (header_len,) = struct.unpack_from("<I", raw, 8)
        header = json.loads(raw[12 : 12 + header_len].decode("utf-8"))
        header.pop("stored_payload_bytes")
        header.pop("payload_crc32")
        header_bytes = json.dumps(
            header, separators=(",", ":")
        ).encode("utf-8")
        path.write_bytes(
            raw[:8]
            + struct.pack("<I", len(header_bytes))
            + header_bytes
            + raw[12 + header_len :]
        )

    def test_header_without_crc_keys_still_loads(self, tmp_path):
        snap = tmp_path / "engine.snap"
        engine = build_engine()
        engine.checkpoint(snap)
        self.strip_integrity_keys(snap)
        restored = PlacementEngine.restore(snap)
        stream = synthetic_stream(1_000, seed=5)
        assert restored.place_batch(
            stream[800:1_000]
        ) == engine.place_batch(stream[800:1_000])

    def test_corrupt_header_json_detected(self, tmp_path):
        snap = tmp_path / "engine.snap"
        build_engine().checkpoint(snap)
        corrupt(snap, flip_at=20)  # inside the JSON header
        with pytest.raises((CorruptCheckpointError, SnapshotError)):
            PlacementEngine.restore(snap)

    def test_zlib_garbage_detected(self, tmp_path):
        # A payload that passes its own CRC but is not valid zlib (the
        # corruption happened before the CRC was computed, e.g. in
        # memory): the decompress guard still refuses it.
        snap = tmp_path / "engine.snap"
        build_engine().checkpoint(snap, compress=True)
        raw = bytearray(snap.read_bytes())
        (header_len,) = struct.unpack_from("<I", raw, 8)
        header = json.loads(
            raw[12 : 12 + header_len].decode("utf-8")
        )
        payload = bytearray(raw[12 + header_len :])
        payload[10] ^= 0xFF
        header["payload_crc32"] = zlib.crc32(bytes(payload)) & 0xFFFFFFFF
        header_bytes = json.dumps(
            header, separators=(",", ":")
        ).encode("utf-8")
        snap.write_bytes(
            bytes(raw[:8])
            + struct.pack("<I", len(header_bytes))
            + header_bytes
            + bytes(payload)
        )
        with pytest.raises(CorruptCheckpointError, match="corrupt"):
            PlacementEngine.restore(snap)
