"""Differential tests: the numpy backend vs the pure-python golden path.

The vectorized backend's whole contract is *bit-identity*: same
placements, same tie-breaks, same exported state, same support
statistics - for every strategy variant (exact, fixed top-k caps,
adaptive cap) at every batch size. Random UTXO streams (including
duplicate parents, coinbases, and fan-in bursts) are driven through
both backends side by side and compared full-state.

Skipped wholesale when numpy is not installed; the compiled kernel is
exercised when it can be built and the tests still pass (generic-loop
fallback) when it cannot - identical either way is the point.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.placement import make_placer  # noqa: E402
from repro.errors import PlacementError  # noqa: E402
from repro.service.engine import PlacementEngine  # noqa: E402
from repro.utxo.transaction import (  # noqa: E402
    OutPoint,
    Transaction,
    TxOutput,
)

N_SHARDS = 8

#: (method, constructor kwargs) grid the differential property covers.
SPECS = [
    ("optchain", {}),
    ("optchain-topk", {"support_cap": 1}),
    ("optchain-topk", {"support_cap": 4}),
    ("optchain-topk", {"support_cap": N_SHARDS}),
    ("optchain-topk", {"support_cap": "auto:0", "support_window": 32}),
    ("optchain-topk", {"support_cap": "auto:0.01", "support_window": 32}),
]


def _tx(txid: int, parents) -> Transaction:
    return Transaction(
        txid=txid,
        inputs=tuple(OutPoint(parent, 0) for parent in parents),
        outputs=(TxOutput(1),),
    )


@st.composite
def raw_streams(draw, max_txs: int = 100):
    """Random dense-order streams, duplicate parents included.

    Placers only read input *txids*, so streams here need not be
    valid UTXO spend sequences - that frees hypothesis to generate
    much nastier parent patterns than a wallet simulator would.
    """
    n = draw(st.integers(min_value=2, max_value=max_txs))
    txs = []
    for i in range(n):
        if i == 0:
            parents = []
        else:
            fan_in = draw(st.integers(min_value=0, max_value=4))
            parents = [
                draw(st.integers(min_value=0, max_value=i - 1))
                for _ in range(fan_in)
            ]
        txs.append(_tx(i, parents))
    return txs


def _pair(method: str, kwargs: dict):
    python = make_placer(method, N_SHARDS, backend="python", **kwargs)
    numpy_ = make_placer(method, N_SHARDS, backend="numpy", **kwargs)
    assert python.backend == "python"
    assert numpy_.backend == "numpy"
    return python, numpy_


def _assert_same_state(python, numpy_) -> None:
    state_py = python.export_state()
    state_np = numpy_.export_state()
    assert state_py.keys() == state_np.keys()
    for key in state_py:
        assert state_py[key] == state_np[key], f"state key {key!r} differs"
    assert python.scorer.support_stats() == numpy_.scorer.support_stats()


class TestDifferential:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_streams_bit_identical(self, data):
        stream = data.draw(raw_streams())
        method, kwargs = data.draw(st.sampled_from(SPECS))
        sizes = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=16),
                min_size=1,
                max_size=8,
            )
        )
        python, numpy_ = _pair(method, kwargs)
        placed_py: list[int] = []
        placed_np: list[int] = []
        cursor = 0
        round_ = 0
        while cursor < len(stream):
            size = sizes[round_ % len(sizes)]
            round_ += 1
            chunk = stream[cursor : cursor + size]
            cursor += size
            placed_py.extend(python.place_batch(chunk))
            placed_np.extend(numpy_.place_batch(chunk))
        assert placed_py == placed_np
        _assert_same_state(python, numpy_)
        if hasattr(python, "support_cap"):
            assert python.support_cap == numpy_.support_cap

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_release_sweep_bit_identical(self, data):
        stream = data.draw(raw_streams(max_txs=60))
        method, kwargs = data.draw(st.sampled_from(SPECS[:3]))
        python, numpy_ = _pair(method, kwargs)
        python.place_batch(stream)
        numpy_.place_batch(stream)
        txids = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(stream) - 1),
                unique=True,
                max_size=len(stream),
            )
        )
        assert python.scorer.release_vectors(
            txids
        ) == numpy_.scorer.release_vectors(txids)
        _assert_same_state(python, numpy_)

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        n_shards=st.sampled_from([4, 16]),
        spec_index=st.integers(min_value=0, max_value=len(SPECS) - 1),
    )
    def test_engine_level_bit_identical(self, seed, n_shards, spec_index):
        from repro.datasets.synthetic import synthetic_stream

        method, kwargs = SPECS[spec_index]
        stream = synthetic_stream(300, seed=seed)
        engines = [
            PlacementEngine(
                make_placer(method, n_shards, backend=backend, **kwargs),
                epoch_length=64,
                horizon_epochs=1,
            )
            for backend in ("python", "numpy")
        ]
        for start in range(0, len(stream), 50):
            chunk = stream[start : start + 50]
            placed = [engine.place_batch(chunk) for engine in engines]
            assert placed[0] == placed[1]
        stats = [engine.stats().as_dict() for engine in engines]
        # The spec string names the backend - the one field that is
        # *supposed* to differ; everything else must match exactly.
        assert stats[0].pop("spec") != stats[1].pop("spec")
        assert stats[0] == stats[1]


class TestErrorParity:
    def _messages(self, placers, batch):
        messages = []
        for placer in placers:
            with pytest.raises(PlacementError) as excinfo:
                placer.place_batch(batch)
            messages.append(str(excinfo.value))
        return messages

    def test_invalid_input_same_error_same_state(self):
        prefix = [_tx(0, []), _tx(1, [0])]
        bad = [_tx(2, [0, 1]), _tx(3, [7]), _tx(4, [0])]
        python, numpy_ = _pair("optchain", {})
        for placer in (python, numpy_):
            placer.place_batch(prefix)
        message_py, message_np = self._messages((python, numpy_), bad)
        assert message_py == message_np
        assert "invalid input 7" in message_py
        # Both backends committed exactly the pre-offender prefix.
        assert python.n_placed == numpy_.n_placed == 3
        _assert_same_state(python, numpy_)

    def test_dense_order_same_error(self):
        python, numpy_ = _pair("optchain-topk", {"support_cap": 4})
        for placer in (python, numpy_):
            placer.place_batch([_tx(0, [])])
        message_py, message_np = self._messages(
            (python, numpy_), [_tx(5, [0])]
        )
        assert message_py == message_np
        assert "dense stream order" in message_py
        assert python.n_placed == numpy_.n_placed == 1

    def test_release_errors_match(self):
        python, numpy_ = _pair("optchain", {})
        for placer in (python, numpy_):
            placer.place_batch([_tx(0, []), _tx(1, [0])])
        messages = []
        for placer in (python, numpy_):
            with pytest.raises(PlacementError) as excinfo:
                placer.scorer.release_vectors([0, 99])
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
        assert "unknown transaction 99" in messages[0]
        # Double release is silently idempotent on both backends.
        for placer in (python, numpy_):
            placer.scorer.release_vectors([1, 1])
            placer.scorer.release_vectors([1])
        _assert_same_state(python, numpy_)


class TestRawParentPath:
    """``place_batch_raw``: the zero-copy CSR entry point the serving
    wire path feeds. Raw outpoint txids go in *undeduplicated* - the
    kernel's first-appearance dedup must reproduce the python marshal's
    ``dict.fromkeys`` semantics exactly."""

    def _csr(self, stream):
        parents = np.array(
            [
                outpoint.txid
                for tx in stream
                for outpoint in tx.inputs
            ],
            dtype=np.int64,
        )
        in_off = np.zeros(len(stream) + 1, dtype=np.int64)
        np.cumsum(
            [len(tx.inputs) for tx in stream], out=in_off[1:]
        )
        return parents, in_off

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_raw_csr_matches_object_path(self, data):
        from repro.core.backends.ckernel import load_kernel

        if load_kernel() is None:
            pytest.skip("compiled kernel unavailable")
        stream = data.draw(raw_streams(max_txs=80))
        method, kwargs = data.draw(st.sampled_from(SPECS[:4]))
        object_placer = make_placer(
            method, N_SHARDS, backend="numpy", **kwargs
        )
        raw_placer = make_placer(
            method, N_SHARDS, backend="numpy", **kwargs
        )
        if not raw_placer._kernel_ready():
            pytest.skip("configuration keeps the kernel off")
        placed_obj: list[int] = []
        placed_raw: list[int] = []
        for start in range(0, len(stream), 13):
            chunk = stream[start : start + 13]
            placed_obj.extend(object_placer.place_batch(chunk))
            parents, in_off = self._csr(chunk)
            placed_raw.extend(
                raw_placer.place_batch_raw(parents, in_off, len(chunk))
            )
        assert placed_obj == placed_raw
        _assert_same_state(object_placer, raw_placer)

    def test_duplicate_heavy_fan_in(self):
        from repro.core.backends.ckernel import load_kernel

        if load_kernel() is None:
            pytest.skip("compiled kernel unavailable")
        # Every tx re-spends the same parents several times over - the
        # dedup path, single-parent shortcut, and argmax tie-breaks all
        # get hit.
        stream = [_tx(0, [])] + [
            _tx(i, [i - 1, i - 1, 0, i - 1, 0]) for i in range(1, 50)
        ]
        object_placer = make_placer("optchain", N_SHARDS, backend="numpy")
        raw_placer = make_placer("optchain", N_SHARDS, backend="numpy")
        parents, in_off = self._csr(stream)
        assert object_placer.place_batch(
            stream
        ) == raw_placer.place_batch_raw(parents, in_off, len(stream))
        _assert_same_state(object_placer, raw_placer)


class TestBackendPlumbing:
    def test_kernel_unavailability_is_reported(self):
        from repro.core.backends.ckernel import (
            kernel_unavailable_reason,
            load_kernel,
        )

        if load_kernel() is None:
            assert kernel_unavailable_reason() is not None
        else:
            assert kernel_unavailable_reason() is None

    def test_generic_loop_matches_kernel_path(self, monkeypatch):
        """Force the no-kernel fallback and diff it against python.

        This is what a numpy-only host (no C compiler) runs; it must
        stay bit-identical too.
        """
        import repro.core.backends.numpy_backend as backend_module

        monkeypatch.setattr(backend_module, "load_kernel", lambda: None)
        stream = [_tx(0, [])] + [
            _tx(i, [i - 1, max(0, i - 3)]) for i in range(1, 40)
        ]
        python, numpy_ = _pair("optchain-topk", {"support_cap": 2})
        assert python.place_batch(stream) == numpy_.place_batch(stream)
        _assert_same_state(python, numpy_)

    def test_stats_report_numpy_spec(self):
        engine = PlacementEngine(
            make_placer("optchain", N_SHARDS, backend="numpy")
        )
        assert engine.stats().spec == "optchain:backend=numpy"
        assert engine.stats().as_dict()["spec"] == "optchain:backend=numpy"
