"""Prometheus exposition: render/parse round trip, scrape quantiles,
and the asyncio GET /metrics responder."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.obs.hist import LogHistogram
from repro.obs.prom import (
    DEFAULT_EDGES_TICKS,
    Family,
    MetricsServer,
    PromParseError,
    parse_prometheus_text,
    quantile_from_scrape,
    render_families,
    sample_value,
    scrape_metrics,
)


def _families_with_hist(hist):
    latency = Family("latency_seconds", "histogram", "test latency")
    latency.add_histogram(hist, partition="0")
    counter = Family("requests_total", "counter", "requests").add(
        42, partition="0"
    )
    return [latency, counter]


class TestRenderParse:
    def test_round_trip(self):
        hist = LogHistogram()
        for _ in range(100):
            hist.record(0.002)
        text = render_families(_families_with_hist(hist))
        families = parse_prometheus_text(text)
        assert families["latency_seconds"]["type"] == "histogram"
        assert families["requests_total"]["type"] == "counter"
        assert (
            sample_value(families, "requests_total", partition="0") == 42
        )
        assert (
            sample_value(
                families,
                "latency_seconds",
                "latency_seconds_count",
                partition="0",
            )
            == 100
        )

    def test_label_escaping_round_trip(self):
        tricky = 'quo"te\\slash\nnewline'
        text = render_families(
            [Family("g", "gauge", "h").add(1.5, label=tricky)]
        )
        families = parse_prometheus_text(text)
        assert sample_value(families, "g", label=tricky) == 1.5

    def test_inf_bucket_and_sum(self):
        hist = LogHistogram()
        hist.record(0.5)
        text = render_families(_families_with_hist(hist))
        families = parse_prometheus_text(text)
        assert (
            sample_value(
                families,
                "latency_seconds",
                "latency_seconds_bucket",
                partition="0",
                le="+Inf",
            )
            == 1
        )
        total = sample_value(
            families, "latency_seconds", "latency_seconds_sum", partition="0"
        )
        assert total == pytest.approx(0.5, rel=1e-5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Family("x", "summary")

    def test_parser_rejects_malformed(self):
        for bad in (
            "metric_without_value",
            "# TYPE m bogus\nm 1",
            'm{l="unterminated 1',
            "m not_a_number",
        ):
            with pytest.raises(PromParseError):
                parse_prometheus_text(bad)

    def test_parser_ignores_comments_and_timestamps(self):
        families = parse_prometheus_text(
            "# just a comment\nm 3 1700000000000\n"
        )
        assert sample_value(families, "m") == 3


class TestScrapeQuantile:
    def test_quantile_within_quarter_octave(self):
        hist = LogHistogram()
        rng = random.Random(5)
        values = sorted(rng.uniform(1e-4, 2.0) for _ in range(4_000))
        for value in values:
            hist.record(value)
        families = parse_prometheus_text(
            render_families(_families_with_hist(hist))
        )
        for q in (0.5, 0.99, 0.999):
            derived = quantile_from_scrape(
                families, "latency_seconds", q, partition="0"
            )
            exact = values[min(len(values) - 1, int(q * len(values)))]
            # DEFAULT_EDGES_TICKS is a quarter-octave ladder: the
            # derived quantile is at most one edge (2**0.25) high.
            assert exact * 0.99 <= derived <= exact * 2**0.25 * 1.01

    def test_quantile_empty_and_missing(self):
        hist = LogHistogram()
        families = parse_prometheus_text(
            render_families(_families_with_hist(hist))
        )
        assert (
            quantile_from_scrape(
                families, "latency_seconds", 0.99, partition="0"
            )
            == 0.0
        )
        assert quantile_from_scrape(families, "nope", 0.99) is None

    def test_default_edges_align_with_buckets(self):
        hist = LogHistogram(precision=5)
        for edge in DEFAULT_EDGES_TICKS:
            lo, _hi = hist._bucket_bounds_ticks(hist._index_of(edge + 1))
            assert lo == edge + 1


class TestMetricsServer:
    def run(self, coro):
        asyncio.run(coro)

    def test_get_metrics_and_scrape_helper(self):
        async def scenario():
            async def render():
                return render_families(
                    [Family("up", "gauge", "liveness").add(1)]
                )

            server = MetricsServer(render)
            port = await server.start()
            try:
                families = await scrape_metrics("127.0.0.1", port)
                assert sample_value(families, "up") == 1
            finally:
                await server.stop()

        self.run(scenario())

    async def _raw_request(self, port, request):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(request)
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        return raw.split(b"\r\n", 1)[0].decode()

    def test_404_and_405(self):
        async def scenario():
            async def render():
                return "up 1\n"

            server = MetricsServer(render)
            port = await server.start()
            try:
                status = await self._raw_request(
                    port, b"GET /other HTTP/1.0\r\n\r\n"
                )
                assert "404" in status
                status = await self._raw_request(
                    port, b"POST /metrics HTTP/1.0\r\n\r\n"
                )
                assert "405" in status
            finally:
                await server.stop()

        self.run(scenario())
