"""Golden equivalence: the typed-event loop vs the preserved seed loop.

The simulator overhaul (typed event records, batch dispatch, propagation
tables, preallocated metrics) must be *bit-identical* to the seed
implementation preserved in ``repro.simulator._seed_reference`` - the
same discipline PR 1 applied to the placement hot path. These tests run
both loops over identical inputs and assert every raw series of the
:class:`~repro.simulator.engine.SimulationResult` matches exactly:
latencies, commit times, queue samples, per-shard block statistics,
bandwidth accounting, and the clock.
"""

from __future__ import annotations

import pytest

from repro.core._seed_reference import SeedOmniLedgerRandomPlacer
from repro.core.baselines import GreedyPlacer, OmniLedgerRandomPlacer
from repro.core.optchain import OptChainPlacer
from repro.datasets.synthetic import GeneratorConfig, synthetic_stream
from repro.simulator import SimulationConfig, run_simulation
from repro.simulator._seed_reference import run_simulation_seed

GEN = GeneratorConfig(
    n_wallets=300, coinbase_interval=100, bootstrap_coinbase=30
)

#: every field of SimulationResult that carries measurement data
SERIES_FIELDS = (
    "placer_name",
    "n_issued",
    "n_committed",
    "n_aborted",
    "n_cross",
    "n_same_shard",
    "n_parked",
    "duration",
    "throughput",
    "latencies",
    "commit_times",
    "queue_sample_times",
    "queue_samples",
    "blocks_per_shard",
    "entries_per_shard",
    "bytes_same_shard",
    "bytes_cross",
    "bandwidth_ratio",
    "drained",
)


def small_sim(**kwargs) -> SimulationConfig:
    defaults = dict(
        n_shards=4,
        tx_rate=200.0,
        block_capacity=50,
        block_size_bytes=25_000,
        consensus_base_s=0.5,
        consensus_per_tx_s=0.002,
        queue_sample_interval_s=1.0,
        max_sim_time_s=2_000.0,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


@pytest.fixture(scope="module")
def stream():
    return synthetic_stream(1_200, seed=5, config=GEN)


def assert_identical(fast, seed) -> None:
    for field in SERIES_FIELDS:
        fast_value = getattr(fast, field)
        seed_value = getattr(seed, field)
        assert fast_value == seed_value, (
            f"SimulationResult.{field} diverged from the seed loop"
        )


def both(stream, make_placer, config, **kwargs):
    fast = run_simulation(stream, make_placer(), config, **kwargs)
    seed = run_simulation_seed(stream, make_placer(), config, **kwargs)
    return fast, seed


class TestPlacerEquivalence:
    def test_omniledger(self, stream):
        assert_identical(
            *both(stream, lambda: OmniLedgerRandomPlacer(4), small_sim())
        )

    def test_omniledger_vs_seed_placer_composition(self, stream):
        """The all-seed lane (seed loop + seed omniledger placement)
        equals the all-fast lane - the benchmark's two compositions."""
        config = small_sim()
        fast = run_simulation(stream, OmniLedgerRandomPlacer(4), config)
        seed = run_simulation_seed(
            stream, SeedOmniLedgerRandomPlacer(4), config
        )
        # placer_name differs by construction; compare the series.
        for field in SERIES_FIELDS:
            if field == "placer_name":
                continue
            assert getattr(fast, field) == getattr(seed, field), field

    def test_optchain_with_live_observer(self, stream):
        """OptChain couples placement to live queue state, so any drift
        in the loop would feed back into placement decisions."""
        assert_identical(
            *both(stream, lambda: OptChainPlacer(4), small_sim())
        )

    def test_greedy(self, stream):
        assert_identical(
            *both(stream, lambda: GreedyPlacer(4), small_sim())
        )


class TestProtocolEquivalence:
    def test_rapidchain(self, stream):
        assert_identical(
            *both(
                stream,
                lambda: OmniLedgerRandomPlacer(4),
                small_sim(protocol="rapidchain"),
            )
        )

    def test_poisson_arrivals(self, stream):
        assert_identical(
            *both(
                stream,
                lambda: OmniLedgerRandomPlacer(4),
                small_sim(arrivals="poisson"),
            )
        )

    def test_no_jitter(self, stream):
        assert_identical(
            *both(
                stream,
                lambda: OmniLedgerRandomPlacer(4),
                small_sim(latency_jitter=0.0),
            )
        )


class TestFailureInjectionEquivalence:
    def test_outages(self, stream):
        assert_identical(
            *both(
                stream,
                lambda: OmniLedgerRandomPlacer(4),
                small_sim(),
                outages=[(0, 1.0, 10.0), (2, 5.0, 6.0)],
            )
        )

    def test_abort_injection(self, stream):
        victims = {tx.txid for tx in stream if not tx.is_coinbase}
        victims = set(list(victims)[:25])
        assert_identical(
            *both(
                stream,
                lambda: OmniLedgerRandomPlacer(4),
                small_sim(),
                abort_txids=victims,
            )
        )

    def test_abort_injection_with_outage(self, stream):
        victims = {tx.txid for tx in stream if not tx.is_coinbase}
        victims = set(list(victims)[:10])
        assert_identical(
            *both(
                stream,
                lambda: OmniLedgerRandomPlacer(4),
                small_sim(),
                abort_txids=victims,
                outages=[(1, 2.0, 20.0)],
            )
        )


class TestValidationModeEquivalence:
    def test_abort_injection_rapidchain(self, stream):
        victims = {tx.txid for tx in stream if not tx.is_coinbase}
        victims = set(list(victims)[:15])
        assert_identical(
            *both(
                stream,
                lambda: OmniLedgerRandomPlacer(4),
                small_sim(protocol="rapidchain"),
                abort_txids=victims,
            )
        )

    def test_abort_injection_with_ledger_validation(self, stream):
        """Injected rejections under full validation exercise the
        unlock-to-abort path: scheduled ledger unspend records."""
        victims = {tx.txid for tx in stream if not tx.is_coinbase}
        victims = set(list(victims)[:15])
        assert_identical(
            *both(
                stream,
                lambda: OmniLedgerRandomPlacer(4),
                small_sim(validate_ledger=True),
                abort_txids=victims,
            )
        )

    def test_ledger_validation(self, stream):
        assert_identical(
            *both(
                stream,
                lambda: OmniLedgerRandomPlacer(4),
                small_sim(validate_ledger=True),
            )
        )

    def test_ledger_validation_rapidchain(self, stream):
        assert_identical(
            *both(
                stream,
                lambda: OmniLedgerRandomPlacer(4),
                small_sim(validate_ledger=True, protocol="rapidchain"),
            )
        )


class TestBoundedRunEquivalence:
    def test_max_sim_time_cutoff(self, stream):
        assert_identical(
            *both(
                stream,
                lambda: OmniLedgerRandomPlacer(4),
                small_sim(max_sim_time_s=3.0),
            )
        )

    def test_sparse_txids_fall_back_to_dict_metrics(self):
        """A non-dense stream exercises the dict metrics mode; results
        must still match the seed collector exactly."""
        base = synthetic_stream(400, seed=7, config=GEN)
        # Drop a middle transaction so txids are no longer contiguous.
        # Later transactions may reference the dropped one's outputs;
        # placement still sees dense order via a filtered re-id, so
        # instead keep ids but skip issuing one *coinbase* with no
        # children to stay a valid stream.
        # (Simplest honest sparse case: issue the prefix plus a gap-free
        # tail is impossible without re-iding, so synthesize sparseness
        # by shifting all txids is likewise invalid. We instead verify
        # the collector directly in tests/simulator/test_components.py;
        # here we just pin that the engine detects density.)
        from repro.simulator.engine import _dense_txid_base

        assert _dense_txid_base(base) == 0
        assert _dense_txid_base(base[1:]) == 1
        assert _dense_txid_base(base[:5] + base[6:]) is None
