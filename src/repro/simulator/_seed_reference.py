"""Seed (pre-optimization) simulator loop, preserved verbatim.

These are the closure-per-event components the repository shipped with
before the typed-event overhaul of the hot loop: a heap of ``(time,
sequence, callback)`` thunks, per-message coordinate math in the network
model, and dict-based metric bookkeeping. They are kept as the golden
reference the equivalence tests (and the throughput benchmark) compare
against - the same discipline ``repro.core._seed_reference`` applies to
the placement hot path.

Nothing here is exported for production use; call
:func:`run_simulation_seed` to run a full simulation on the seed loop
and compare its :class:`~repro.simulator.engine.SimulationResult` with
the optimized :func:`~repro.simulator.engine.run_simulation`.
"""

from __future__ import annotations

import heapq
import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.placement import PlacementStrategy
from repro.errors import ConfigurationError, SimulationError
from repro.rng import derive_rng, make_rng
from repro.simulator.committees import CommitteeAssignment
from repro.simulator.config import SimulationConfig
from repro.simulator.consensus import ConsensusModel
from repro.simulator.ledger import CONFLICT, MISSING, OK, ShardLedger
from repro.simulator.metrics import LatencyObserver
from repro.simulator.protocol import (
    PROOF_BYTES,
    UNLOCK_BYTES,
    YANK_BYTES,
    _TxInfo,
)
from repro.simulator.shard import KIND_COMMIT, KIND_LOCK, KIND_TX
from repro.utxo.transaction import OutPoint, Transaction

Callback = Callable[[], Any]


@dataclass(slots=True)
class _PendingCrossTx:
    """Client-side state for one in-flight cross-shard transaction.

    The optimized protocol replaced this with a plain 4-slot list; the
    seed protocol keeps the original dataclass.
    """

    output_shard: int
    awaiting: int
    rejected: bool = False
    #: shards whose locks succeeded (must be unlocked on abort)
    accepted_shards: list[int] = field(default_factory=list)


@dataclass(frozen=True, slots=True)
class Entry:
    """The seed's entry record (the pre-overhaul frozen dataclass).

    The optimized loop replaced this with a named tuple; the seed loop
    keeps the original class so benchmark comparisons charge the seed
    its true historical allocation cost. Consumers unpack positionally
    nowhere in this module, so the shapes never mix.
    """

    kind: str
    txid: int

    def __iter__(self):
        # Positional unpacking parity with the optimized Entry tuple,
        # used only if seed entries ever cross into optimized consumers.
        yield self.kind
        yield self.txid


class SeedEventQueue:
    """The seed heap: one freshly allocated callback thunk per event."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callback]] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def n_pending(self) -> int:
        return len(self._heap)

    @property
    def n_processed(self) -> int:
        return self._processed

    def schedule(self, delay: float, callback: Callback) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heapq.heappush(
            self._heap, (self._now + delay, self._sequence, callback)
        )
        self._sequence += 1

    def schedule_at(self, time: float, callback: Callback) -> None:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, clock is at {self._now}"
            )
        heapq.heappush(self._heap, (time, self._sequence, callback))
        self._sequence += 1

    def step(self) -> bool:
        if not self._heap:
            return False
        time, _, callback = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        callback()
        return True

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> None:
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                return
            if until is not None and self._heap[0][0] > until:
                self._now = until
                return
            self.step()
            executed += 1


class SeedNetwork:
    """The seed latency oracle: coordinate math on every message."""

    CLIENT = -1

    def __init__(self, config: SimulationConfig, rng: random.Random) -> None:
        self._config = config
        self._rng = rng
        self._coords: dict[int, tuple[float, float]] = {
            self.CLIENT: (0.5, 0.5)
        }
        for shard in range(config.n_shards):
            self._coords[shard] = (rng.random(), rng.random())

    def coordinates_of(self, node: int) -> tuple[float, float]:
        try:
            return self._coords[node]
        except KeyError:
            raise ConfigurationError(f"unknown network node {node}")

    def propagation(self, src: int, dst: int) -> float:
        sx, sy = self.coordinates_of(src)
        dx, dy = self.coordinates_of(dst)
        distance = math.hypot(sx - dx, sy - dy)
        return self._config.base_latency_s * (0.5 + distance)

    def delay(self, src: int, dst: int, size_bytes: int) -> float:
        if size_bytes < 0:
            raise ConfigurationError(
                f"message size must be >= 0, got {size_bytes}"
            )
        transmission = size_bytes / self._config.bandwidth_bytes_per_s
        base = self.propagation(src, dst) + transmission
        jitter = self._config.latency_jitter
        if jitter == 0.0:
            return base
        return base * (1.0 + self._rng.uniform(-jitter, jitter))

    def expected_client_rtt(self, shard: int) -> float:
        one_way = self.propagation(self.CLIENT, shard)
        return 2.0 * one_way


class SeedMetricsCollector:
    """The seed collector: per-event dict bookkeeping, derived at end."""

    def __init__(self, n_transactions: int) -> None:
        if n_transactions < 0:
            raise SimulationError(
                f"n_transactions must be >= 0, got {n_transactions}"
            )
        self.n_transactions = n_transactions
        self._issue_time: dict[int, float] = {}
        self._commit_time: dict[int, float] = {}
        self._aborted: set[int] = set()
        self.queue_sample_times: list[float] = []
        self.queue_samples: list[list[int]] = []

    def record_issue(self, txid: int, time: float) -> None:
        if txid in self._issue_time:
            raise SimulationError(f"transaction {txid} issued twice")
        self._issue_time[txid] = time

    def record_commit(self, txid: int, time: float) -> None:
        if txid not in self._issue_time:
            raise SimulationError(
                f"transaction {txid} committed but never issued"
            )
        if txid in self._commit_time:
            raise SimulationError(f"transaction {txid} committed twice")
        self._commit_time[txid] = time

    def record_abort(self, txid: int) -> None:
        self._aborted.add(txid)

    def record_queue_sample(self, time: float, sizes: list[int]) -> None:
        self.queue_sample_times.append(time)
        self.queue_samples.append(sizes)

    @property
    def n_issued(self) -> int:
        return len(self._issue_time)

    @property
    def n_committed(self) -> int:
        return len(self._commit_time)

    @property
    def n_aborted(self) -> int:
        return len(self._aborted)

    def is_complete(self) -> bool:
        return (
            self.n_issued == self.n_transactions
            and self.n_committed + self.n_aborted == self.n_issued
        )

    def latencies(self) -> list[float]:
        return [
            self._commit_time[txid] - self._issue_time[txid]
            for txid in sorted(self._commit_time)
        ]

    def commit_times(self) -> list[float]:
        return sorted(self._commit_time.values())

    def throughput(self) -> float:
        if not self._commit_time:
            return 0.0
        start = min(self._issue_time.values())
        end = max(self._commit_time.values())
        if end <= start:
            return 0.0
        return self.n_committed / (end - start)

    def issue_time_of(self, txid: int) -> float:
        return self._issue_time[txid]


class SeedShard:
    """The seed shard: a closure per block-commit event."""

    def __init__(
        self,
        shard_id: int,
        config: SimulationConfig,
        consensus: ConsensusModel,
        events: SeedEventQueue,
        on_committed: Callable[[int, Entry], None],
    ) -> None:
        self.shard_id = shard_id
        self._config = config
        self._consensus = consensus
        self._events = events
        self._on_committed = on_committed
        self._mempool: deque[Entry] = deque()
        self._busy = False
        self.n_blocks = 0
        self.n_entries_committed = 0
        self.paused = False
        self.recent_block_duration = consensus.duration(
            config.block_capacity
        )

    @property
    def queue_size(self) -> int:
        return len(self._mempool)

    @property
    def busy(self) -> bool:
        return self._busy

    def enqueue(self, entry: Entry) -> None:
        self._mempool.append(entry)
        self._maybe_start_block()

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False
        self._maybe_start_block()

    def expected_verification_time(self) -> float:
        blocks_ahead = 1.0 + (
            len(self._mempool) / self._config.block_capacity
        )
        return blocks_ahead * self.recent_block_duration

    def _maybe_start_block(self) -> None:
        if self._busy or self.paused or not self._mempool:
            return
        self._busy = True
        batch_size = min(len(self._mempool), self._config.block_capacity)
        batch = [self._mempool.popleft() for _ in range(batch_size)]
        duration = self._consensus.duration(batch_size)
        self._events.schedule(
            duration, lambda: self._commit_block(batch, duration)
        )

    def _commit_block(self, batch: list[Entry], duration: float) -> None:
        self._busy = False
        self.n_blocks += 1
        self.n_entries_committed += len(batch)
        self.recent_block_duration = (
            0.7 * self.recent_block_duration + 0.3 * duration
        )
        for entry in batch:
            self._on_committed(self.shard_id, entry)
        self._maybe_start_block()


class SeedAtomicCommitProtocol:
    """The seed protocol: one closure per network hop."""

    def __init__(
        self,
        config: SimulationConfig,
        network: SeedNetwork,
        shards: Sequence[SeedShard],
        events: SeedEventQueue,
        on_confirmed: Callable[[int], None],
        on_aborted: Callable[[int], None] | None = None,
        abort_txids: set[int] | None = None,
    ) -> None:
        self._config = config
        self._network = network
        self._shards = shards
        self._events = events
        self._on_confirmed = on_confirmed
        self._on_aborted = on_aborted or (lambda txid: None)
        self._abort_txids = abort_txids or set()
        self._pending: dict[int, _PendingCrossTx] = {}
        self.n_cross = 0
        self.n_same_shard = 0
        self.n_aborted = 0
        self.n_parked = 0
        self.bytes_same_shard = 0
        self.bytes_cross = 0
        self.validate_ledger = config.validate_ledger
        self.ledgers: list[ShardLedger] = [
            ShardLedger(shard.shard_id) for shard in shards
        ]
        self._tx_info: dict[int, _TxInfo] = {}
        self._parked: list[dict[OutPoint, list[Entry]]] = [
            {} for _ in shards
        ]

    def submit(
        self,
        tx: Transaction,
        output_shard: int,
        input_shards: set[int],
        inputs_by_shard: dict[int, list[OutPoint]] | None = None,
    ) -> None:
        if self.validate_ledger:
            if inputs_by_shard is None:
                raise SimulationError(
                    "ledger validation needs inputs_by_shard per submit"
                )
            self._tx_info[tx.txid] = _TxInfo(
                n_outputs=len(tx.outputs),
                output_shard=output_shard,
                inputs_by_shard=inputs_by_shard,
            )
        cross = bool(input_shards) and input_shards != {output_shard}
        if not cross:
            self.n_same_shard += 1
            self.bytes_same_shard += tx.size_bytes
            self._send_to_shard(
                output_shard, Entry(KIND_TX, tx.txid), tx.size_bytes
            )
            return
        self.n_cross += 1
        self.bytes_cross += len(input_shards) * tx.size_bytes
        self._pending[tx.txid] = _PendingCrossTx(
            output_shard=output_shard, awaiting=len(input_shards)
        )
        for shard in input_shards:
            self._send_to_shard(
                shard, Entry(KIND_LOCK, tx.txid), tx.size_bytes
            )

    def entry_committed(self, shard_id: int, entry: Entry) -> None:
        if entry.kind == KIND_TX:
            if self.validate_ledger and not self._apply_same_shard(
                shard_id, entry.txid
            ):
                return
            self._on_confirmed(entry.txid)
            return
        if entry.kind == KIND_COMMIT:
            if self.validate_ledger:
                self._register_outputs(shard_id, entry.txid)
                self._tx_info.pop(entry.txid, None)
            self._on_confirmed(entry.txid)
            return
        if entry.kind != KIND_LOCK:
            raise SimulationError(f"unknown entry kind {entry.kind!r}")
        state = self._pending.get(entry.txid)
        if state is None:
            raise SimulationError(
                f"lock committed for unknown transaction {entry.txid}"
            )
        accepted = entry.txid not in self._abort_txids
        if accepted and self.validate_ledger:
            accepted = self._lock_inputs(shard_id, entry.txid)
        self._route_proof(shard_id, entry.txid, accepted)

    def _route_proof(self, shard_id: int, txid: int, accepted: bool) -> None:
        state = self._require_pending(txid)
        if self._config.protocol == "omniledger":
            self.bytes_cross += PROOF_BYTES
            delay = self._network.delay(
                shard_id, SeedNetwork.CLIENT, PROOF_BYTES
            )
        else:
            self.bytes_cross += YANK_BYTES
            delay = self._network.delay(
                shard_id, state.output_shard, YANK_BYTES
            )
        self._events.schedule(
            delay,
            lambda: self._proof_collected(txid, shard_id, accepted),
        )

    def _proof_collected(
        self, txid: int, shard_id: int, accepted: bool
    ) -> None:
        state = self._require_pending(txid)
        state.awaiting -= 1
        if accepted:
            state.accepted_shards.append(shard_id)
        else:
            state.rejected = True
        if state.awaiting > 0:
            return
        del self._pending[txid]
        if state.rejected:
            self._abort_and_unlock(txid, state)
            return
        if self._config.protocol == "omniledger":
            self.bytes_cross += UNLOCK_BYTES
            self._send_to_shard(
                state.output_shard, Entry(KIND_COMMIT, txid), UNLOCK_BYTES
            )
        else:
            self._try_enqueue(state.output_shard, Entry(KIND_COMMIT, txid))

    def _abort_and_unlock(self, txid: int, state: _PendingCrossTx) -> None:
        self.n_aborted += 1
        if self.validate_ledger and state.accepted_shards:
            info = self._tx_info[txid]
            source = (
                SeedNetwork.CLIENT
                if self._config.protocol == "omniledger"
                else state.output_shard
            )
            for shard_id in state.accepted_shards:
                outpoints = list(info.inputs_by_shard.get(shard_id, []))
                self.bytes_cross += UNLOCK_BYTES
                delay = self._network.delay(
                    source, shard_id, UNLOCK_BYTES
                )
                self._events.schedule(
                    delay,
                    lambda s=shard_id, ops=outpoints: self.ledgers[
                        s
                    ].unspend(ops, txid),
                )
        self._tx_info.pop(txid, None)
        self._on_aborted(txid)

    def _apply_same_shard(self, shard_id: int, txid: int) -> bool:
        info = self._tx_info[txid]
        outpoints = info.inputs_by_shard.get(shard_id, [])
        ledger = self.ledgers[shard_id]
        if ledger.classify(outpoints) != OK:
            self.n_aborted += 1
            self._tx_info.pop(txid, None)
            delay = self._network.delay(
                shard_id, SeedNetwork.CLIENT, PROOF_BYTES
            )
            self._events.schedule(delay, lambda: self._on_aborted(txid))
            return False
        ledger.spend(outpoints, txid)
        self._register_outputs(shard_id, txid)
        self._tx_info.pop(txid, None)
        return True

    def _lock_inputs(self, shard_id: int, txid: int) -> bool:
        info = self._tx_info[txid]
        outpoints = info.inputs_by_shard.get(shard_id, [])
        ledger = self.ledgers[shard_id]
        verdict = ledger.classify(outpoints)
        if verdict == CONFLICT:
            return False
        if verdict == MISSING:
            raise SimulationError(
                f"lock for tx {txid} reached consensus with unregistered "
                f"inputs; parking must happen at enqueue time"
            )
        ledger.spend(outpoints, txid)
        return True

    def _register_outputs(self, shard_id: int, txid: int) -> None:
        info = self._tx_info.get(txid)
        if info is None:
            raise SimulationError(
                f"no ledger bookkeeping for committed transaction {txid}"
            )
        created = self.ledgers[shard_id].register_outputs(
            txid, info.n_outputs
        )
        parked_here = self._parked[shard_id]
        for outpoint in created:
            for entry in parked_here.pop(outpoint, []):
                self._try_enqueue(shard_id, entry)

    def _send_to_shard(
        self, shard_id: int, entry: Entry, size_bytes: int
    ) -> None:
        delay = self._network.delay(SeedNetwork.CLIENT, shard_id, size_bytes)
        self._events.schedule(
            delay, lambda: self._try_enqueue(shard_id, entry)
        )

    def _try_enqueue(self, shard_id: int, entry: Entry) -> None:
        if not self.validate_ledger or entry.kind == KIND_COMMIT:
            self._shards[shard_id].enqueue(entry)
            return
        info = self._tx_info.get(entry.txid)
        if info is None:
            raise SimulationError(
                f"no ledger bookkeeping for entry {entry}"
            )
        outpoints = info.inputs_by_shard.get(shard_id, [])
        ledger = self.ledgers[shard_id]
        verdict = ledger.classify(outpoints)
        if verdict == OK:
            self._shards[shard_id].enqueue(entry)
            return
        if verdict == MISSING:
            anchor = ledger.first_missing(outpoints)
            assert anchor is not None
            self._parked[shard_id].setdefault(anchor, []).append(entry)
            self.n_parked += 1
            return
        if entry.kind == KIND_TX:
            self.n_aborted += 1
            self._tx_info.pop(entry.txid, None)
            delay = self._network.delay(
                shard_id, SeedNetwork.CLIENT, PROOF_BYTES
            )
            self._events.schedule(
                delay, lambda: self._on_aborted(entry.txid)
            )
            return
        self._route_proof(shard_id, entry.txid, accepted=False)

    def _require_pending(self, txid: int) -> _PendingCrossTx:
        state = self._pending.get(txid)
        if state is None:
            raise SimulationError(
                f"protocol event for non-pending transaction {txid}"
            )
        return state

    @property
    def n_in_flight(self) -> int:
        return len(self._pending)

    def bandwidth_ratio(self) -> float:
        if not self.n_cross or not self.n_same_shard:
            return 0.0
        per_cross = self.bytes_cross / self.n_cross
        per_same = self.bytes_same_shard / self.n_same_shard
        return per_cross / per_same if per_same else 0.0


class SeedTransactionIssuer:
    """The seed issuer: rebuilds per-call state on every issue event."""

    def __init__(
        self,
        stream: Sequence[Transaction],
        placer: PlacementStrategy,
        config: SimulationConfig,
        events: SeedEventQueue,
        protocol: SeedAtomicCommitProtocol,
        metrics: SeedMetricsCollector,
    ) -> None:
        if placer.n_shards != config.n_shards:
            raise ConfigurationError(
                f"placer has {placer.n_shards} shards, simulation has "
                f"{config.n_shards}"
            )
        self._stream = stream
        self._placer = placer
        self._config = config
        self._events = events
        self._protocol = protocol
        self._metrics = metrics
        self._rng = make_rng(config.seed)
        self._cursor = 0

    def start(self) -> None:
        if self._stream:
            self._events.schedule(0.0, self._issue_next)

    @property
    def n_issued(self) -> int:
        return self._cursor

    def _issue_next(self) -> None:
        tx = self._stream[self._cursor]
        self._cursor += 1
        now = self._events.now
        shard = self._placer.place(tx)
        input_shards = self._placer.input_shards(tx)
        inputs_by_shard = None
        if self._protocol.validate_ledger:
            inputs_by_shard = {}
            for outpoint in tx.inputs:
                owner = self._placer.shard_of(outpoint.txid)
                inputs_by_shard.setdefault(owner, []).append(outpoint)
        self._metrics.record_issue(tx.txid, now)
        self._protocol.submit(tx, shard, input_shards, inputs_by_shard)
        if self._cursor < len(self._stream):
            self._events.schedule(self._next_gap(), self._issue_next)

    def _next_gap(self) -> float:
        if self._config.arrivals == "poisson":
            return self._rng.expovariate(self._config.tx_rate)
        return 1.0 / self._config.tx_rate


def run_simulation_seed(
    stream: list[Transaction],
    placer: PlacementStrategy,
    config: SimulationConfig,
    abort_txids: set[int] | None = None,
    outages: list[tuple[int, float, float]] | None = None,
):
    """Run one simulation on the preserved seed loop.

    Mirrors :func:`repro.simulator.engine.run_simulation` exactly; the
    equivalence tests assert the two produce bit-identical
    :class:`~repro.simulator.engine.SimulationResult` series.
    """
    from repro.simulator.engine import SimulationResult

    config.validate()
    if placer.n_placed:
        raise SimulationError(
            "placer has prior placements; use a fresh placer per run"
        )
    events = SeedEventQueue()
    rng = make_rng(config.seed)
    network = SeedNetwork(config, derive_rng(rng, "network"))
    consensus = ConsensusModel(config)
    metrics = SeedMetricsCollector(len(stream))
    if config.byzantine_fraction > 0.0:
        committees = CommitteeAssignment(
            config.n_shards,
            config.n_shards * config.validators_per_shard,
            byzantine_fraction=config.byzantine_fraction,
            seed=config.seed,
        )
        committees.require_safe()

    protocol: SeedAtomicCommitProtocol | None = None

    def on_committed(shard_id: int, entry) -> None:
        assert protocol is not None
        protocol.entry_committed(shard_id, entry)

    shards = [
        SeedShard(shard_id, config, consensus, events, on_committed)
        for shard_id in range(config.n_shards)
    ]
    protocol = SeedAtomicCommitProtocol(
        config,
        network,
        shards,
        events,
        on_confirmed=lambda txid: metrics.record_commit(txid, events.now),
        on_aborted=metrics.record_abort,
        abort_txids=abort_txids,
    )
    if hasattr(placer, "use_latency_provider"):
        placer.use_latency_provider(LatencyObserver(config, network, shards))
    issuer = SeedTransactionIssuer(
        stream, placer, config, events, protocol, metrics
    )

    def sample_queues() -> None:
        metrics.record_queue_sample(
            events.now, [shard.queue_size for shard in shards]
        )
        if not metrics.is_complete():
            events.schedule(config.queue_sample_interval_s, sample_queues)

    issuer.start()
    if stream:
        events.schedule(0.0, sample_queues)
    for shard_id, start, end in outages or []:
        if not 0 <= shard_id < config.n_shards or end <= start:
            raise SimulationError(
                f"bad outage spec ({shard_id}, {start}, {end})"
            )
        events.schedule_at(start, shards[shard_id].pause)
        events.schedule_at(end, shards[shard_id].resume)

    events.run(until=config.max_sim_time_s)

    return SimulationResult(
        config=config,
        placer_name=getattr(placer, "name", type(placer).__name__),
        n_issued=metrics.n_issued,
        n_committed=metrics.n_committed,
        n_aborted=metrics.n_aborted,
        n_cross=protocol.n_cross,
        n_same_shard=protocol.n_same_shard,
        n_parked=protocol.n_parked,
        duration=events.now,
        throughput=metrics.throughput(),
        latencies=metrics.latencies(),
        commit_times=metrics.commit_times(),
        queue_sample_times=metrics.queue_sample_times,
        queue_samples=metrics.queue_samples,
        blocks_per_shard=[shard.n_blocks for shard in shards],
        entries_per_shard=[shard.n_entries_committed for shard in shards],
        bytes_same_shard=protocol.bytes_same_shard,
        bytes_cross=protocol.bytes_cross,
        bandwidth_ratio=protocol.bandwidth_ratio(),
        drained=metrics.is_complete(),
    )
