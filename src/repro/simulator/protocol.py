"""Cross-shard atomic commit protocols.

Implements the transaction lifecycle of §III-A:

**OmniLedger (lock / proof-of-acceptance / unlock-to-commit)**

1. The client sends the transaction to every *input shard* (shards
   holding its inputs). Same-shard transactions skip to a single ``tx``
   entry at their own shard.
2. Each input shard validates and locks the inputs by committing a
   ``lock`` entry in a block, then gossips a proof-of-acceptance back to
   the client.
3. Once the client holds every proof it sends an unlock-to-commit to the
   output shard, which commits a ``commit`` entry in a block - the
   transaction is confirmed.

**RapidChain ("yanking")**

Input shards commit the lock and then forward ("yank") the inputs
*directly* to the output shard - no client round trip. The output shard
enqueues the final transaction once every yank arrived.

Both protocols charge one block slot per involved shard, reproducing the
paper's cost model (a 2-input/1-output cross-TX triples communication and
computation). Validity is guaranteed upstream by the workload generator,
so proof-of-rejection paths exist only for failure injection
(``abort_txids``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import SimulationError
from repro.simulator.config import SimulationConfig
from repro.simulator.events import EventQueue
from repro.simulator.ledger import CONFLICT, MISSING, OK, ShardLedger
from repro.simulator.network import Network
from repro.simulator.shard import KIND_COMMIT, KIND_LOCK, KIND_TX, Entry, Shard
from repro.utxo.transaction import OutPoint, Transaction

PROOF_BYTES = 200  # proof-of-acceptance / rejection message
UNLOCK_BYTES = 300  # unlock-to-commit / unlock-to-abort message
YANK_BYTES = 600  # yanked inputs + transaction


@dataclass(slots=True)
class _PendingCrossTx:
    """Client-side state for one in-flight cross-shard transaction."""

    output_shard: int
    awaiting: int
    rejected: bool = False
    #: shards whose locks succeeded (must be unlocked on abort)
    accepted_shards: list[int] = field(default_factory=list)


@dataclass(slots=True)
class _TxInfo:
    """Ledger-validation bookkeeping for one submitted transaction."""

    n_outputs: int
    output_shard: int
    #: shard -> the input outpoints that shard is responsible for
    inputs_by_shard: dict[int, list[OutPoint]]


class AtomicCommitProtocol:
    """Routes transactions through shards and reports confirmations."""

    def __init__(
        self,
        config: SimulationConfig,
        network: Network,
        shards: Sequence[Shard],
        events: EventQueue,
        on_confirmed: Callable[[int], None],
        on_aborted: Callable[[int], None] | None = None,
        abort_txids: set[int] | None = None,
    ) -> None:
        self._config = config
        self._network = network
        self._shards = shards
        self._events = events
        self._on_confirmed = on_confirmed
        self._on_aborted = on_aborted or (lambda txid: None)
        self._abort_txids = abort_txids or set()
        self._pending: dict[int, _PendingCrossTx] = {}
        self.n_cross = 0
        self.n_same_shard = 0
        self.n_aborted = 0
        self.n_parked = 0  # dependency-parking events (validation mode)
        # Bandwidth accounting (§III-B: a cross-TX should cost about 3x
        # a same-shard transaction in communication).
        self.bytes_same_shard = 0
        self.bytes_cross = 0
        # Ledger validation (config.validate_ledger): real per-shard
        # UTXO state, dependency parking, natural conflict rejection.
        self.validate_ledger = config.validate_ledger
        self.ledgers: list[ShardLedger] = [
            ShardLedger(shard.shard_id) for shard in shards
        ]
        self._tx_info: dict[int, _TxInfo] = {}
        # Per shard: missing outpoint -> entries parked on it.
        self._parked: list[dict[OutPoint, list[Entry]]] = [
            {} for _ in shards
        ]

    # -- submission --------------------------------------------------------

    def submit(
        self,
        tx: Transaction,
        output_shard: int,
        input_shards: set[int],
        inputs_by_shard: dict[int, list[OutPoint]] | None = None,
    ) -> None:
        """Start the commit protocol for a freshly placed transaction.

        ``inputs_by_shard`` maps each input shard to the outpoints it is
        responsible for; required when ledger validation is on.
        """
        if self.validate_ledger:
            if inputs_by_shard is None:
                raise SimulationError(
                    "ledger validation needs inputs_by_shard per submit"
                )
            self._tx_info[tx.txid] = _TxInfo(
                n_outputs=len(tx.outputs),
                output_shard=output_shard,
                inputs_by_shard=inputs_by_shard,
            )
        cross = bool(input_shards) and input_shards != {output_shard}
        if not cross:
            self.n_same_shard += 1
            self.bytes_same_shard += tx.size_bytes
            self._send_to_shard(
                output_shard, Entry(KIND_TX, tx.txid), tx.size_bytes
            )
            return
        self.n_cross += 1
        self.bytes_cross += len(input_shards) * tx.size_bytes
        self._pending[tx.txid] = _PendingCrossTx(
            output_shard=output_shard, awaiting=len(input_shards)
        )
        for shard in input_shards:
            self._send_to_shard(
                shard, Entry(KIND_LOCK, tx.txid), tx.size_bytes
            )

    # -- shard callbacks -----------------------------------------------------

    def entry_committed(self, shard_id: int, entry: Entry) -> None:
        """A shard committed a block entry; advance the state machine."""
        if entry.kind == KIND_TX:
            if self.validate_ledger and not self._apply_same_shard(
                shard_id, entry.txid
            ):
                return  # conflict: the abort path already ran
            self._on_confirmed(entry.txid)
            return
        if entry.kind == KIND_COMMIT:
            if self.validate_ledger:
                self._register_outputs(shard_id, entry.txid)
                self._tx_info.pop(entry.txid, None)
            self._on_confirmed(entry.txid)
            return
        if entry.kind != KIND_LOCK:
            raise SimulationError(f"unknown entry kind {entry.kind!r}")
        state = self._pending.get(entry.txid)
        if state is None:
            raise SimulationError(
                f"lock committed for unknown transaction {entry.txid}"
            )
        accepted = entry.txid not in self._abort_txids
        if accepted and self.validate_ledger:
            accepted = self._lock_inputs(shard_id, entry.txid)
        self._route_proof(shard_id, entry.txid, accepted)

    def _route_proof(self, shard_id: int, txid: int, accepted: bool) -> None:
        """Deliver a proof-of-acceptance/rejection for one lock."""
        state = self._require_pending(txid)
        if self._config.protocol == "omniledger":
            # Proof travels shard -> client; the client reacts.
            self.bytes_cross += PROOF_BYTES
            delay = self._network.delay(
                shard_id, Network.CLIENT, PROOF_BYTES
            )
        else:  # rapidchain: yank directly input shard -> output shard
            self.bytes_cross += YANK_BYTES
            delay = self._network.delay(
                shard_id, state.output_shard, YANK_BYTES
            )
        self._events.schedule(
            delay,
            lambda: self._proof_collected(txid, shard_id, accepted),
        )

    # -- coordinator state machine ---------------------------------------------
    # (the client under OmniLedger, the output shard under RapidChain)

    def _proof_collected(
        self, txid: int, shard_id: int, accepted: bool
    ) -> None:
        state = self._require_pending(txid)
        state.awaiting -= 1
        if accepted:
            state.accepted_shards.append(shard_id)
        else:
            state.rejected = True
        if state.awaiting > 0:
            return
        del self._pending[txid]
        if state.rejected:
            self._abort_and_unlock(txid, state)
            return
        if self._config.protocol == "omniledger":
            # Client sends unlock-to-commit to the output shard.
            self.bytes_cross += UNLOCK_BYTES
            self._send_to_shard(
                state.output_shard, Entry(KIND_COMMIT, txid), UNLOCK_BYTES
            )
        else:
            # Output shard already holds the yanked inputs: enqueue
            # the final transaction directly.
            self._try_enqueue(state.output_shard, Entry(KIND_COMMIT, txid))

    def _abort_and_unlock(self, txid: int, state: _PendingCrossTx) -> None:
        """Proof-of-rejection: reclaim every successfully locked input."""
        self.n_aborted += 1
        if self.validate_ledger and state.accepted_shards:
            info = self._tx_info[txid]
            source = (
                Network.CLIENT
                if self._config.protocol == "omniledger"
                else state.output_shard
            )
            for shard_id in state.accepted_shards:
                outpoints = list(info.inputs_by_shard.get(shard_id, []))
                self.bytes_cross += UNLOCK_BYTES
                delay = self._network.delay(
                    source, shard_id, UNLOCK_BYTES
                )
                self._events.schedule(
                    delay,
                    lambda s=shard_id, ops=outpoints: self.ledgers[
                        s
                    ].unspend(ops, txid),
                )
        self._tx_info.pop(txid, None)
        self._on_aborted(txid)

    # -- ledger validation ------------------------------------------------------

    def _apply_same_shard(self, shard_id: int, txid: int) -> bool:
        """Validate+apply a same-shard transaction at commit time."""
        info = self._tx_info[txid]
        outpoints = info.inputs_by_shard.get(shard_id, [])
        ledger = self.ledgers[shard_id]
        if ledger.classify(outpoints) != OK:
            # Conflict surfaced between enqueue and commit (a competing
            # spend won the block race).
            self.n_aborted += 1
            self._tx_info.pop(txid, None)
            delay = self._network.delay(
                shard_id, Network.CLIENT, PROOF_BYTES
            )
            self._events.schedule(delay, lambda: self._on_aborted(txid))
            return False
        ledger.spend(outpoints, txid)
        self._register_outputs(shard_id, txid)
        self._tx_info.pop(txid, None)
        return True

    def _lock_inputs(self, shard_id: int, txid: int) -> bool:
        """Validate+lock this shard's input slice at lock-commit time."""
        info = self._tx_info[txid]
        outpoints = info.inputs_by_shard.get(shard_id, [])
        ledger = self.ledgers[shard_id]
        verdict = ledger.classify(outpoints)
        if verdict == CONFLICT:
            return False
        if verdict == MISSING:
            raise SimulationError(
                f"lock for tx {txid} reached consensus with unregistered "
                f"inputs; parking must happen at enqueue time"
            )
        ledger.spend(outpoints, txid)
        return True

    def _register_outputs(self, shard_id: int, txid: int) -> None:
        """Create a committed transaction's outputs; wake parked entries."""
        info = self._tx_info.get(txid)
        if info is None:
            raise SimulationError(
                f"no ledger bookkeeping for committed transaction {txid}"
            )
        created = self.ledgers[shard_id].register_outputs(
            txid, info.n_outputs
        )
        parked_here = self._parked[shard_id]
        for outpoint in created:
            for entry in parked_here.pop(outpoint, []):
                self._try_enqueue(shard_id, entry)

    # -- helpers -----------------------------------------------------------

    def _send_to_shard(
        self, shard_id: int, entry: Entry, size_bytes: int
    ) -> None:
        delay = self._network.delay(Network.CLIENT, shard_id, size_bytes)
        self._events.schedule(
            delay, lambda: self._try_enqueue(shard_id, entry)
        )

    def _try_enqueue(self, shard_id: int, entry: Entry) -> None:
        """Admission control: validate/park before consuming block slots.

        Without ledger validation this is a plain enqueue. With it,
        entries whose inputs are not registered yet park until the parent
        commits (mempool-orphan behaviour); provably conflicting entries
        are rejected immediately without consuming consensus capacity.
        """
        if not self.validate_ledger or entry.kind == KIND_COMMIT:
            self._shards[shard_id].enqueue(entry)
            return
        info = self._tx_info.get(entry.txid)
        if info is None:
            raise SimulationError(
                f"no ledger bookkeeping for entry {entry}"
            )
        outpoints = info.inputs_by_shard.get(shard_id, [])
        ledger = self.ledgers[shard_id]
        verdict = ledger.classify(outpoints)
        if verdict == OK:
            self._shards[shard_id].enqueue(entry)
            return
        if verdict == MISSING:
            anchor = ledger.first_missing(outpoints)
            assert anchor is not None
            self._parked[shard_id].setdefault(anchor, []).append(entry)
            self.n_parked += 1
            return
        # CONFLICT: reject without consensus.
        if entry.kind == KIND_TX:
            self.n_aborted += 1
            self._tx_info.pop(entry.txid, None)
            delay = self._network.delay(
                shard_id, Network.CLIENT, PROOF_BYTES
            )
            self._events.schedule(
                delay, lambda: self._on_aborted(entry.txid)
            )
            return
        self._route_proof(shard_id, entry.txid, accepted=False)

    def _require_pending(self, txid: int) -> _PendingCrossTx:
        state = self._pending.get(txid)
        if state is None:
            raise SimulationError(
                f"protocol event for non-pending transaction {txid}"
            )
        return state

    @property
    def n_in_flight(self) -> int:
        """Cross-shard transactions between lock and commit phases."""
        return len(self._pending)

    def bandwidth_ratio(self) -> float:
        """Average cross-TX bytes over average same-shard bytes.

        The paper's §III-B claim is about 3x for a typical 2-input
        cross-TX. Returns 0 when either class is empty.
        """
        if not self.n_cross or not self.n_same_shard:
            return 0.0
        per_cross = self.bytes_cross / self.n_cross
        per_same = self.bytes_same_shard / self.n_same_shard
        return per_cross / per_same if per_same else 0.0
