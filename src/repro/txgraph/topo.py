"""DAG and topological-order verification.

The entire OptChain pipeline relies on one structural invariant: the
transaction stream arrives in a topological order of the TaN DAG (a
transaction never precedes its inputs). These helpers verify that
invariant for arbitrary edge streams; the dataset loader runs them on
untrusted input files, and the property-based tests run them on generated
workloads.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import CycleError
from repro.txgraph.tan import TaNGraph
from repro.utxo.transaction import Transaction


def is_topological_stream(txs: Iterable[Transaction]) -> bool:
    """True when every transaction only spends from earlier ones.

    Works on any iterable without materializing it; ids do not need to be
    dense, only already-seen relative to their inputs.
    """
    seen: set[int] = set()
    for tx in txs:
        for parent in tx.input_txids:
            if parent not in seen:
                return False
        seen.add(tx.txid)
    return True


def verify_dag(graph: TaNGraph) -> None:
    """Raise :class:`CycleError` unless ``graph`` is acyclic.

    :class:`TaNGraph` enforces backwards edges at insertion time; this
    re-verifies independently so tests do not have to trust the
    insertion-time checks. Because node ids are arrival order, acyclicity
    is equivalent to "every edge points strictly backwards".
    """
    for u in graph.nodes():
        for parent in graph.inputs_of(u):
            if parent >= u:
                raise CycleError(
                    f"edge ({u}, {parent}) does not point backwards; graph "
                    f"is not in topological arrival order"
                )


def kahn_topological_order(graph: TaNGraph) -> list[int]:
    """Topological order via Kahn's algorithm over the reverse orientation.

    Processes a node once all its input transactions are processed, so the
    returned order is a valid replay order for the UTXO set. Used by tests
    to check it agrees with arrival order on generated graphs (same set,
    both valid topological orders).
    """
    n = graph.n_nodes
    remaining = [graph.in_degree(u) for u in graph.nodes()]
    ready = [u for u in graph.nodes() if remaining[u] == 0]
    order: list[int] = []
    cursor = 0
    while cursor < len(ready):
        u = ready[cursor]
        cursor += 1
        order.append(u)
        for spender in graph.spenders_of(u):
            remaining[spender] -= 1
            if remaining[spender] == 0:
                ready.append(spender)
    if len(order) != n:
        raise CycleError(
            f"Kahn's algorithm processed {len(order)} of {n} nodes; "
            f"graph contains a cycle"
        )
    return order


def topological_positions(order: Sequence[int]) -> dict[int, int]:
    """Map node id -> position for an explicit order (test helper)."""
    return {txid: position for position, txid in enumerate(order)}
