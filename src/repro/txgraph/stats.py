"""TaN network statistics - the quantities plotted in Figure 2.

The paper characterizes the Bitcoin TaN graph with three plots: (2a) the
in-/out-degree distributions in log-log scale, (2b) their cumulative
versions, and (2c) the running average degree as the network grows. These
functions compute the identical series from any :class:`TaNGraph` so the
Fig. 2 experiment can print them for the synthetic workload and, when the
real MIT dataset is available, for Bitcoin itself.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.txgraph.tan import TaNGraph


def degree_distribution(
    graph: TaNGraph, direction: str = "in"
) -> dict[int, int]:
    """Histogram ``degree -> node count``.

    ``direction`` is ``"in"`` for ``|Nin|`` (inputs) or ``"out"`` for
    ``|Nout|`` (spenders).
    """
    counts: Counter[int] = Counter()
    if direction == "in":
        for txid in graph.nodes():
            counts[graph.in_degree(txid)] += 1
    elif direction == "out":
        for txid in graph.nodes():
            counts[graph.out_degree(txid)] += 1
    else:
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
    return dict(sorted(counts.items()))


def cumulative_degree_distribution(
    graph: TaNGraph, direction: str = "in"
) -> list[tuple[int, float]]:
    """Fraction of nodes with degree <= d, for each observed degree d.

    This is the Fig. 2b series; the paper reads off e.g. "93.1% of nodes
    have in-degree lower than 3" from it.
    """
    histogram = degree_distribution(graph, direction)
    total = graph.n_nodes
    series: list[tuple[int, float]] = []
    running = 0
    for degree, count in histogram.items():
        running += count
        series.append((degree, running / total if total else 0.0))
    return series


def fraction_below(
    graph: TaNGraph, direction: str, threshold: int
) -> float:
    """Fraction of nodes with degree strictly below ``threshold``."""
    histogram = degree_distribution(graph, direction)
    total = graph.n_nodes
    if total == 0:
        return 0.0
    below = sum(count for degree, count in histogram.items() if degree < threshold)
    return below / total


def average_degree_timeline(
    graph: TaNGraph, n_points: int = 100
) -> list[tuple[int, float]]:
    """Running average degree after each prefix of the stream (Fig. 2c).

    Returns ``(n_nodes_so_far, average_degree)`` samples at ``n_points``
    evenly spaced prefixes. Average degree of a prefix counts only edges
    between nodes inside the prefix, which is automatic because TaN edges
    always point backwards.
    """
    n = graph.n_nodes
    if n == 0 or n_points <= 0:
        return []
    step = max(1, n // n_points)
    samples: list[tuple[int, float]] = []
    edges_so_far = 0
    for txid in graph.nodes():
        edges_so_far += graph.in_degree(txid)
        position = txid + 1
        if position % step == 0 or position == n:
            samples.append((position, edges_so_far / position))
    return samples


def windowed_average_degree(
    graph: TaNGraph, window: int = 1_000
) -> list[tuple[int, float]]:
    """Average in-degree per disjoint arrival window.

    Unlike the running average of :func:`average_degree_timeline`
    (Fig. 2c's cumulative view), a per-window series makes localized
    events - the July-2015 flooding attack - stand out sharply. Returns
    ``(window_end_position, average_in_degree_of_window)``.
    """
    if window <= 0:
        raise ValueError(f"window must be > 0, got {window}")
    n = graph.n_nodes
    samples: list[tuple[int, float]] = []
    edge_sum = 0
    count = 0
    for txid in graph.nodes():
        edge_sum += graph.in_degree(txid)
        count += 1
        if count == window or txid == n - 1:
            samples.append((txid + 1, edge_sum / count))
            edge_sum = 0
            count = 0
    return samples


@dataclass(frozen=True, slots=True)
class GraphSummary:
    """Headline numbers the paper quotes for the Bitcoin TaN network."""

    n_nodes: int
    n_edges: int
    average_degree: float
    n_coinbase: int
    n_unspent_frontier: int
    n_isolated: int
    fraction_in_degree_below_3: float
    fraction_out_degree_below_3: float
    fraction_out_degree_below_10: float


def graph_summary(graph: TaNGraph) -> GraphSummary:
    """Compute the summary table for a TaN graph.

    Mirrors the §IV-A prose: node/edge counts, average degree (about 2.3
    for Bitcoin), coinbase count, transactions with unspent outputs, and
    the quantile facts from Fig. 2b.
    """
    n = graph.n_nodes
    isolated = 0
    coinbase = 0
    frontier = 0
    for txid in graph.nodes():
        indeg = graph.in_degree(txid)
        outdeg = graph.out_degree(txid)
        if indeg == 0:
            coinbase += 1
        if outdeg == 0:
            frontier += 1
        if indeg == 0 and outdeg == 0:
            isolated += 1
    return GraphSummary(
        n_nodes=n,
        n_edges=graph.n_edges,
        average_degree=(graph.n_edges / n) if n else 0.0,
        n_coinbase=coinbase,
        n_unspent_frontier=frontier,
        n_isolated=isolated,
        fraction_in_degree_below_3=fraction_below(graph, "in", 3),
        fraction_out_degree_below_3=fraction_below(graph, "out", 3),
        fraction_out_degree_below_10=fraction_below(graph, "out", 10),
    )
