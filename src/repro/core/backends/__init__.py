"""Optional accelerated placement backends.

The default backend is the pure-python fused hot path in
:mod:`repro.core.optchain` - always present, always the golden
reference. This package adds a ``numpy`` backend: typed-array scorer
state plus a small compiled kernel for the fused batch loop,
bit-identical to the python path and selected per-strategy through
:class:`repro.core.spec.StrategySpec` (``backend=numpy``) or
``make_placer(..., backend="numpy")``.

numpy is an *optional* dependency (``pip install repro-optchain[fast]``)
and the kernel needs a C compiler on first use; when either is missing
:func:`backend_available` reports why and spec resolution either falls
back (``backend=auto``) or raises a configuration error
(``backend=numpy``).
"""

from __future__ import annotations

_numpy_error: str | None = None
try:
    import numpy  # noqa: F401
except ImportError as exc:  # pragma: no cover - exercised on bare installs
    _numpy_error = f"numpy is not installed ({exc}); pip install '.[fast]'"


def backend_available(name: str) -> bool:
    """Whether a placement backend can be constructed here."""
    return backend_unavailable_reason(name) is None


def backend_unavailable_reason(name: str) -> str | None:
    """Why ``name`` cannot be used (``None`` when it can).

    ``python`` is always available. ``numpy`` needs the numpy package;
    the compiled kernel is *not* required (strategies fall back to the
    generic per-transaction loop over typed-array state when the
    kernel cannot be built, slower but identical).
    """
    if name == "python":
        return None
    if name == "numpy":
        return _numpy_error
    return f"unknown backend {name!r} (expected 'python' or 'numpy')"


__all__ = ["backend_available", "backend_unavailable_reason"]
