"""Benchmark configuration.

Benchmarks default to the ``tiny`` experiment scale so the whole suite
regenerates every table and figure in minutes. Set ``REPRO_SCALE=default``
(or ``paper``) for the full-size runs (see the scale definitions in
``repro.experiments.configs``; PERFORMANCE.md documents the placement
throughput bench, which does not use pytest).

Each benchmark runs its experiment exactly once (``pedantic`` with one
round): the measured quantity is "time to regenerate the artifact", and
experiment runs are far too heavy for statistical repetition.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.configs import get_scale


@pytest.fixture(scope="session")
def scale():
    """The experiment scale shared by every benchmark in the session."""
    return get_scale(os.environ.get("REPRO_SCALE") or "tiny")


def run_once(benchmark, func):
    """Benchmark an experiment exactly once and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
