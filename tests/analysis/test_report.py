"""Tests for the simulation-result report rendering."""

from __future__ import annotations

from repro.analysis.report import compare_results, summarize_result
from repro.core.baselines import OmniLedgerRandomPlacer
from repro.core.optchain import OptChainPlacer
from repro.datasets.synthetic import GeneratorConfig, synthetic_stream
from repro.simulator import SimulationConfig, run_simulation


def run_once(placer):
    stream = synthetic_stream(
        400,
        seed=2,
        config=GeneratorConfig(
            n_wallets=150, coinbase_interval=100, bootstrap_coinbase=20
        ),
    )
    config = SimulationConfig(
        n_shards=4,
        tx_rate=100.0,
        block_capacity=50,
        block_size_bytes=25_000,
        max_sim_time_s=2_000.0,
    )
    return run_simulation(stream, placer, config)


class TestSummarize:
    def test_contains_headline_metrics(self):
        result = run_once(OmniLedgerRandomPlacer(4))
        text = summarize_result(result)
        assert "throughput" in text
        assert "avg latency" in text
        assert "cross-shard" in text
        assert "400/400" in text

    def test_custom_title(self):
        result = run_once(OmniLedgerRandomPlacer(4))
        text = summarize_result(result, title="My Run")
        assert text.splitlines()[0] == "My Run"

    def test_handles_empty_run(self):
        from repro.simulator import run_simulation

        config = SimulationConfig(n_shards=2, max_sim_time_s=10.0)
        result = run_simulation([], OmniLedgerRandomPlacer(2), config)
        text = summarize_result(result)
        assert "0/0" in text


class TestCompare:
    def test_side_by_side(self):
        results = {
            "optchain": run_once(OptChainPlacer(4)),
            "omniledger": run_once(OmniLedgerRandomPlacer(4)),
        }
        text = compare_results(results)
        assert "optchain" in text
        assert "omniledger" in text
        assert "cross-shard" in text

    def test_empty(self):
        assert compare_results({}) == ""
