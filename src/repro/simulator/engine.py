"""Simulation engine: wiring and the run loop.

:func:`run_simulation` assembles network, shards, protocol, clients and
metrics for one configuration, optionally wires a live
:class:`~repro.simulator.metrics.LatencyObserver` into an OptChain
placer, runs the event loop to completion (or ``max_sim_time_s``), and
returns a :class:`SimulationResult` with every raw series the
experiments need.

The wiring targets the typed event queue: the protocol's commit callback
is bound into each shard directly (no per-commit adapter frame), metrics
get the dense-txid fast path whenever the stream's ids form a contiguous
range (workload generators always produce one), and confirmations go
through :meth:`~repro.simulator.metrics.MetricsCollector.record_commit_now`
instead of a closure over ``events.now``. The pre-overhaul loop is
preserved as :func:`repro.simulator._seed_reference.run_simulation_seed`;
equivalence tests assert both produce bit-identical results.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass

from repro.core.placement import PlacementStrategy
from repro.errors import SimulationError
from repro.rng import derive_rng, make_rng
from repro.simulator.client import TransactionIssuer
from repro.simulator.committees import CommitteeAssignment
from repro.simulator.config import SimulationConfig
from repro.simulator.consensus import ConsensusModel
from repro.simulator.events import EventQueue
from repro.simulator.metrics import LatencyObserver, MetricsCollector
from repro.simulator.network import Network
from repro.simulator.protocol import AtomicCommitProtocol
from repro.simulator.shard import Shard
from repro.utxo.transaction import Transaction


@dataclass(slots=True)
class SimulationResult:
    """Everything measured in one run.

    Raw series (latencies, commit times, queue samples) are kept so each
    figure's post-processing lives in :mod:`repro.analysis`, not here.
    """

    config: SimulationConfig
    placer_name: str
    n_issued: int
    n_committed: int
    n_aborted: int
    n_cross: int
    n_same_shard: int
    n_parked: int
    duration: float
    throughput: float
    latencies: list[float]
    commit_times: list[float]
    queue_sample_times: list[float]
    queue_samples: list[list[int]]
    blocks_per_shard: list[int]
    entries_per_shard: list[int]
    bytes_same_shard: int
    bytes_cross: int
    bandwidth_ratio: float
    drained: bool

    @property
    def average_latency(self) -> float:
        """Mean confirmation latency over committed transactions."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def max_latency(self) -> float:
        """Worst confirmation latency."""
        return max(self.latencies) if self.latencies else 0.0

    @property
    def cross_fraction(self) -> float:
        """Fraction of submitted transactions that were cross-shard."""
        total = self.n_cross + self.n_same_shard
        return self.n_cross / total if total else 0.0


def _dense_txid_base(stream: list[Transaction]) -> int | None:
    """Lowest txid when the stream's ids form a contiguous range.

    Dataset generators assign ids in arrival order, so real workloads
    always qualify for the preallocated-slot metrics path; hand-built
    sparse streams fall back to dict bookkeeping (``None``).
    """
    if not stream:
        return None
    txids = [tx.txid for tx in stream]
    lowest = min(txids)
    if max(txids) - lowest + 1 == len(stream):
        return lowest
    return None


def run_simulation(
    stream: list[Transaction],
    placer: PlacementStrategy,
    config: SimulationConfig,
    abort_txids: set[int] | None = None,
    outages: list[tuple[int, float, float]] | None = None,
) -> SimulationResult:
    """Simulate one configuration over a transaction stream.

    ``abort_txids`` marks transactions an input shard rejects (failure
    injection); ``outages`` is a list of ``(shard, start_s, end_s)``
    committee pauses. An :class:`OptChainPlacer` is automatically wired
    to the live latency observer (replacing its offline load proxy) so
    its L2S score sees real queues, as §IV-C intends.
    """
    config.validate()
    if placer.n_placed:
        raise SimulationError(
            "placer has prior placements; use a fresh placer per run"
        )
    events = EventQueue()
    rng = make_rng(config.seed)
    network = Network(config, derive_rng(rng, "network"))
    consensus = ConsensusModel(config)
    metrics = MetricsCollector(
        len(stream), txid_base=_dense_txid_base(stream), clock=events
    )
    if config.byzantine_fraction > 0.0:
        # Form explicit committees and refuse configurations whose
        # sampled committees cross the BFT threshold - simulating them
        # would produce results no real deployment could see.
        committees = CommitteeAssignment(
            config.n_shards,
            config.n_shards * config.validators_per_shard,
            byzantine_fraction=config.byzantine_fraction,
            seed=config.seed,
        )
        committees.require_safe()

    shards = [
        Shard(shard_id, config, consensus, events, _unwired)
        for shard_id in range(config.n_shards)
    ]
    protocol = AtomicCommitProtocol(
        config,
        network,
        shards,
        events,
        on_confirmed=metrics.record_commit_now,
        on_aborted=metrics.record_abort,
        abort_txids=abort_txids,
    )
    # Bind the protocol's state machine straight into each shard: the
    # seed wired a closure here, one adapter frame per committed entry.
    for shard in shards:
        shard.set_on_committed(protocol.entry_committed)
    # Any latency-aware placer (OptChain, the SPV wallet adapter, custom
    # strategies) gets the live queue observer in place of its offline
    # proxy.
    if hasattr(placer, "use_latency_provider"):
        placer.use_latency_provider(LatencyObserver(config, network, shards))
    issuer = TransactionIssuer(
        stream, placer, config, events, protocol, metrics
    )

    def sample_queues(_a: object = None, _b: object = None) -> None:
        metrics.record_queue_sample(
            events.now, [shard.queue_size for shard in shards]
        )
        if not metrics.is_complete():
            events.schedule_event(
                config.queue_sample_interval_s, sample_queues
            )

    issuer.start()
    if stream:
        events.schedule_event(0.0, sample_queues)
    for shard_id, start, end in outages or []:
        if not 0 <= shard_id < config.n_shards or end <= start:
            raise SimulationError(
                f"bad outage spec ({shard_id}, {start}, {end})"
            )
        events.schedule_at(start, shards[shard_id].pause)
        events.schedule_at(end, shards[shard_id].resume)

    # The run allocates millions of short-lived records that reference
    # counting alone reclaims; pausing the cycle collector avoids
    # hundreds of generation scans over the (large, static) stream and
    # placer state. Purely a speed knob: results are unaffected.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        events.run(until=config.max_sim_time_s)
    finally:
        if gc_was_enabled:
            gc.enable()

    return SimulationResult(
        config=config,
        placer_name=getattr(placer, "name", type(placer).__name__),
        n_issued=metrics.n_issued,
        n_committed=metrics.n_committed,
        n_aborted=metrics.n_aborted,
        n_cross=protocol.n_cross,
        n_same_shard=protocol.n_same_shard,
        n_parked=protocol.n_parked,
        duration=events.now,
        throughput=metrics.throughput(),
        latencies=metrics.latencies(),
        commit_times=metrics.commit_times(),
        queue_sample_times=metrics.queue_sample_times,
        queue_samples=metrics.queue_samples,
        blocks_per_shard=[shard.n_blocks for shard in shards],
        entries_per_shard=[shard.n_entries_committed for shard in shards],
        bytes_same_shard=protocol.bytes_same_shard,
        bytes_cross=protocol.bytes_cross,
        bandwidth_ratio=protocol.bandwidth_ratio(),
        drained=metrics.is_complete(),
    )


def _unwired(shard_id: int, entry) -> None:
    """Placeholder commit callback replaced during engine wiring."""
    raise SimulationError(
        f"shard {shard_id} committed {entry} before the protocol was wired"
    )
