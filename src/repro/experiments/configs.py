"""Scale presets for the experiments.

The paper's evaluation runs 10M Bitcoin transactions through an
OverSim/OMNeT++ cluster - far beyond what an in-process pure-Python
discrete-event simulation should attempt by default. Each preset scales
the workload *and* the system together (transaction count, block
capacity, transaction rates) by the same factor, which preserves every
relationship the paper evaluates: utilization at a given (rate, shards)
point, who backlogs first, latency ratios between methods, and queue
imbalance dynamics. EXPERIMENTS.md records measured-vs-paper numbers at
the ``default`` scale.

- ``tiny``   - seconds per figure; used by the test suite and the
  pytest benchmarks.
- ``default``- minutes per figure; the scale EXPERIMENTS.md reports.
- ``paper``  - the paper's own numbers (10M txs, 2000-6000 tps,
  2000-tx blocks). Hours to days in pure Python; provided for
  completeness and spot checks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.scorer import DEFAULT_SUPPORT_CAP
from repro.datasets.synthetic import GeneratorConfig
from repro.errors import ConfigurationError
from repro.simulator.config import SimulationConfig


@dataclass(frozen=True, slots=True)
class ExperimentScale:
    """One coherent workload + system sizing."""

    name: str
    n_transactions: int
    generator: GeneratorConfig
    #: transaction rates (the paper's 2000..6000 tps axis, scaled)
    tx_rates: tuple[float, ...]
    #: shard counts (the paper's 4..16 axis; Tables I/II go to 64)
    shard_counts: tuple[int, ...]
    #: shard counts for the static tables (paper: 4..64)
    table_shard_counts: tuple[int, ...]
    block_capacity: int
    block_size_bytes: int
    consensus_per_tx_s: float
    #: Fig. 5 commit-histogram bin, scaled from the paper's 50 s
    commit_bin_s: float
    #: guard for overload runs: stop after this much simulated time
    max_sim_time_s: float
    #: Table II: prefix partitioned offline, window measured online
    warm_prefix: int
    warm_window: int
    #: retained T2S entries per vector for the ``optchain-topk``
    #: strategy (bounded-support scoring; scales with the shard axis so
    #: the cap stays meaningful relative to ``max(table_shard_counts)``)
    topk_support_cap: int = DEFAULT_SUPPORT_CAP

    def simulation(
        self, n_shards: int, tx_rate: float, **overrides
    ) -> SimulationConfig:
        """Build the simulator config for one grid point."""
        parameters = dict(
            n_shards=n_shards,
            tx_rate=tx_rate,
            block_capacity=self.block_capacity,
            block_size_bytes=self.block_size_bytes,
            consensus_per_tx_s=self.consensus_per_tx_s,
            commit_bin_s=self.commit_bin_s,
            max_sim_time_s=self.max_sim_time_s,
        )
        parameters.update(overrides)
        return SimulationConfig(**parameters)


_TINY = ExperimentScale(
    name="tiny",
    n_transactions=4_000,
    generator=GeneratorConfig(
        n_wallets=800,
        coinbase_interval=200,
        bootstrap_coinbase=100,
        burst_length=650,
    ),
    tx_rates=(100.0, 200.0, 300.0),
    shard_counts=(4, 16),
    table_shard_counts=(4, 16),
    block_capacity=100,
    block_size_bytes=50_000,
    consensus_per_tx_s=0.01,
    commit_bin_s=5.0,
    max_sim_time_s=2_000.0,
    warm_prefix=2_500,
    warm_window=1_500,
    topk_support_cap=4,
)

_DEFAULT = ExperimentScale(
    name="default",
    n_transactions=60_000,
    generator=GeneratorConfig(
        n_wallets=4_000,
        coinbase_interval=200,
        bootstrap_coinbase=200,
        burst_length=10_000,
    ),
    tx_rates=(200.0, 300.0, 400.0, 500.0, 600.0),
    shard_counts=(4, 6, 8, 10, 12, 14, 16),
    table_shard_counts=(4, 8, 16, 32, 64),
    block_capacity=200,
    block_size_bytes=100_000,
    consensus_per_tx_s=0.005,
    commit_bin_s=10.0,
    max_sim_time_s=10_000.0,
    warm_prefix=40_000,
    warm_window=20_000,
    topk_support_cap=8,
)

_PAPER = ExperimentScale(
    name="paper",
    n_transactions=10_000_000,
    generator=GeneratorConfig(
        n_wallets=200_000,
        coinbase_interval=2_000,
        bootstrap_coinbase=5_000,
        burst_length=1_500_000,
    ),
    tx_rates=(2_000.0, 3_000.0, 4_000.0, 5_000.0, 6_000.0),
    shard_counts=(4, 6, 8, 10, 12, 14, 16),
    table_shard_counts=(4, 8, 16, 32, 64),
    block_capacity=2_000,
    block_size_bytes=1_000_000,
    consensus_per_tx_s=0.0005,
    commit_bin_s=50.0,
    max_sim_time_s=50_000.0,
    warm_prefix=8_000_000,
    warm_window=1_000_000,
    topk_support_cap=16,
)

SCALES: dict[str, ExperimentScale] = {
    scale.name: scale for scale in (_TINY, _DEFAULT, _PAPER)
}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve a scale by name, env var ``REPRO_SCALE``, or default.

    Precedence: explicit ``name`` > ``REPRO_SCALE`` > ``"default"``.
    """
    resolved = name or os.environ.get("REPRO_SCALE") or "default"
    try:
        return SCALES[resolved]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {resolved!r}; known: {sorted(SCALES)}"
        )
