"""Clients for the placement service: blocking and asyncio, both codecs.

:class:`PlacementClient` is the simple blocking client - one socket,
one request in flight, good for scripts, ops, and tests.

:class:`AsyncPlacementClient` pipelines: requests are written as they
are made and a background reader task resolves responses by ``id``, so
an open-loop load generator can keep the wire full without waiting for
each response (see :mod:`repro.service.loadgen`).

:class:`BinaryPlacementClient` and :class:`AsyncBinaryPlacementClient`
are the same two shapes over the binary frame codec - the fast lane
(the server auto-detects the codec per connection). Use
:func:`async_client_class` / :func:`client_class` to pick by protocol
name.

All four raise :class:`~repro.errors.ServiceError` subclasses on
failure responses: ``code: "protocol"`` maps to
:class:`~repro.errors.ProtocolError`, ``"retry"`` to
:class:`~repro.errors.RetryLaterError`, ``"overload"`` to
:class:`~repro.errors.OverloadError`, everything else to
:class:`~repro.errors.EngineError`.

All four can also retry transparently (``retries=N``): a ``place`` that
fails with a *retryable* error - ``retry``/``overload`` replies,
timeouts, connection resets - is resubmitted after a jittered
exponential backoff (reconnecting first if the transport died). This is
safe because the server answers a fully-placed duplicate range
idempotently with the recorded shards, so a retry after a lost response
cannot double-place or diverge. Hard errors (``protocol``, ``engine``)
never retry.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from typing import Any, Sequence

from repro.errors import (
    ConfigurationError,
    ConnectionLostError,
    EngineError,
    OverloadError,
    ProtocolError,
    RetryLaterError,
    ServiceError,
)
from repro.service.wire import (
    FRAME_HEADER_BYTES,
    decode_frame_header,
    decode_response,
    encode_batch,
    encode_control_request,
    encode_place_request,
)
from repro.utxo.transaction import Transaction

PROTOCOLS = ("binary", "json")

#: Errors a client may transparently retry: explicit retryable replies,
#: plus any transport-level failure (ConnectionError/TimeoutError are
#: OSError subclasses). Protocol and engine errors are never retried.
RETRYABLE_ERRORS = (
    RetryLaterError,
    ConnectionLostError,
    ConnectionError,
    OSError,
)


def _raise_for(response: dict) -> dict:
    if not isinstance(response, dict):
        raise ServiceError(f"malformed server response: {response!r}")
    if response.get("ok"):
        return response
    error = response.get("error", "unknown server error")
    code = response.get("code")
    if code == "protocol":
        raise ProtocolError(error)
    if code == "retry":
        raise RetryLaterError(error)
    if code == "overload":
        raise OverloadError(error)
    raise EngineError(error)


def _backoff_delay(
    attempt: int, base: float, maximum: float, rng: random.Random
) -> float:
    """Jittered exponential backoff: full delay in [50%, 100%] of the
    capped exponential step, so a fleet of retrying clients does not
    re-stampede a recovering partition in lockstep."""
    step = min(maximum, base * (2**attempt))
    return step * (0.5 + rng.random() / 2)


class _BlockingClientBase:
    """Shared transport + retry plumbing of the two blocking clients."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9171,
        timeout: float = 60.0,
        *,
        retries: int = 0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        backoff_seed: "int | None" = None,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retries = retries
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._rng = random.Random(backoff_seed)
        #: Total transparent retries performed (loadgen reporting).
        self.retries_used = 0
        #: Message of the most recent retried error, if any.
        self.last_error: "str | None" = None
        self._sock: "socket.socket | None" = None
        self._file: Any = None
        self._next_id = 0
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._file = self._sock.makefile("rwb")

    def reconnect(self) -> None:
        self.close()
        self._connect()

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _with_retries(self, send):
        """Run ``send`` with up to ``self.retries`` transparent retries.

        Safe only for idempotent requests (``place``: the server
        answers resubmitted fully-placed ranges from its recorded
        assignments). Transport failures tear the connection down and
        reconnect before the next attempt.
        """
        for attempt in range(self.retries + 1):
            reconnect = False
            try:
                if self._sock is None:
                    self._connect()
                return send()
            except (RetryLaterError, OverloadError) as exc:
                retryable: Exception = exc
            except (ConnectionLostError, ConnectionError, OSError) as exc:
                retryable = exc
                reconnect = True
            if attempt >= self.retries:
                raise retryable
            self.retries_used += 1
            self.last_error = str(retryable)
            if reconnect:
                self.close()
            time.sleep(
                _backoff_delay(
                    attempt,
                    self._backoff_base,
                    self._backoff_max,
                    self._rng,
                )
            )
        raise AssertionError("unreachable")  # pragma: no cover

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PlacementClient(_BlockingClientBase):
    """Blocking client; usable as a context manager."""

    # -- plumbing ----------------------------------------------------------

    def request(self, message: dict[str, Any]) -> dict:
        """Send one request and wait for its response (raises on error)."""
        self._next_id += 1
        message = dict(message, id=self._next_id)
        self._file.write(
            json.dumps(message, separators=(",", ":")).encode() + b"\n"
        )
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionLostError("server closed the connection")
        response = json.loads(line)
        if response.get("id") != self._next_id:
            raise ServiceError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        return _raise_for(response)

    # -- operations --------------------------------------------------------

    def place(
        self, txs: Sequence[Transaction], full_outputs: bool = False
    ) -> list[int]:
        """Place a contiguous batch; returns its shard assignment."""
        return self._with_retries(
            lambda: self.request(
                {"op": "place", "txs": encode_batch(txs, full_outputs)}
            )
        )["shards"]

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def checkpoint(self, path: "str | None" = None) -> dict:
        message: dict[str, Any] = {"op": "checkpoint"}
        if path is not None:
            message["path"] = str(path)
        return self.request(message)

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})


class _AsyncClientBase:
    """Shared transport + retry plumbing of the two asyncio clients."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        host: str = "127.0.0.1",
        port: int = 9171,
        limit: int = 8 * 1024 * 1024,
        retries: int = 0,
        request_timeout: "float | None" = None,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        backoff_seed: "int | None" = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port
        self._limit = limit
        self.retries = retries
        self._request_timeout = request_timeout
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._rng = random.Random(backoff_seed)
        #: Total transparent retries performed (loadgen reporting).
        self.retries_used = 0
        #: Message of the most recent retried error, if any.
        self.last_error: "str | None" = None
        self._next_id = 0
        self._inflight: dict[int, asyncio.Future] = {}
        self._closed = False
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 9171,
        limit: int = 8 * 1024 * 1024,
        **kwargs: Any,
    ):
        reader, writer = await asyncio.open_connection(
            host, port, limit=limit
        )
        return cls(
            reader, writer, host=host, port=port, limit=limit, **kwargs
        )

    async def reconnect(self) -> None:
        """Tear down the dead transport and dial the server again."""
        await self.close()
        reader, writer = await asyncio.open_connection(
            self._host, self._port, limit=self._limit
        )
        self._reader = reader
        self._writer = writer
        self._closed = False
        self._reader_task = asyncio.create_task(self._read_loop())

    def _fail_inflight(self) -> None:
        # Mark closed *before* failing in-flight futures, so a
        # submit() racing this shutdown cannot register a future
        # that would never resolve.
        self._closed = True
        for future in self._inflight.values():
            if not future.done():
                future.set_exception(
                    ConnectionLostError(
                        "connection closed before response"
                    )
                )
        self._inflight.clear()

    async def _await_response(self, future: "asyncio.Future[dict]") -> dict:
        if self._request_timeout is not None:
            return await asyncio.wait_for(future, self._request_timeout)
        return await future

    async def _place_with_retries(self, place_once):
        """Closed-loop place with transparent retries (see module doc).

        Only safe for ``place``: resubmitting a fully-placed range is
        answered idempotently by the server. Transport failures and
        timeouts reconnect before the next attempt; pipelined siblings
        on the same connection fail with a retryable error themselves.
        """
        for attempt in range(self.retries + 1):
            reconnect = False
            try:
                if self._closed:
                    await self.reconnect()
                return await place_once()
            except (RetryLaterError, OverloadError) as exc:
                retryable: Exception = exc
            except (ConnectionLostError, ConnectionError, OSError) as exc:
                retryable = exc
                reconnect = True
            if attempt >= self.retries:
                raise retryable
            self.retries_used += 1
            self.last_error = str(retryable)
            if reconnect and not self._closed:
                await self.close()
            await asyncio.sleep(
                _backoff_delay(
                    attempt,
                    self._backoff_base,
                    self._backoff_max,
                    self._rng,
                )
            )
        raise AssertionError("unreachable")  # pragma: no cover

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class AsyncPlacementClient(_AsyncClientBase):
    """Pipelining asyncio client.

    Create with :meth:`connect`; every public operation may be issued
    concurrently from many tasks over one connection.
    """

    # -- plumbing ----------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                future = self._inflight.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, asyncio.CancelledError, ValueError):
            pass
        finally:
            self._fail_inflight()

    def submit(self, message: dict[str, Any]) -> "asyncio.Future[dict]":
        """Write a request now; returns a future for its raw response.

        The open-loop load generator uses this directly to decouple the
        send schedule from response arrival.
        """
        self._next_id += 1
        request_id = self._next_id
        message = dict(message, id=request_id)
        future: "asyncio.Future[dict]" = (
            asyncio.get_running_loop().create_future()
        )
        if self._closed:
            # The reader already drained _inflight; writing to a dead
            # transport would not raise, so the future would hang
            # forever if we registered it.
            future.set_exception(
                ConnectionLostError("connection closed before response")
            )
            return future
        self._inflight[request_id] = future
        self._writer.write(
            json.dumps(message, separators=(",", ":")).encode() + b"\n"
        )
        return future

    async def request(self, message: dict[str, Any]) -> dict:
        future = self.submit(message)
        await self._writer.drain()
        return _raise_for(await self._await_response(future))

    # -- operations --------------------------------------------------------

    async def place(
        self, txs: Sequence[Transaction], full_outputs: bool = False
    ) -> list[int]:
        message = {"op": "place", "txs": encode_batch(txs, full_outputs)}

        async def place_once() -> list[int]:
            return (await self.request(message))["shards"]

        return await self._place_with_retries(place_once)

    def place_nowait(
        self, txs: Sequence[Transaction], full_outputs: bool = False
    ) -> "asyncio.Future[dict]":
        """Pipelined place: returns the raw-response future."""
        return self.submit(
            {"op": "place", "txs": encode_batch(txs, full_outputs)}
        )

    async def stats(self) -> dict:
        return (await self.request({"op": "stats"}))["stats"]

    async def checkpoint(self, path: "str | None" = None) -> dict:
        message: dict[str, Any] = {"op": "checkpoint"}
        if path is not None:
            message["path"] = str(path)
        return await self.request(message)

    async def ping(self) -> dict:
        return await self.request({"op": "ping"})

    async def shutdown(self) -> None:
        await self.request({"op": "shutdown"})


class BinaryPlacementClient(_BlockingClientBase):
    """Blocking client over the binary frame codec; context manager."""

    # -- plumbing ----------------------------------------------------------

    def _roundtrip(self, frame: bytes) -> dict:
        self._file.write(frame)
        self._file.flush()
        header = self._file.read(FRAME_HEADER_BYTES)
        if len(header) != FRAME_HEADER_BYTES:
            raise ConnectionLostError("server closed the connection")
        kind, response_id, length = decode_frame_header(header)
        payload = self._file.read(length) if length else b""
        if len(payload) != length:
            raise ConnectionLostError(
                "server closed the connection mid-frame"
            )
        if response_id != self._next_id:
            raise ServiceError(
                f"response id {response_id} does not match request "
                f"id {self._next_id}"
            )
        return _raise_for(decode_response(kind, payload))

    def request(self, message: dict[str, Any]) -> dict:
        """Send one control request and wait for its response."""
        message = dict(message)
        op = message.pop("op")
        self._next_id += 1
        return self._roundtrip(
            encode_control_request(self._next_id, op, message or None)
        )

    # -- operations --------------------------------------------------------

    def place(
        self, txs: Sequence[Transaction], full_outputs: bool = False
    ) -> list[int]:
        """Place a contiguous batch; returns its shard assignment."""

        def send() -> dict:
            self._next_id += 1
            return self._roundtrip(
                encode_place_request(self._next_id, txs, full_outputs)
            )

        return self._with_retries(send)["shards"]

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def checkpoint(self, path: "str | None" = None) -> dict:
        message: dict[str, Any] = {"op": "checkpoint"}
        if path is not None:
            message["path"] = str(path)
        return self.request(message)

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})


class AsyncBinaryPlacementClient(_AsyncClientBase):
    """Pipelining asyncio client over the binary frame codec.

    Interface-compatible with :class:`AsyncPlacementClient` (the load
    generator treats them interchangeably); the difference is the bytes
    on the wire.
    """

    # -- plumbing ----------------------------------------------------------

    async def _read_loop(self) -> None:
        reader = self._reader
        try:
            while True:
                header = await reader.readexactly(FRAME_HEADER_BYTES)
                kind, response_id, length = decode_frame_header(header)
                payload = (
                    await reader.readexactly(length) if length else b""
                )
                future = self._inflight.pop(response_id, None)
                if future is not None and not future.done():
                    try:
                        future.set_result(decode_response(kind, payload))
                    except ProtocolError as exc:
                        future.set_exception(exc)
        except (
            ConnectionError,
            EOFError,
            asyncio.CancelledError,
            ProtocolError,
        ):
            pass
        finally:
            self._fail_inflight()

    def _submit_frame(self, frame: bytes, request_id: int):
        future: "asyncio.Future[dict]" = (
            asyncio.get_running_loop().create_future()
        )
        if self._closed:
            future.set_exception(
                ConnectionLostError("connection closed before response")
            )
            return future
        self._inflight[request_id] = future
        self._writer.write(frame)
        return future

    def submit(self, message: dict[str, Any]) -> "asyncio.Future[dict]":
        """Write one control request now; future for its raw response."""
        message = dict(message)
        op = message.pop("op")
        message.pop("id", None)
        self._next_id += 1
        request_id = self._next_id
        return self._submit_frame(
            encode_control_request(request_id, op, message or None),
            request_id,
        )

    async def request(self, message: dict[str, Any]) -> dict:
        future = self.submit(message)
        await self._writer.drain()
        return _raise_for(await self._await_response(future))

    # -- operations --------------------------------------------------------

    async def place(
        self, txs: Sequence[Transaction], full_outputs: bool = False
    ) -> list[int]:
        async def place_once() -> list[int]:
            future = self.place_nowait(txs, full_outputs)
            await self._writer.drain()
            return _raise_for(await self._await_response(future))[
                "shards"
            ]

        return await self._place_with_retries(place_once)

    def place_nowait(
        self, txs: Sequence[Transaction], full_outputs: bool = False
    ) -> "asyncio.Future[dict]":
        """Pipelined place: returns the raw-response future."""
        self._next_id += 1
        request_id = self._next_id
        return self._submit_frame(
            encode_place_request(request_id, txs, full_outputs),
            request_id,
        )

    async def stats(self) -> dict:
        return (await self.request({"op": "stats"}))["stats"]

    async def checkpoint(self, path: "str | None" = None) -> dict:
        message: dict[str, Any] = {"op": "checkpoint"}
        if path is not None:
            message["path"] = str(path)
        return await self.request(message)

    async def ping(self) -> dict:
        return await self.request({"op": "ping"})

    async def shutdown(self) -> None:
        await self.request({"op": "shutdown"})


def client_class(proto: str = "binary"):
    """Blocking client class for a protocol name."""
    if proto not in PROTOCOLS:
        raise ConfigurationError(
            f"proto must be one of {PROTOCOLS}, got {proto!r}"
        )
    return BinaryPlacementClient if proto == "binary" else PlacementClient


def async_client_class(proto: str = "binary"):
    """Asyncio client class for a protocol name."""
    if proto not in PROTOCOLS:
        raise ConfigurationError(
            f"proto must be one of {PROTOCOLS}, got {proto!r}"
        )
    return (
        AsyncBinaryPlacementClient
        if proto == "binary"
        else AsyncPlacementClient
    )
