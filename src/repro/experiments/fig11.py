"""Figure 11 - OptChain scalability.

The paper plots, per shard count, the highest transaction rate at which
OptChain's throughput still equals the rate (no backlogging), finding a
near-linear relationship (above 20,000 tps at 62 shards) with
confirmation delay never exceeding 11 seconds in the healthy regime.

We binary-search the sustainable rate per shard count. A rate is
*sustained* when the run drains, the average confirmation latency stays
under the paper's healthy-regime budget (11 s, "the confirmation delay
is never more than 11 seconds"), and no shard's queue grows past a few
blocks. Throughput-vs-rate comparisons are unusable at reduced scale
because short runs are drain-dominated; the latency/queue criterion
measures the same "no backlogging" property directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.optchain import OptChainPlacer
from repro.experiments.configs import ExperimentScale
from repro.experiments.runner import stream_for
from repro.simulator.engine import run_simulation

LATENCY_BUDGET_S = 11.0  # the paper's healthy-regime confirmation bound
QUEUE_BUDGET_BLOCKS = 5  # backlog cap: queues beyond this mean overload


@dataclass(frozen=True, slots=True)
class ScalePoint:
    """Max sustained rate for one shard count."""

    n_shards: int
    max_rate: float
    average_latency: float
    max_latency: float


def _sustains(scale: ExperimentScale, n_shards: int, rate: float, seed: int):
    stream = stream_for(scale, seed)
    config = scale.simulation(n_shards, rate)
    result = run_simulation(stream, OptChainPlacer(n_shards), config)
    peak_queue = max(
        (max(sizes) for sizes in result.queue_samples), default=0
    )
    ok = (
        result.drained
        and result.average_latency <= LATENCY_BUDGET_S
        and peak_queue <= QUEUE_BUDGET_BLOCKS * scale.block_capacity
    )
    return ok, result


def run(scale: ExperimentScale, seed: int = 1) -> list[ScalePoint]:
    """Binary-search the max sustained rate per shard count."""
    points = []
    lo_hint = min(scale.tx_rates) / 2
    for n_shards in scale.shard_counts:
        lo, hi = lo_hint, max(scale.tx_rates) * 2.0
        best = None
        # Expand upward if even the top is sustained.
        ok, result = _sustains(scale, n_shards, hi, seed)
        if ok:
            best = (hi, result)
        else:
            for _ in range(6):  # ~2% resolution on the rate axis
                mid = (lo + hi) / 2
                ok, result = _sustains(scale, n_shards, mid, seed)
                if ok:
                    best = (mid, result)
                    lo = mid
                else:
                    hi = mid
        if best is None:
            points.append(ScalePoint(n_shards, 0.0, 0.0, 0.0))
            continue
        rate, result = best
        points.append(
            ScalePoint(
                n_shards=n_shards,
                max_rate=rate,
                average_latency=result.average_latency,
                max_latency=result.max_latency,
            )
        )
        lo_hint = rate  # more shards never sustain less
    return points


def as_table(points: list[ScalePoint]) -> str:
    rows = [
        [
            p.n_shards,
            f"{p.max_rate:.0f}",
            f"{p.average_latency:.1f}s",
            f"{p.max_latency:.1f}s",
        ]
        for p in points
    ]
    return format_table(
        ["#shards", "max sustained rate", "avg latency", "max latency"],
        rows,
        title=(
            "Fig. 11: OptChain scalability (paper: near-linear in #shards, "
            "confirmation <= 11s when healthy)"
        ),
    )


def main(scale_name: str | None = None) -> str:
    from repro.experiments.runner import scale_by_name

    output = as_table(run(scale_by_name(scale_name)))
    print(output)
    return output


if __name__ == "__main__":
    main()
