"""OptChain - Algorithm 1 of the paper.

For each arriving transaction ``u``:

1. compute the T2S scores ``p(u)`` incrementally (§IV-B);
2. compute the L2S scores ``E(j)`` from the current per-shard latency
   models (§IV-C);
3. place ``u`` into ``argmax_j p(u)[j] - 0.01 * E(j)`` (Temporal Fitness);
4. update ``p'(u)[chosen] += alpha``.

The latency models come from whoever can observe the shards. Inside the
simulator that is a live :class:`~repro.simulator.metrics.LatencyObserver`
fed by real queue lengths and consensus times. Outside a simulation
(static placement runs like Tables I/II) there are no shards to observe,
so :class:`LoadProxyLatencyProvider` models each shard's load from the
placer's own recent placements - an exponentially decayed arrival window
standing in for the queue a wallet would observe. With no provider at
all, OptChain degrades to pure T2S placement exactly as the paper's
"T2S-based" method (the L2S term is constant across shards).

**Hot path.** Placing one transaction costs O(degree) amortized, not
O(n_shards): the proxy decays lazily (one global exponent instead of
touching every shard), and the fitness argmax only evaluates the shards
that can win - the sparse T2S support, the input shards, and the
lightest remaining shard (served by a lazy min-heap). The fused paths
reproduce the naive full-scan decisions exactly; see PERFORMANCE.md for
the argument and ``tests/core/test_golden_equivalence.py`` for the
enforcement.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush, heapreplace
from typing import Any, Callable, Final, Sequence

from repro.core.fitness import PAPER_LATENCY_WEIGHT, TemporalFitness
from repro.core.l2s import L2SEstimator, ShardLatencyModel
from repro.core.placement import PlacementStrategy
from repro.core.scorer import (
    DEFAULT_SUPPORT_CAP,
    PlacementScorer,
    truncate_support,
)
from repro.core.t2s import T2SScorer, make_support_scorer
from repro.errors import ConfigurationError, PlacementError
from repro.utxo.transaction import Transaction

#: Returns one latency model per shard; called once per placement.
LatencyProvider = Callable[[], Sequence[ShardLatencyModel]]

# Decision-path tags, resolved once per provider change instead of per
# transaction.
_PATH_FUSED = 0
_PATH_T2S = 1
_PATH_TOTALS = 2
_PATH_GENERIC = 3


class _ProxyDefault:
    """Sentinel type: "build a :class:`LoadProxyLatencyProvider`"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "USE_LOAD_PROXY"


#: Default for ``OptChainPlacer(latency_provider=...)``: construct an
#: offline load proxy. A sentinel (rather than the string ``"proxy"``,
#: which is still accepted for backward compatibility) so the parameter
#: annotation is honest and type-checks.
USE_LOAD_PROXY: Final[_ProxyDefault] = _ProxyDefault()


class LoadProxyLatencyProvider:
    """Latency models derived from the placer's own placement history.

    Each shard's *pending load* is an exponentially decayed count of the
    transactions recently placed there: after each placement the load of
    the chosen shard grows by one and every load decays by
    ``exp(-1/window)``. The verification rate then scales inversely with
    the load (a queue of ``q`` transactions takes about
    ``(1 + q/block) * consensus_time``), matching how the paper estimates
    ``1/lambda_v`` "from observation of recent consensus time of shard i
    and its current queue size".

    **Lazy decay.** :meth:`record` is O(1) amortized: instead of decaying
    every shard on every placement, one global step counter tracks the
    decay exponent and each shard stores a *scaled* load
    ``load / decay^step``. True loads are materialized only when read
    (``load = scaled * decay^(step - offset)`` with the offset
    renormalized periodically so the scaled values never overflow).
    Uniform scaling preserves ordering, so "which shard is lightest" is
    answered from a lazy min-heap over the scaled values without
    materializing anything.

    Shards whose load has decayed below the resolution of the verify-time
    formula (``1 + load/block == 1.0`` in double precision) are demoted
    to an exact-zero cohort: their latency is bit-identical to an idle
    shard's from that point on anyway, and the demotion keeps the
    lightest-shard query from re-scanning long-idle shards forever.
    """

    # Renormalize the global exponent every ~500 decay windows: the
    # inverse scale is then at most e^500 ~ 7e216, far from overflow,
    # and the amortized cost is one O(n_shards) sweep per ~500*window
    # placements.
    _RENORM_WINDOWS = 500.0

    __slots__ = (
        "_scaled",
        "_decay",
        "_base_verify",
        "_base_comm",
        "_block",
        "_step",
        "_offset",
        "_scale",
        "_renorm_span",
        "_heap",
        "_zero_heap",
        "_compact_limit",
        "_comm_expected",
        "_base_total",
    )

    def __init__(
        self,
        n_shards: int,
        window: float = 2_000.0,
        base_verify_time: float = 5.0,
        base_comm_time: float = 0.1,
        block_capacity: int = 2_000,
    ) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        if window <= 0 or base_verify_time <= 0 or base_comm_time <= 0:
            raise ConfigurationError(
                "window, base_verify_time, base_comm_time must be > 0"
            )
        if block_capacity <= 0:
            raise ConfigurationError(
                f"block_capacity must be > 0, got {block_capacity}"
            )
        self._scaled = [0.0] * n_shards
        self._decay = math.exp(-1.0 / window)
        self._base_verify = base_verify_time
        self._base_comm = base_comm_time
        self._block = block_capacity
        self._step = 0
        self._offset = 0
        self._scale = 1.0
        self._renorm_span = max(1, int(self._RENORM_WINDOWS * window))
        # Lazy (scaled_load, shard) min-heap over shards with nonzero
        # load; exact-zero shards live in their own id-ordered heap.
        self._heap: list[tuple[float, int]] = []
        self._zero_heap = list(range(n_shards))
        self._compact_limit = max(64, 4 * n_shards)
        # Bit-identical to ShardLatencyModel(1/comm, 1/verify)
        # .expected_total - hence the double inversions.
        self._comm_expected = 1.0 / (1.0 / base_comm_time)
        self._base_total = self._comm_expected + 1.0 / (
            1.0 / (base_verify_time * 1.0)
        )

    @property
    def n_shards(self) -> int:
        """Number of shards tracked."""
        return len(self._scaled)

    @property
    def loads(self) -> list[float]:
        """Copy of the decayed per-shard loads."""
        scale = self._scale
        return [value * scale for value in self._scaled]

    def record(self, shard: int) -> None:
        """Account one placement into ``shard`` (decay is implicit)."""
        step = self._step + 1
        self._step = step
        span = step - self._offset
        decay = self._decay
        # pow keeps the scale exact to ~1 ulp regardless of how many
        # steps have passed (repeated multiplication would accumulate
        # drift over millions of placements).
        scale = decay ** span
        self._scale = scale
        old = self._scaled[shard]
        value = old + 1.0 / scale
        self._scaled[shard] = value
        # The heap holds at most a few entries per shard: a push happens
        # only when a shard leaves the zero cohort, and queries refresh
        # stale minima in place (heapreplace) instead of record pushing
        # a fresh entry every placement.
        if old == 0.0:
            heappush(self._heap, (value, shard))
        if span >= self._renorm_span:
            self._renormalize()
        elif len(self._heap) > self._compact_limit:
            self._compact()

    def expected_total_of(self, shard: int) -> float:
        """Expected confirmation total of one shard (same bits as
        ``self()[shard].expected_total``)."""
        value = self._scaled[shard]
        if value == 0.0:
            return self._base_total
        return self._total_of_load(value * self._scale)

    def lightest_total(self) -> float:
        """Expected total of the globally lightest shard, O(1) amortized.

        A valid lower bound on every shard's expected total (the total is
        monotone in the load), used by the fused argmax to prune
        candidates that cannot win.
        """
        scaled = self._scaled
        zero_heap = self._zero_heap
        while zero_heap:
            if scaled[zero_heap[0]] == 0.0:
                return self._base_total
            heappop(zero_heap)
        heap = self._heap
        while True:
            value, index = heap[0]
            current = scaled[index]
            if current == value:
                return self._total_of_load(value * self._scale)
            heapreplace(heap, (current, index))

    def lightest_excluding(
        self, exclude: "set[int] | dict"
    ) -> tuple[int, float]:
        """``(shard, expected_total)`` of the best spill target.

        The lightest-load shard outside ``exclude``, with ties on the
        *materialized expected total* broken toward the lower shard id -
        exactly the order a full fitness scan over the zero-T2S shards
        would produce. Returns ``(-1, inf)`` when every shard is
        excluded. Amortized cost is O(|exclude| * log n_shards): the
        heaps hand back candidates in load order and long-idle shards
        collapse into the exact-zero cohort. When the exclusion covers
        most shards the heaps would churn, so a direct scan over the
        complement takes over (same result, O(n_shards) but tiny
        constants).
        """
        scaled = self._scaled
        if 2 * len(exclude) >= len(scaled):
            return self._lightest_direct(exclude)
        best_id = -1
        best_total = math.inf
        zero_heap = self._zero_heap
        push_back_ids: list[int] = []
        while zero_heap:
            index = zero_heap[0]
            if scaled[index] != 0.0:
                heappop(zero_heap)
                continue
            if index in exclude:
                push_back_ids.append(heappop(zero_heap))
                continue
            best_id = index
            best_total = self._base_total
            break
        for index in push_back_ids:
            heappush(zero_heap, index)

        heap = self._heap
        scale = self._scale
        block = self._block
        push_back: list[tuple[float, int]] = []
        while heap:
            value, index = heap[0]
            current = scaled[index]
            if current != value:
                heapreplace(heap, (current, index))
                continue
            load = value * scale
            if 1.0 + load / block == 1.0:
                # Indistinguishable from idle at double precision, now
                # and forever: demote to the zero cohort.
                heappop(heap)
                scaled[index] = 0.0
                heappush(zero_heap, index)
                if index in exclude:
                    continue
                total = self._base_total
            else:
                if index in exclude:
                    push_back.append((value, index))
                    heappop(heap)
                    continue
                total = self._total_of_load(load)
                if total > best_total:
                    break
                push_back.append((value, index))
                heappop(heap)
            if total < best_total or (
                total == best_total and index < best_id
            ):
                best_total = total
                best_id = index
        for entry in push_back:
            heappush(heap, entry)
        return best_id, best_total

    def _lightest_direct(self, exclude: "set[int] | dict") -> tuple[int, float]:
        # Same (expected_total, shard) lexicographic minimum the heap
        # path produces: for any load, base_verify * (1.0 + load/block)
        # collapses to base_verify exactly when the heap path would have
        # demoted the shard, so one uniform expression covers idle,
        # stale, and loaded shards alike.
        scaled = self._scaled
        scale = self._scale
        base_verify = self._base_verify
        block = self._block
        comm_expected = self._comm_expected
        best_id = -1
        best_total = math.inf
        for index, value in enumerate(scaled):
            if index in exclude:
                continue
            verify = base_verify * (1.0 + value * scale / block)
            total = comm_expected + 1.0 / (1.0 / verify)
            if total < best_total:
                best_total = total
                best_id = index
        return best_id, best_total

    def __call__(self) -> list[ShardLatencyModel]:
        models = []
        for load in self.loads:
            verify_time = self._base_verify * (1.0 + load / self._block)
            models.append(
                ShardLatencyModel(
                    lambda_c=1.0 / self._base_comm,
                    lambda_v=1.0 / verify_time,
                )
            )
        return models

    # -- snapshot/restore --------------------------------------------------

    def export_state(self) -> dict[str, Any]:
        """Plain-data dump of the proxy state (see service.state).

        The decay clock (``step``/``offset``/``scale``) and both lazy
        heaps are exported verbatim: the heaps' exact layout (including
        stale entries) decides the traversal order of lightest-shard
        queries and when sub-resolution shards get demoted, so they are
        state, not a cache.
        """
        return {
            "scaled": list(self._scaled),
            "step": self._step,
            "offset": self._offset,
            "scale": self._scale,
            "heap": [(value, index) for value, index in self._heap],
            "zero_heap": list(self._zero_heap),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Load a dump produced by :meth:`export_state` (same config)."""
        scaled = state["scaled"]
        if len(scaled) != len(self._scaled):
            raise ConfigurationError(
                f"snapshot has {len(scaled)} shards, proxy has "
                f"{len(self._scaled)}"
            )
        self._scaled[:] = scaled
        self._step = state["step"]
        self._offset = state["offset"]
        self._scale = state["scale"]
        self._heap[:] = [(value, index) for value, index in state["heap"]]
        self._zero_heap[:] = list(state["zero_heap"])

    # -- internals ---------------------------------------------------------

    def _total_of_load(self, load: float) -> float:
        verify_time = self._base_verify * (1.0 + load / self._block)
        return self._comm_expected + 1.0 / (1.0 / verify_time)

    def _renormalize(self) -> None:
        """Fold the accumulated decay into the scaled values.

        Keeps the inverse scale bounded (no overflow however long the
        run); loads that underflow to exact zero join the zero cohort,
        which is also where an eagerly-decayed implementation's loads
        become indistinguishable from idle.
        """
        scale = self._scale
        scaled = self._scaled
        for index, value in enumerate(scaled):
            if value != 0.0:
                scaled[index] = value * scale
        self._offset = self._step
        self._scale = 1.0
        self._rebuild_heaps()

    def _compact(self) -> None:
        self._rebuild_heaps()

    def _rebuild_heaps(self) -> None:
        # In-place so long-lived bindings (the fused batch loop) survive.
        scaled = self._scaled
        self._heap[:] = [
            (value, index)
            for index, value in enumerate(scaled)
            if value != 0.0
        ]
        heapify(self._heap)
        self._zero_heap[:] = [
            index for index, value in enumerate(scaled) if value == 0.0
        ]
        heapify(self._zero_heap)


class OptChainPlacer(PlacementStrategy):
    """Algorithm 1: Temporal-Fitness placement (T2S - 0.01 * L2S).

    The decision logic is split into per-provider fast paths that all
    reproduce the reference full-scan argmax bit-for-bit:

    - offline load proxy + ``shard_load`` mode (the default): fully fused
      O(degree) argmax over {T2S support} | {input shards} | {lightest
      shard};
    - a provider exposing ``expected_totals()`` (the simulator's
      :class:`~repro.simulator.metrics.LatencyObserver`) in ``shard_load``
      mode: one allocation-free scan, no per-shard model objects;
    - any other provider/mode: a long-lived :class:`L2SEstimator`
      refreshed in place each placement.
    """

    name = "optchain"

    def __init__(
        self,
        n_shards: int,
        alpha: float = 0.5,
        latency_weight: float = PAPER_LATENCY_WEIGHT,
        latency_provider: LatencyProvider | None | _ProxyDefault = (
            USE_LOAD_PROXY
        ),
        l2s_mode: str = "shard_load",
        outdeg_mode: str = "spenders",
        scorer: PlacementScorer | None = None,
    ) -> None:
        super().__init__(n_shards)
        if scorer is None:
            scorer = T2SScorer(
                n_shards, alpha=alpha, outdeg_mode=outdeg_mode
            )
        elif scorer.n_shards != n_shards:
            raise ConfigurationError(
                f"scorer covers {scorer.n_shards} shards, placer has "
                f"{n_shards}"
            )
        self.scorer = scorer
        self.fitness = TemporalFitness(latency_weight=latency_weight)
        self.l2s_mode = l2s_mode
        self._estimator: L2SEstimator | None = None
        self._proxy: LoadProxyLatencyProvider | None = None
        if isinstance(latency_provider, _ProxyDefault) or (
            latency_provider == "proxy"
        ):
            self._proxy = LoadProxyLatencyProvider(n_shards)
            self.latency_provider: LatencyProvider | None = self._proxy
        else:
            self.latency_provider = latency_provider
        self._refresh_provider_paths()

    def use_latency_provider(self, provider: LatencyProvider) -> None:
        """Swap in a live latency source (e.g. the simulator's observer).

        Disables the offline load proxy: with real queues observable the
        proxy's synthetic loads would double-count placements.
        """
        self._proxy = None
        self.latency_provider = provider
        self._refresh_provider_paths()

    def _refresh_provider_paths(self) -> None:
        provider = self.latency_provider
        self._totals_fn = None
        if provider is None:
            self._path = _PATH_T2S
        elif self._proxy is not None and self.l2s_mode == "shard_load":
            self._path = _PATH_FUSED
        else:
            self._path = _PATH_GENERIC
            if self.l2s_mode == "shard_load":
                totals_fn = getattr(provider, "expected_totals", None)
                if callable(totals_fn):
                    self._totals_fn = totals_fn
                    self._path = _PATH_TOTALS
        if provider is None:
            # Pure-T2S ties break toward the lightest shard (by index,
            # so the scalar min-size tracker is not enough).
            self.size_argmin()

    def place_batch(self, txs) -> list[int]:
        """Batch placement with the per-transaction overhead hoisted out.

        For the default configuration (offline load proxy, ``shard_load``
        mode) this runs one fused loop with every piece of state bound to
        a local: the T2S recurrence, the pruned fitness argmax, and the
        proxy update are inlined rather than dispatched per transaction.
        Decisions and final state are identical to calling
        :meth:`~repro.core.placement.PlacementStrategy.place` in a loop -
        the golden equivalence tests compare both against the reference
        implementation. Returns the shards of this batch only;
        ``place_stream`` layers the full-assignment copy on top.
        """
        if (
            self._path != _PATH_FUSED
            or self._size_argmin is not None
            or not self.scorer.fused_compatible
        ):
            # The lazy argmin (enabled by other paths) expects a bump per
            # placement, and opt-out scorers (the adaptive cap's window
            # accounting) need their own add_transaction_raw; the
            # generic loop provides both.
            return super().place_batch(txs)
        proxy = self._proxy
        scorer = self.scorer
        if scorer._pending is not None:
            raise PlacementError(
                f"transaction {scorer._pending} was added but never placed"
            )
        weight = self.fitness.latency_weight
        # Strategy state.
        assignment = self._assignment
        strat_sizes = self._shard_sizes
        min_size_val = self._min_shard_size
        max_size_val = self._max_shard_size
        # Scorer state.
        p_prime_list = scorer._p_prime
        spender_count = scorer._spender_count
        output_count = scorer._output_count
        min_mass = scorer._min_mass
        sizes = scorer._shard_sizes
        one_minus_alpha = scorer._scale
        alpha = scorer.alpha
        epsilon = scorer.prune_epsilon
        spenders_div = scorer._spenders_divisor
        # Bounded-support scorers (the "topk" kind) declare a cap; the
        # exact scorer's is None and the branch below compiles to one
        # cheap test per transaction.
        support_cap = scorer.support_cap
        truncate = truncate_support
        # Proxy state (heaps are mutated in place, never rebound).
        scaled = proxy._scaled
        heap = proxy._heap
        zero_heap = proxy._zero_heap
        decay = proxy._decay
        base_verify = proxy._base_verify
        block = proxy._block
        comm_expected = proxy._comm_expected
        base_total = proxy._base_total
        renorm_span = proxy._renorm_span
        heap_limit = proxy._compact_limit
        heappush_ = heappush
        heappop_ = heappop
        heapreplace_ = heapreplace
        neg_inf = -math.inf
        pos_inf = math.inf
        has_scale = one_minus_alpha > 0.0
        has_eps = epsilon > 0.0
        n_placed = len(assignment)
        batch_start = n_placed

        for tx in txs:
            txid = tx.txid
            if txid != n_placed:
                raise PlacementError(
                    f"transactions must be placed in dense stream order: "
                    f"got {txid}, expected {n_placed}"
                )
            # ---- T2S recurrence (add_transaction_raw, inlined) ----
            inputs = tx.inputs
            raw: dict[int, float] = {}
            if len(inputs) == 1:
                parent = inputs[0].txid
                # OutPoint already guarantees txid >= 0.
                if parent >= txid:
                    raise PlacementError(
                        f"transaction {txid} has invalid input {parent}"
                    )
                input_ids: Sequence[int] = (parent,)
                divisor = spender_count[parent] + 1
                spender_count[parent] = divisor
                bound = pos_inf
                if has_scale:
                    parent_vector = p_prime_list[parent]
                    if parent_vector:
                        if not spenders_div:
                            divisor = max(output_count[parent], divisor)
                        factor = one_minus_alpha / divisor
                        bound = min_mass[parent] * factor
                        if has_eps and bound <= epsilon:
                            raw = {
                                shard: mass
                                for shard, r in parent_vector.items()
                                if (mass := r * factor) > epsilon
                            }
                            bound = (
                                min(raw.values()) if raw else pos_inf
                            )
                        else:
                            raw = {
                                shard: r * factor
                                for shard, r in parent_vector.items()
                            }
            elif inputs:
                # Dedup in first-appearance order, exactly what
                # Transaction.input_txids (and the scorer) derive.
                seen: dict[int, None] = {}
                for outpoint in inputs:
                    seen.setdefault(outpoint.txid, None)
                input_ids = tuple(seen)
                for parent in input_ids:
                    if not 0 <= parent < txid:
                        raise PlacementError(
                            f"transaction {txid} has invalid input {parent}"
                        )
                for parent in input_ids:
                    spender_count[parent] += 1
                bound = pos_inf
                if has_scale:
                    get = None
                    for parent in input_ids:
                        parent_vector = p_prime_list[parent]
                        if not parent_vector:
                            continue
                        if spenders_div:
                            divisor = spender_count[parent]
                        else:
                            divisor = max(
                                output_count[parent], spender_count[parent]
                            )
                        factor = one_minus_alpha / divisor
                        if get is None:
                            raw = {
                                shard: mass * factor
                                for shard, mass in parent_vector.items()
                            }
                            get = raw.get
                        else:
                            for shard, mass in parent_vector.items():
                                raw[shard] = get(shard, 0.0) + mass * factor
                if has_eps and raw:
                    raw = {
                        shard: mass
                        for shard, mass in raw.items()
                        if mass > epsilon
                    }
                if raw:
                    bound = min(raw.values())
            else:
                input_ids = ()
                bound = pos_inf
            if support_cap is not None and len(raw) > support_cap:
                # Same helper, same accounting order as the unfused
                # TopKT2SScorer.add_transaction_raw - the golden tests
                # compare both paths placement-for-placement.
                raw, dropped = truncate(raw, support_cap)
                bound = min(raw.values())
                scorer._dropped_mass += dropped
                scorer._truncated_vectors += 1
            p_prime_list.append(raw)
            min_mass.append(bound)
            spender_count.append(0)
            if not spenders_div:
                n_outputs = len(tx.outputs)
                output_count.append(n_outputs if n_outputs > 1 else 1)

            # ---- fused fitness argmax (see _fused_choose) ----
            floor_total = -1.0
            while zero_heap:
                if scaled[zero_heap[0]] == 0.0:
                    floor_total = base_total
                    break
                heappop_(zero_heap)
            if floor_total < 0.0:
                while True:
                    value, index = heap[0]
                    current = scaled[index]
                    if current == value:
                        verify = base_verify * (
                            1.0 + value * proxy._scale / block
                        )
                        floor_total = comm_expected + 1.0 / (1.0 / verify)
                        break
                    heapreplace_(heap, (current, index))
            best_id = -1
            best_fitness = neg_inf
            best_l2s = pos_inf
            raw_get = raw.get
            pscale = proxy._scale
            if input_ids:
                has_inputs = True
                cross_floor = floor_total * 2.0
                if len(input_ids) == 1:
                    # Single input shard, no set or inner loop: evaluate
                    # it directly (it is almost always the winner).
                    only_input = assignment[input_ids[0]]
                    input_shards: "set[int] | tuple" = (only_input,)
                    shard = only_input
                    value = scaled[shard]
                    if value == 0.0:
                        total = base_total
                    else:
                        verify = base_verify * (1.0 + value * pscale / block)
                        total = comm_expected + 1.0 / (1.0 / verify)
                    l2s = total
                    mass_in = raw_get(shard)
                    if mass_in is None:
                        best_fitness = 0.0 - weight * l2s
                    else:
                        # The input shard holds at least its parent, so
                        # sizes[shard] >= 1: no max(1, .) needed.
                        best_fitness = mass_in / sizes[shard] - weight * l2s
                    best_id = shard
                    best_l2s = l2s
                else:
                    input_shards = {
                        assignment[parent] for parent in input_ids
                    }
                    if len(input_shards) == 1:
                        (only_input,) = input_shards
                    else:
                        only_input = -1
                    for shard in input_shards:
                        value = scaled[shard]
                        if value == 0.0:
                            total = base_total
                        else:
                            verify = base_verify * (
                                1.0 + value * pscale / block
                            )
                            total = comm_expected + 1.0 / (1.0 / verify)
                        l2s = (
                            total * 1.0
                            if shard == only_input
                            else total * 2.0
                        )
                        mass = raw_get(shard)
                        if mass is None:
                            fitness = 0.0 - weight * l2s
                        else:
                            fitness = mass / sizes[shard] - weight * l2s
                        if (
                            fitness > best_fitness
                            or (
                                fitness == best_fitness
                                and (
                                    l2s < best_l2s
                                    or (
                                        l2s == best_l2s
                                        and shard < best_id
                                    )
                                )
                            )
                        ):
                            best_id = shard
                            best_fitness = fitness
                            best_l2s = l2s
            else:
                input_shards = ()
                has_inputs = False
                only_input = -1
                cross_floor = floor_total
            weighted_cross_floor = weight * cross_floor
            min_size = min_size_val if min_size_val > 0 else 1
            # One C-level max() plus one divide decide whether any shard
            # can possibly beat the current best: max_mass/min_size
            # over-estimates every shard's T2S score and the floor
            # under-estimates every latency term, so a failed gate means
            # no shard in the support can win (exact - both bounds are
            # monotone in rounded arithmetic). The common case once the
            # input shard dominates: no scan at all.
            if raw and (
                max(raw.values()) / min_size - weighted_cross_floor
                >= best_fitness
            ):
                margin = 1e-6 * (
                    (
                        best_fitness
                        if best_fitness >= 0.0
                        else -best_fitness
                    )
                    + weighted_cross_floor
                    + 1.0
                )
                threshold = (
                    best_fitness + weighted_cross_floor - margin
                ) * min_size
                for shard, mass in raw.items():
                    if mass < threshold or shard == only_input:
                        continue
                    if only_input < 0 and has_inputs and shard in input_shards:
                        continue
                    size = sizes[shard]
                    t2s = mass / (size if size > 0 else 1)
                    if t2s - weighted_cross_floor < best_fitness:
                        continue
                    value = scaled[shard]
                    if value == 0.0:
                        total = base_total
                    else:
                        verify = base_verify * (1.0 + value * pscale / block)
                        total = comm_expected + 1.0 / (1.0 / verify)
                    l2s = total * 2.0 if has_inputs else total
                    fitness = t2s - weight * l2s
                    if (
                        fitness > best_fitness
                        or (
                            fitness == best_fitness
                            and (
                                l2s < best_l2s
                                or (l2s == best_l2s and shard < best_id)
                            )
                        )
                    ):
                        best_id = shard
                        best_fitness = fitness
                        best_l2s = l2s
                        margin = 1e-6 * (
                            abs(best_fitness) + weighted_cross_floor + 1.0
                        )
                        threshold = (
                            best_fitness + weighted_cross_floor - margin
                        ) * min_size
            if 0.0 - weighted_cross_floor >= best_fitness:
                candidates = set(raw)
                candidates.update(input_shards)
                spill_id, spill_total = proxy.lightest_excluding(candidates)
                if spill_id >= 0:
                    l2s = (
                        spill_total
                        if not has_inputs
                        else spill_total * 2.0
                    )
                    fitness = 0.0 - weight * l2s
                    if (
                        fitness > best_fitness
                        or (
                            fitness == best_fitness
                            and (
                                l2s < best_l2s
                                or (l2s == best_l2s and spill_id < best_id)
                            )
                        )
                    ):
                        best_id = spill_id
            shard = best_id

            # ---- commit (scorer.place + bookkeeping + proxy.record) ----
            raw[shard] = new_mass = raw.get(shard, 0.0) + alpha
            if new_mass < min_mass[txid]:
                min_mass[txid] = new_mass
            sizes[shard] += 1
            assignment.append(shard)
            n_placed += 1
            old_size = strat_sizes[shard]
            strat_sizes[shard] = old_size + 1
            if old_size + 1 > max_size_val:
                # Written through immediately (not at loop exit) so an
                # exception mid-batch cannot strand a stale attribute.
                max_size_val = old_size + 1
                self._max_shard_size = max_size_val
            if old_size == min_size_val:
                count = self._min_size_count - 1
                if count == 0:
                    min_size_val = old_size + 1
                    self._min_shard_size = min_size_val
                    count = strat_sizes.count(min_size_val)
                self._min_size_count = count
            step = proxy._step + 1
            proxy._step = step
            span = step - proxy._offset
            pscale = decay ** span
            proxy._scale = pscale
            old_value = scaled[shard]
            value = old_value + 1.0 / pscale
            scaled[shard] = value
            if old_value == 0.0:
                heappush_(heap, (value, shard))
            if span >= renorm_span:
                proxy._renormalize()
            elif len(heap) > heap_limit:
                proxy._compact()
        return assignment[batch_start:]

    def _decide(self, tx: Transaction) -> int:
        """Score ``tx`` and pick its shard, leaving the decision
        uncommitted (``scorer.place`` pending)."""
        scorer = self.scorer
        txid = tx.txid
        inputs = tx.inputs
        # One outpoint needs no dedup pass; input_txids builds a dict
        # and a tuple per call, which is measurable at this rate.
        if len(inputs) == 1:
            input_ids: Sequence[int] = (inputs[0].txid,)
        elif inputs:
            input_ids = tx.input_txids
        else:
            input_ids = ()
        raw = scorer.add_transaction_raw(txid, input_ids, len(tx.outputs))
        path = self._path
        if path == _PATH_FUSED:
            return self._fused_choose(input_ids, raw, self._proxy)
        if path == _PATH_T2S:
            # No observable shards: fitness reduces to T2S with
            # lightest-shard tie-breaking.
            return self._t2s_argmax(raw)
        if path == _PATH_TOTALS:
            return self._scan_totals_choose(input_ids, raw, self._totals_fn())
        return self._generic_choose(tx, txid)

    def _choose(self, tx: Transaction) -> int:
        shard = self._decide(tx)
        self.scorer.place(tx.txid, shard)
        if self._proxy is not None:
            self._proxy.record(shard)
        return shard

    def place_observed(self, tx: Transaction, shard: int) -> int:
        """Adopt an externally decided placement, returning the shard
        this placer *would* have chosen.

        The shadow-scoring primitive behind :mod:`repro.obs.drift`: the
        drift monitor keeps an exact-path shadow placer whose history
        tracks production assignments (so both policies are compared
        against the same past), and uses the returned preference as the
        one-step counterfactual. State afterwards is identical to
        ``force_place(tx, shard)``.
        """
        if tx.txid != len(self._assignment):
            raise PlacementError(
                f"transactions must be placed in dense stream order: got "
                f"{tx.txid}, expected {len(self._assignment)}"
            )
        if not 0 <= shard < self.n_shards:
            raise PlacementError(
                f"observed shard {shard} out of range [0, {self.n_shards})"
            )
        preferred = self._decide(tx)
        self.scorer.place(tx.txid, shard)
        if self._proxy is not None:
            self._proxy.record(shard)
        self._assignment.append(shard)
        self._bump_shard_size(shard)
        return preferred

    def _on_forced(self, tx: Transaction, shard: int) -> None:
        self.scorer.add_transaction_raw(
            tx.txid, tx.input_txids, len(tx.outputs)
        )
        self.scorer.place(tx.txid, shard)
        if self._proxy is not None:
            self._proxy.record(shard)

    # -- snapshot/restore --------------------------------------------------

    def export_state(self) -> dict[str, Any]:
        """Strategy + scorer + proxy state (see service.state).

        Only the self-contained configurations are snapshotable: the
        offline load proxy or no provider at all. A live latency
        observer (the simulator's) reads external queues that no
        placement snapshot could restore.
        """
        if self._proxy is None and self.latency_provider is not None:
            raise PlacementError(
                "only the offline load proxy or no latency provider "
                "can be snapshotted; live observers hold external state"
            )
        state = super().export_state()
        state["scorer"] = self.scorer.export_state()
        if self._proxy is not None:
            state["proxy"] = self._proxy.export_state()
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        self.scorer.restore_state(state["scorer"])
        if self._proxy is not None:
            if "proxy" not in state:
                raise PlacementError(
                    "snapshot was taken without a load proxy but this "
                    "placer has one"
                )
            self._proxy.restore_state(state["proxy"])
        elif "proxy" in state:
            raise PlacementError(
                "snapshot carries load-proxy state but this placer "
                "has no proxy"
            )

    # -- decision paths ----------------------------------------------------

    def _fused_choose(
        self,
        input_ids: Sequence[int],
        raw: dict[int, float],
        proxy: LoadProxyLatencyProvider,
    ) -> int:
        """O(degree) fused T2S/L2S argmax against the load proxy.

        Only shards that can win are evaluated: the sparse T2S support,
        the input shards, and (when nothing scored can beat an idle
        shard's latency term) the lightest remaining shard from the
        proxy's lazy heap. Every skipped shard has zero T2S mass and a
        worse - or tied-with-higher-id - latency term than an evaluated
        one, so the reference full scan could not pick it either. Two
        exact pruning bounds keep the loop short: ``expected_total`` is
        monotone (non-strictly) in the load, so ``t2s(j) -
        weight * (factor * base_total)`` over-estimates shard ``j``'s
        fitness, and a shard whose over-estimate is *strictly* below the
        current best cannot win under any tie-breaking.
        """
        assignment = self._assignment
        weight = self.fitness.latency_weight
        sizes = self.scorer._shard_sizes
        # Proxy internals, bound once: materializing one shard's load is
        # a multiply, and its expected total a handful of flops.
        scaled = proxy._scaled
        scale = proxy._scale
        base_verify = proxy._base_verify
        block = proxy._block
        comm_expected = proxy._comm_expected
        base_total = proxy._base_total

        # The lightest shard's total lower-bounds every shard's total
        # (monotone in load), giving the tightest exact pruning floor.
        # Inlined proxy.lightest_total(): the zero-cohort peek is the
        # common case while any shard is idle.
        zero_heap = proxy._zero_heap
        floor_total = -1.0
        while zero_heap:
            if scaled[zero_heap[0]] == 0.0:
                floor_total = base_total
                break
            heappop(zero_heap)
        if floor_total < 0.0:
            heap = proxy._heap
            while True:
                value, index = heap[0]
                current = scaled[index]
                if current == value:
                    verify = base_verify * (1.0 + value * scale / block)
                    floor_total = comm_expected + 1.0 / (1.0 / verify)
                    break
                heapreplace(heap, (current, index))
        best_id = -1
        best_fitness = -math.inf
        best_l2s = math.inf
        raw_get = raw.get
        if input_ids:
            input_shards = {assignment[parent] for parent in input_ids}
            has_inputs = True
            cross_floor = floor_total * 2.0
            if len(input_shards) == 1:
                (only_input,) = input_shards
            else:
                only_input = -1
            # Input shards first: T2S mass concentrates on the parents'
            # shards, so this seeds a near-final best and the mass
            # threshold below then skips almost everything else with a
            # single float compare.
            for shard in input_shards:
                value = scaled[shard]
                if value == 0.0:
                    total = base_total
                else:
                    verify = base_verify * (1.0 + value * scale / block)
                    total = comm_expected + 1.0 / (1.0 / verify)
                l2s = total * 1.0 if shard == only_input else total * 2.0
                mass = raw_get(shard)
                if mass is None:
                    fitness = 0.0 - weight * l2s
                else:
                    size = sizes[shard]
                    fitness = mass / (size if size > 0 else 1) - weight * l2s
                if (
                    fitness > best_fitness
                    or (
                        fitness == best_fitness
                        and (
                            l2s < best_l2s
                            or (l2s == best_l2s and shard < best_id)
                        )
                    )
                ):
                    best_id = shard
                    best_fitness = fitness
                    best_l2s = l2s
        else:
            input_shards = ()
            has_inputs = False
            only_input = -1
            cross_floor = floor_total
        weighted_cross_floor = weight * cross_floor

        # Cheap pre-filter: a non-input shard with raw mass below this
        # threshold cannot reach best_fitness even with the floor
        # latency. The margin term is an absolute slack several orders
        # of magnitude above any accumulated rounding in the exact
        # bound's operations, so the pre-filter can only skip shards the
        # exact test would skip too; borderline masses fall through to
        # the exact test.
        min_size = self._min_shard_size
        if min_size < 1:
            min_size = 1
        if raw and (
            max(raw.values()) / min_size - weighted_cross_floor
            >= best_fitness
        ):
            margin = 1e-6 * (
                abs(best_fitness) + weighted_cross_floor + 1.0
            )
            threshold = (
                best_fitness + weighted_cross_floor - margin
            ) * min_size
            for shard, mass in raw.items():
                if mass < threshold or shard == only_input:
                    continue
                if only_input < 0 and has_inputs and shard in input_shards:
                    continue
                size = sizes[shard]
                t2s = mass / (size if size > 0 else 1)
                if t2s - weighted_cross_floor < best_fitness:
                    continue
                value = scaled[shard]
                if value == 0.0:
                    total = base_total
                else:
                    verify = base_verify * (1.0 + value * scale / block)
                    total = comm_expected + 1.0 / (1.0 / verify)
                l2s = total * 2.0 if has_inputs else total
                fitness = t2s - weight * l2s
                if (
                    fitness > best_fitness
                    or (
                        fitness == best_fitness
                        and (
                            l2s < best_l2s
                            or (l2s == best_l2s and shard < best_id)
                        )
                    )
                ):
                    best_id = shard
                    best_fitness = fitness
                    best_l2s = l2s
                    margin = 1e-6 * (
                        abs(best_fitness) + weighted_cross_floor + 1.0
                    )
                    threshold = (
                        best_fitness + weighted_cross_floor - margin
                    ) * min_size
        # The lightest untouched shard can only win when nothing scored
        # beats the lightest shard's latency term.
        if 0.0 - weighted_cross_floor >= best_fitness:
            candidates = set(raw)
            candidates.update(input_shards)
            spill_id, spill_total = proxy.lightest_excluding(candidates)
            if spill_id >= 0:
                l2s = spill_total if not has_inputs else spill_total * 2.0
                fitness = 0.0 - weight * l2s
                if (
                    fitness > best_fitness
                    or (
                        fitness == best_fitness
                        and (
                            l2s < best_l2s
                            or (l2s == best_l2s and spill_id < best_id)
                        )
                    )
                ):
                    best_id = spill_id
        return best_id

    def _scan_totals_choose(
        self,
        input_ids: Sequence[int],
        raw: dict[int, float],
        totals: Sequence[float],
    ) -> int:
        """Allocation-free full scan over raw expected totals.

        Used with live observers (``shard_load`` mode): reading every
        shard's queue is inherently O(n_shards), so the win here is
        skipping the per-shard model objects, estimator rebuild, and
        fitness list of the naive path - not the scan itself.
        """
        n = self.n_shards
        if len(totals) != n:
            raise ConfigurationError(
                f"latency provider returned {len(totals)} models for "
                f"{n} shards"
            )
        assignment = self._assignment
        input_shards = {assignment[parent] for parent in input_ids}
        weight = self.fitness.latency_weight
        sizes = self.scorer._shard_sizes
        raw_get = raw.get
        single_input = len(input_shards) == 1
        has_inputs = bool(input_shards)
        best_id = 0
        best_fitness = -math.inf
        best_l2s = math.inf
        for shard in range(n):
            total = totals[shard]
            if not has_inputs:
                l2s = total
            elif single_input and shard in input_shards:
                l2s = total
            else:
                l2s = total * 2.0
            mass = raw_get(shard)
            if mass is None:
                fitness = 0.0 - weight * l2s
            else:
                size = sizes[shard]
                fitness = mass / (size if size > 0 else 1) - weight * l2s
            if fitness > best_fitness or (
                fitness == best_fitness and l2s < best_l2s
            ):
                best_id = shard
                best_fitness = fitness
                best_l2s = l2s
        return best_id

    def _generic_choose(self, tx: Transaction, txid: int) -> int:
        models = self.latency_provider()
        if len(models) != self.n_shards:
            raise ConfigurationError(
                f"latency provider returned {len(models)} models for "
                f"{self.n_shards} shards"
            )
        estimator = self._estimator
        if estimator is None:
            estimator = L2SEstimator(models, mode=self.l2s_mode)
            self._estimator = estimator
        else:
            estimator.update(models)
        l2s_scores = estimator.scores_all(self.input_shards(tx))
        return self.fitness.best_shard_sparse(
            self.scorer.normalized(txid), l2s_scores
        )

    def _t2s_argmax(self, raw: dict[int, float]) -> int:
        """Highest normalized T2S score; default is the lightest shard.

        Equivalent to scanning every shard of the dense normalized score
        list seeded at the lightest shard, but only the sparse support
        can beat the seed, so only it is visited (in id order, keeping
        the first-strict-max tie-breaking of the scan).
        """
        sizes = self.scorer._shard_sizes
        _, best = self.size_argmin().peek()
        mass = raw.get(best)
        if mass is None:
            best_score = 0.0
        else:
            size = sizes[best]
            best_score = mass / (size if size > 0 else 1)
        for shard in sorted(raw):
            size = sizes[shard]
            score = raw[shard] / (size if size > 0 else 1)
            if score > best_score:
                best = shard
                best_score = score
        return best


class TopKOptChainPlacer(OptChainPlacer):
    """OptChain with bounded-support (top-k) T2S scoring.

    Same Temporal-Fitness decision rule, same fused hot path, but the
    scorer retains only the ``support_cap`` largest-mass entries per
    vector (:class:`~repro.core.t2s.TopKT2SScorer`). On long streams
    the exact scorer's per-transaction cost grows with the shard count
    as vector support saturates (nnz -> n_shards); this variant's cost
    is O(support_cap) regardless, which is what unlocks the 64+-shard
    regime - at a small, measured placement-quality cost
    (BENCH_placement.json ``topk_frontier``; PERFORMANCE.md
    "Bounded-support scoring").

    With ``support_cap >= n_shards`` placements are bit-identical to
    :class:`OptChainPlacer`; the exact strategy itself is never
    affected by this variant existing.

    ``support_cap`` also accepts the adaptive form ``"auto:<rate>"``:
    the cap starts at 4 and doubles (up to ``n_shards``) while the
    windowed dropped-mass rate exceeds ``<rate>`` - see
    :class:`~repro.core.t2s.AdaptiveTopKT2SScorer`. The adaptive
    scorer runs unfused (its window accounting is per-transaction).
    """

    name = "optchain-topk"

    def __init__(
        self,
        n_shards: int,
        support_cap: "int | str" = DEFAULT_SUPPORT_CAP,
        alpha: float = 0.5,
        latency_weight: float = PAPER_LATENCY_WEIGHT,
        latency_provider: LatencyProvider | None | _ProxyDefault = (
            USE_LOAD_PROXY
        ),
        l2s_mode: str = "shard_load",
        outdeg_mode: str = "spenders",
        support_initial_cap: "int | None" = None,
        support_window: "int | None" = None,
    ) -> None:
        super().__init__(
            n_shards,
            alpha=alpha,
            latency_weight=latency_weight,
            latency_provider=latency_provider,
            l2s_mode=l2s_mode,
            outdeg_mode=outdeg_mode,
            scorer=make_support_scorer(
                n_shards,
                support_cap,
                alpha=alpha,
                outdeg_mode=outdeg_mode,
                initial_cap=support_initial_cap,
                window=support_window,
            ),
        )

    @property
    def support_cap(self) -> int:
        """Max retained entries per T2S vector (current value - the
        adaptive scorer grows it)."""
        return self.scorer.support_cap
