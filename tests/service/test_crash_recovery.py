"""End-to-end crash recovery: SIGKILL a non-idle worker mid-batch and
require the recovered service to finish the stream bit-identically to a
single uninterrupted engine.

Every scenario runs through :func:`repro.service.faults.run_chaos_scenario`
(the same harness behind ``repro chaos``): a golden single-engine run,
a sharded run with a deterministic fault plan and a retrying client,
and a placement-by-placement comparison. Real worker processes are
spawned and really SIGKILLed.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.datasets.synthetic import synthetic_stream
from repro.errors import OverloadError
from repro.service.client import AsyncBinaryPlacementClient
from repro.service.coordinator import ShardedPlacementServer
from repro.service.faults import FaultPlan, run_chaos_scenario
from repro.service.loadgen import run_loadgen_async

SPEC = {"method": "optchain", "n_shards": 4, "epoch_length": 500}
LEASE = 300


def chaos(tmp_path, **overrides):
    kwargs = dict(
        workdir=str(tmp_path),
        n_workers=2,
        n_txs=1_500,
        lease_length=LEASE,
        chunk_size=150,
        checkpoint_after_chunks=3,
        kill_partition=0,
        kill_after=2,
        kill_point="journal",
    )
    kwargs.update(overrides)
    return asyncio.run(run_chaos_scenario(**kwargs))


class TestKillMidBatch:
    @pytest.mark.parametrize("strategy", ["optchain", "optchain-topk"])
    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_recovers_bit_identically(
        self, tmp_path, n_workers, strategy
    ):
        verdict = chaos(
            tmp_path, n_workers=n_workers, strategy=strategy
        )
        assert verdict["bit_identical"], verdict
        assert verdict["degraded"] is None
        assert verdict["served"] == verdict["n_txs"] == 1_500
        # The crash actually happened and the client actually rode
        # through it - a retry-free run would mean the fault never fired.
        assert verdict["retries"] > 0

    @pytest.mark.parametrize("kill_point", ["place", "writeback"])
    def test_kill_points_after_placement(self, tmp_path, kill_point):
        # Partition 1's leases carry foreign-parent writebacks, so a
        # crash between placement and writeback delivery (or right
        # after delivery) exercises the replay-and-redeliver path.
        verdict = chaos(
            tmp_path, kill_partition=1, kill_point=kill_point
        )
        assert verdict["bit_identical"], verdict
        assert verdict["degraded"] is None
        assert verdict["retries"] > 0

    def test_kill_after_checkpoint(self, tmp_path):
        # Die on a later batch so recovery starts from the checkpoint
        # (cursor 600) plus a short WAL tail, not from genesis.
        verdict = chaos(tmp_path, kill_after=4)
        assert verdict["bit_identical"], verdict
        assert verdict["degraded"] is None


class TestTornTail:
    @pytest.mark.parametrize("torn_bytes", [25, 200])
    def test_torn_wal_tail_recovers(self, tmp_path, torn_bytes):
        # The host "crashed" between write and fsync: the journal loses
        # its tail bytes. CRC framing discards the torn record, the
        # worker comes back slightly behind, and the client's retried
        # submission replays the gap.
        verdict = chaos(tmp_path, torn_wal_bytes=torn_bytes)
        assert verdict["bit_identical"], verdict
        assert verdict["degraded"] is None
        assert verdict["retries"] > 0


class TestBackpressure:
    def test_overload_shed_when_window_full(self):
        async def scenario():
            server = ShardedPlacementServer(
                dict(SPEC),
                1,
                port=0,
                lease_length=LEASE,
                max_inflight=1,
            )
            await server.start()
            stream = synthetic_stream(300, seed=3)
            try:
                client = await AsyncBinaryPlacementClient.connect(
                    port=server.port
                )
                try:
                    # An out-of-order chunk parks in the worker's
                    # reorder buffer while holding the partition's only
                    # in-flight slot; the next request must be shed
                    # with an explicit overload reply, not queued.
                    parked = client.place_nowait(stream[150:300])
                    await asyncio.sleep(0.2)
                    with pytest.raises(OverloadError, match="limit 1"):
                        await client.place(stream[:150])
                finally:
                    await client.close()
                    await asyncio.gather(
                        parked, return_exceptions=True
                    )
            finally:
                await asyncio.wait_for(server.stop(), timeout=30)

        asyncio.run(scenario())

    def test_sequential_load_never_shed(self):
        async def scenario():
            server = ShardedPlacementServer(
                dict(SPEC),
                1,
                port=0,
                lease_length=LEASE,
                max_inflight=1,
            )
            await server.start()
            stream = synthetic_stream(600, seed=3)
            try:
                client = await AsyncBinaryPlacementClient.connect(
                    port=server.port
                )
                try:
                    shards = []
                    for offset in range(0, 600, 150):
                        shards.extend(
                            await client.place(
                                stream[offset : offset + 150]
                            )
                        )
                finally:
                    await client.close()
            finally:
                await server.stop()
            assert len(shards) == 600

        asyncio.run(scenario())


class TestLoadgenThroughChaos:
    def test_loadgen_rides_out_worker_crash(self, tmp_path):
        async def scenario():
            plan = FaultPlan(
                kill_partition=0,
                kill_after=2,
                kill_point="journal",
                once_dir=str(tmp_path),
            )
            server = ShardedPlacementServer(
                dict(SPEC),
                2,
                port=0,
                lease_length=LEASE,
                checkpoint_path=str(tmp_path / "loadgen.snap"),
                respawn_backoff=0.05,
                heartbeat_interval=1.0,
                faults=plan.to_spec(),
            )
            await server.start()
            try:
                report = await run_loadgen_async(
                    port=server.port,
                    n_txs=1_500,
                    n_users=2,
                    chunk_size=150,
                    seed=7,
                    max_retries=30,
                    request_timeout=60.0,
                    retry_backoff=0.05,
                )
            finally:
                await server.stop()
            assert report.errors == 0, report.last_error
            assert report.retries > 0
            assert report.n_txs == 1_500

        asyncio.run(scenario())
