"""Event queue for the discrete-event simulation.

A thin heap of ``(time, sequence, callback)`` entries. The sequence
number makes ordering total and FIFO among simultaneous events, which
keeps runs deterministic - the property every reproducibility test
relies on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError

Callback = Callable[[], Any]


class EventQueue:
    """Time-ordered callback queue with a monotonic clock."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callback]] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def n_pending(self) -> int:
        """Events scheduled but not yet executed."""
        return len(self._heap)

    @property
    def n_processed(self) -> int:
        """Events executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heapq.heappush(
            self._heap, (self._now + delay, self._sequence, callback)
        )
        self._sequence += 1

    def schedule_at(self, time: float, callback: Callback) -> None:
        """Run ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, clock is at {self._now}"
            )
        heapq.heappush(self._heap, (time, self._sequence, callback))
        self._sequence += 1

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _, callback = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        callback()
        return True

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> None:
        """Drain the queue, optionally bounded by time or event count.

        With ``until``, events at times strictly greater are left queued
        and the clock advances to ``until``.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                return
            if until is not None and self._heap[0][0] > until:
                self._now = until
                return
            self.step()
            executed += 1
