"""Direct tests for the wallet population model."""

from __future__ import annotations

import pytest

from repro.datasets.wallets import WalletModel
from repro.errors import ConfigurationError
from repro.rng import make_rng
from repro.utxo.transaction import OutPoint


def funded_model(n=100, **kwargs) -> WalletModel:
    model = WalletModel(n, make_rng(7), **kwargs)
    for address in range(n):
        model.deposit(address, OutPoint(address, 0), 1_000)
    return model


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"partner_stickiness": -0.1},
            {"recency_bias": 1.0},
            {"n_communities": 0},
            {"intra_community_prob": 1.5},
            {"community_exponent": -1.0},
            {"n_hubs": -1},
            {"n_hubs": 100},
            {"hub_payment_prob": 2.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            WalletModel(100, make_rng(1), **kwargs)


class TestCommunities:
    def test_every_community_nonempty(self):
        model = WalletModel(100, make_rng(1), n_communities=16)
        sizes = [model.community_size(c) for c in range(16)]
        assert all(size >= 1 for size in sizes)
        assert sum(sizes) == 100

    def test_zipf_sizes_are_skewed(self):
        model = WalletModel(
            2_000, make_rng(2), n_communities=32, community_exponent=1.3
        )
        sizes = sorted(
            (model.community_size(c) for c in range(32)), reverse=True
        )
        assert sizes[0] > 5 * sizes[-1]

    def test_more_communities_than_wallets_clamped(self):
        model = WalletModel(5, make_rng(1), n_communities=50)
        assert all(0 <= model.community_of(a) < 5 for a in range(5))

    def test_intra_community_payees(self):
        model = funded_model(
            200, n_communities=8, intra_community_prob=1.0,
            partner_stickiness=0.0,
        )
        for spender in range(0, 200, 17):
            payee = model.pick_payee(spender)
            assert model.community_of(payee) == model.community_of(spender)

    def test_global_payees_when_intra_zero(self):
        model = funded_model(
            200, n_communities=8, intra_community_prob=0.0,
            partner_stickiness=0.0,
        )
        communities = {
            model.community_of(model.pick_payee(3)) for _ in range(100)
        }
        assert len(communities) > 1

    def test_payee_never_self(self):
        model = funded_model(50, intra_community_prob=1.0)
        for spender in range(50):
            assert model.pick_payee(spender) != spender


class TestHotCommunities:
    def test_spender_restricted_to_hot_set(self):
        model = funded_model(200, n_communities=8)
        for _ in range(50):
            spender = model.pick_spender(hot_communities=[3])
            assert spender is not None
            assert model.community_of(spender) == 3

    def test_falls_back_when_hot_unfunded(self):
        model = WalletModel(100, make_rng(3), n_communities=8)
        # Fund only community 0 members.
        for address in range(100):
            if model.community_of(address) == 0:
                model.deposit(address, OutPoint(address, 0), 100)
        spender = model.pick_spender(hot_communities=[5])
        assert spender is not None  # global fallback

    def test_none_when_nothing_funded(self):
        model = WalletModel(50, make_rng(1))
        assert model.pick_spender(hot_communities=[0]) is None


class TestHubs:
    def test_hub_flag(self):
        model = funded_model(100, n_hubs=4)
        hubs = [a for a in range(100) if model.is_hub(a)]
        assert len(hubs) == 4

    def test_hub_attracts_payments(self):
        model = funded_model(
            200, n_hubs=2, hub_payment_prob=1.0, partner_stickiness=0.0
        )
        for spender in range(10, 60):
            if model.is_hub(spender):
                continue
            assert model.is_hub(model.pick_payee(spender))

    def test_hub_pays_globally(self):
        model = funded_model(
            400, n_hubs=1, n_communities=8, intra_community_prob=1.0
        )
        hub = next(a for a in range(400) if model.is_hub(a))
        communities = {
            model.community_of(model.pick_payee(hub)) for _ in range(200)
        }
        assert len(communities) > 2


class TestWithdrawRecency:
    def test_recent_bias(self):
        model = WalletModel(10, make_rng(5), recency_bias=0.99)
        for index in range(20):
            model.deposit(0, OutPoint(index, 0), index)
        taken = model.withdraw(0, 1)
        # Overwhelmingly the most recent coin.
        assert taken[0][0].txid >= 15

    def test_withdraw_more_than_held(self):
        model = WalletModel(10, make_rng(5))
        model.deposit(2, OutPoint(0, 0), 7)
        taken = model.withdraw(2, 10)
        assert len(taken) == 1
        assert model.utxo_count(2) == 0

    def test_withdraw_updates_funded_count(self):
        model = WalletModel(10, make_rng(5))
        model.deposit(1, OutPoint(0, 0), 7)
        assert model.n_funded == 1
        model.withdraw(1, 1)
        assert model.n_funded == 0
        model.deposit(1, OutPoint(1, 0), 7)
        assert model.n_funded == 1
