"""Worker process of the sharded placement service.

One worker owns one :class:`~repro.service.partition.EnginePartition`
and a single duplex channel to the coordinator. The worker - not the
coordinator - pays the CPU-heavy work: payload decode, validation, the
fused placement loop, and checkpoint serialization. Its life cycle:

1. build the partition (fresh, or restored from its per-partition
   snapshot), connect, ``W_HELLO`` with its cursor;
2. queue ``W_PLACE`` batches in a local reorder buffer (decode happens
   immediately on arrival, *before* the worker necessarily holds the
   write lease - this is the decode/placement overlap the sharding
   buys);
3. while granted, place contiguous runs from the cursor, resolving
   foreign parents through ``W_ACQUIRE`` and returning mutations
   through ``W_WRITEBACK``; coalesce consecutive queued requests into
   one fused micro-batch and replay request-by-request on atomic
   reject, exactly like the single-process server's dispatcher;
4. on reaching its lease end, export the hot state and ``W_RELEASE``
   the lease; the coordinator grants the next owner.

Run via ``multiprocessing`` (spawn context) from
:mod:`repro.service.coordinator`; :func:`worker_main` is the process
entry point.
"""

from __future__ import annotations

import asyncio
import os
import warnings
from time import perf_counter
from typing import Any

from repro.errors import EngineError, ProtocolError, RetryLaterError
from repro.obs.metrics import ServiceMetrics, rss_kb
from repro.service import channel as ch
from repro.service.channel import ChannelClosed, FrameChannel
from repro.service.engine import PlacementEngine
from repro.service.journal import (
    BatchJournal,
    journal_path_for,
    replay_journal,
)
from repro.service.partition import (
    EnginePartition,
    decode_parent_states,
    encode_parent_states,
)
from repro.service.wire import (
    WireBatch,
    concat_wire_batches,
    decode_place_arrays,
    decode_place_payload,
    decode_response,
    encode_error_response,
    encode_response_for,
)
from repro.utxo.transaction import Transaction


def build_partition(partition_id: int, spec: dict[str, Any]) -> EnginePartition:
    """Fresh-or-restored partition from the coordinator's spec."""
    n_partitions = spec["n_partitions"]
    lease_length = spec["lease_length"]
    path = spec.get("checkpoint")
    if path and os.path.exists(path):
        return EnginePartition.restore(
            path,
            partition_id=partition_id,
            n_partitions=n_partitions,
            lease_length=lease_length,
        )
    # Deferred import: make_placer pulls in the full strategy stack,
    # which the restore path above already loads lazily.
    from repro.core.placement import make_placer

    engine = PlacementEngine(
        make_placer(
            spec["method"],
            spec["n_shards"],
            **spec.get("placer_kwargs", {}),
        ),
        epoch_length=spec.get("epoch_length", 25_000),
        horizon_epochs=spec.get("horizon_epochs"),
        truncate_spent=spec.get("truncate_spent", True),
    )
    return EnginePartition(
        engine,
        partition_id=partition_id,
        n_partitions=n_partitions,
        lease_length=lease_length,
    )


def _merge_members(
    members: "list[list[Transaction] | WireBatch]",
) -> "list[Transaction] | WireBatch":
    """Fuse a contiguous run of queued requests into one engine batch.

    All-array members concatenate without touching a Transaction
    object; a mixed run (an object-path frame - e.g. full-output
    encoding - coalesced with array frames) falls back to one object
    list, since the engine takes a batch of exactly one kind.
    """
    if len(members) == 1:
        return members[0]
    if all(isinstance(member, WireBatch) for member in members):
        return concat_wire_batches(members)
    batch: list[Transaction] = []
    for member in members:
        if isinstance(member, WireBatch):
            for payload in member.payloads:
                batch.extend(decode_place_payload(payload))
        else:
            batch.extend(member)
    return batch


class _Queued:
    """One decoded ``place`` request waiting for the cursor.

    The raw wire payload rides along so the write-ahead journal can
    record the exact post-routing frame without re-encoding.
    """

    __slots__ = ("txs", "payload", "future")

    def __init__(
        self,
        txs: "list[Transaction] | WireBatch",
        payload: bytes,
        future: "asyncio.Future[dict]",
    ) -> None:
        self.txs = txs
        self.payload = payload
        self.future = future

    def resolve(self, shards: list[int]) -> None:
        if not self.future.done():
            self.future.set_result({"ok": True, "shards": shards})

    def fail(self, code: str, error: str) -> None:
        if not self.future.done():
            self.future.set_result(
                {"ok": False, "code": code, "error": error}
            )


class PlacementWorker:
    """The in-process runtime behind one worker process."""

    def __init__(
        self,
        partition: EnginePartition,
        *,
        max_batch_txs: int = 8192,
        max_reorder_requests: int = 1024,
        checkpoint_path: "str | None" = None,
        checkpoint_compress: bool = False,
    ) -> None:
        self._partition = partition
        engine = partition.engine
        # Decided once at startup: with the kernel validator active and
        # no drift monitor attached, ``place`` frames stay as numpy
        # array views end to end (wire -> kernel). A drift monitor
        # needs Transaction objects; deciding here (not per request)
        # keeps the reorder queue single-minded.
        self._wire_arrays = bool(
            getattr(engine, "kernel_validation", False)
            and engine.drift_monitor is None
        )
        if not self._wire_arrays and hasattr(
            engine._placer, "validation_driver"
        ):
            from repro.core.backends.ckernel import (
                kernel_unavailable_reason,
            )

            reason = (
                kernel_unavailable_reason()
                or "kernel-incompatible strategy configuration"
            )
            if engine.drift_monitor is None:
                warnings.warn(
                    "vectorized backend without the compiled kernel "
                    f"({reason}): the worker wire fast path is "
                    "disabled; requests decode through the Python "
                    "object path",
                    RuntimeWarning,
                    stacklevel=2,
                )
        self._max_batch_txs = max_batch_txs
        self._max_reorder = max_reorder_requests
        self._checkpoint_path = checkpoint_path
        self._checkpoint_compress = checkpoint_compress
        self.channel: "FrameChannel | None" = None
        self._queue: dict[int, _Queued] = {}
        # Granted from birth when there is nothing to hand off.
        self._granted = partition.n_partitions == 1
        self._paused = False
        self._draining = False
        self._stopping = False
        self._kick = asyncio.Event()
        self._engine_lock = asyncio.Lock()
        self._stopped = asyncio.Event()
        self._exit = asyncio.Event()
        self._dispatch_task: "asyncio.Task | None" = None
        # Optional deterministic fault injector (service.faults); duck
        # interface: maybe_kill(stage). None in production.
        self.faults: "Any | None" = None
        #: Per-partition serving metrics, shipped to the coordinator in
        #: every W_STATS reply (the scrape path).
        self.metrics = ServiceMetrics()

    # -- lifecycle ---------------------------------------------------------

    @property
    def partition(self) -> EnginePartition:
        return self._partition

    def start(self) -> None:
        self._dispatch_task = asyncio.create_task(self._dispatch_loop())

    async def join(self) -> None:
        """Reap the dispatcher after :meth:`stop`."""
        if self._dispatch_task is None:
            return
        self._kick.set()
        try:
            await asyncio.wait_for(self._dispatch_task, timeout=10)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            self._dispatch_task.cancel()

    async def wait_exit(self) -> None:
        await self._exit.wait()

    def drain(self) -> None:
        """Refuse new work; the dispatcher finishes the contiguous run
        from the cursor, then fails what is left (requests waiting on a
        txid gap that can no longer be filled). The process stays up -
        for checkpoints - until :meth:`stop`."""
        self._draining = True
        self._kick.set()

    def stop(self) -> None:
        self.drain()
        self._stopping = True
        self._kick.set()
        self._exit.set()

    def on_channel_closed(self) -> None:
        # The coordinator is gone: nothing can be granted, acquired, or
        # answered - exit so the process can die instead of hanging.
        self.stop()

    # -- channel handler ---------------------------------------------------

    async def handle(self, kind: int, request_id: int, payload: bytes) -> bytes:
        if kind == ch.W_PLACE:
            response = await self._handle_place(payload)
        elif kind == ch.W_GRANT:
            response = await self._handle_grant(payload)
        elif kind == ch.W_READ:
            body = ch.parse_json_payload(payload)
            async with self._engine_lock:
                states = self._partition.read_parents(body["txids"])
            response = {"ok": True, "states": encode_parent_states(states)}
        elif kind == ch.W_APPLY:
            body = ch.parse_json_payload(payload)
            async with self._engine_lock:
                self._partition.apply_writebacks(body["updates"])
            response = {"ok": True}
        elif kind == ch.W_STATS:
            async with self._engine_lock:
                journal = self._partition.journal
                monitor = self._partition.engine.drift_monitor
                response = {
                    "ok": True,
                    "stats": self._partition.stats(),
                    "obs": {
                        "metrics": self.metrics.as_dict(),
                        "wal": (
                            journal.stats() if journal is not None else None
                        ),
                        "rss_kb": rss_kb(),
                        "drift": (
                            monitor.as_dict() if monitor is not None else None
                        ),
                    },
                }
        elif kind == ch.W_CHECKPOINT:
            response = await self._handle_checkpoint(payload)
        elif kind == ch.W_RESUME:
            self._paused = False
            self._kick.set()
            response = {"ok": True}
        elif kind == ch.W_PING:
            # Liveness probe: answered from the event loop, so a hung
            # or livelocked worker times out at the coordinator.
            response = {"ok": True, "n_placed": self._partition.n_placed}
        elif kind == ch.W_SHUTDOWN:
            body = ch.parse_json_payload(payload)
            self.drain()
            # The dispatcher exits once everything dispatchable has
            # placed and the rest is failed; a drain response therefore
            # means "engine quiescent".
            await self._stopped.wait()
            if not body.get("drain"):
                self._exit.set()
            response = {"ok": True, "n_placed": self._partition.n_placed}
        else:
            return encode_error_response(
                request_id,
                "protocol",
                f"unknown worker-channel kind 0x{kind:02x}",
            )
        return encode_response_for(request_id, response)

    async def _handle_place(self, payload: bytes) -> dict:
        if self._stopping or self._draining:
            return {
                "ok": False,
                "code": "shutdown",
                "error": "worker is shutting down",
            }
        try:
            txs: "list[Transaction] | WireBatch | None" = None
            if self._wire_arrays:
                # None: the frame uses an encoding the array decoder
                # does not cover (full outputs) - the object decoder
                # handles it with identical validation.
                txs = decode_place_arrays(payload)
            if txs is None:
                txs = decode_place_payload(payload)
        except ProtocolError as exc:
            return {"ok": False, "code": "protocol", "error": str(exc)}
        first = (
            txs.first_txid
            if isinstance(txs, WireBatch)
            else txs[0].txid
        )
        partition = self._partition
        if not partition.owns_txid(first):
            return {
                "ok": False,
                "code": "protocol",
                "error": (
                    f"partition {partition.partition_id} does not own "
                    f"txid {first} (coordinator routing bug)"
                ),
            }
        if first < partition.n_placed:
            if first + len(txs) <= partition.n_placed:
                # Exact duplicate of an already-placed range (a client
                # retry after a lost response): answer from the
                # assignment record. Identical to the original reply -
                # resubmission is idempotent.
                return {
                    "ok": True,
                    "shards": partition.assignment_slice(
                        first, len(txs)
                    ),
                }
            return {
                "ok": False,
                "code": "engine",
                "error": (
                    f"transactions from {first} were already placed "
                    f"(next expected: {partition.n_placed})"
                ),
            }
        if first in self._queue:
            # The original submission is still in flight (the retry
            # raced it); back off and resubmit - by then the range is
            # either placed (answered from the record) or failed.
            self.metrics.retry_replies += 1
            return {
                "ok": False,
                "code": "retry",
                "error": f"a request starting at txid {first} is "
                "already queued; retry later",
            }
        if len(self._queue) >= self._max_reorder:
            self.metrics.overload_replies += 1
            return {
                "ok": False,
                "code": "overload",
                "error": f"reorder buffer full ({self._max_reorder} "
                "requests waiting for earlier txids)",
            }
        future: "asyncio.Future[dict]" = (
            asyncio.get_running_loop().create_future()
        )
        self._queue[first] = _Queued(txs, payload, future)
        self._kick.set()
        return await future

    async def _handle_grant(self, payload: bytes) -> dict:
        body = ch.parse_json_payload(payload)
        async with self._engine_lock:
            hot = body.get("hot")
            if hot is not None:
                self._partition.import_hot_state(hot)
            monitor = self._partition.engine.drift_monitor
            if monitor is not None:
                # A new lease starts a new contiguous txid run (the gap
                # is other partitions' leases): restart the shadow at
                # the granted cursor. See obs.drift "windowed mode".
                monitor.rebase(self._partition.n_placed)
        self._granted = True
        self._kick.set()
        return {"ok": True, "n_placed": self._partition.n_placed}

    async def _handle_checkpoint(self, payload: bytes) -> dict:
        body = ch.parse_json_payload(payload)
        if body.get("hold"):
            # Freeze dispatch before snapshotting so the coordinator
            # can take a consistent cross-partition checkpoint; resumed
            # by W_RESUME.
            self._paused = True
        path = body.get("path") or self._checkpoint_path
        if not path:
            return {
                "ok": False,
                "code": "protocol",
                "error": "worker has no checkpoint path",
            }
        async with self._engine_lock:
            size = self._partition.checkpoint(
                path,
                compress=body.get(
                    "compress", self._checkpoint_compress
                ),
            )
            journal = self._partition.journal
            if journal is not None and str(path) == str(
                self._checkpoint_path
            ):
                # The snapshot is on disk; everything the WAL recorded
                # is inside it. Rebind the (truncated) journal to the
                # new snapshot's nonce - still under the engine lock,
                # so no mutation can slip between snapshot and reset.
                # A crash between the two renames leaves a new
                # snapshot beside an old-nonce WAL, which recovery
                # discards as stale - correctly, and losslessly.
                journal.reset(
                    self._partition.n_placed,
                    self._partition.engine.last_snapshot_nonce or "",
                )
        return {
            "ok": True,
            "path": str(path),
            "bytes": size,
            "n_placed": self._partition.n_placed,
        }

    # -- the dispatcher ----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        try:
            while True:
                await self._kick.wait()
                self._kick.clear()
                if not self._stopping:
                    await self._dispatch_ready()
                if self._draining or self._stopping:
                    return
        finally:
            for key in sorted(self._queue):
                self._queue.pop(key).fail(
                    "shutdown",
                    "worker shut down before the txid gap before "
                    "this request was filled",
                )
            self._stopped.set()

    async def _dispatch_ready(self) -> None:
        partition = self._partition
        queue = self._queue
        while (
            self._granted and not self._paused and not self._stopping
        ):  # draining still dispatches the contiguous run
            # Lease release runs at the top of every iteration - not
            # after a batch - so it fires however the cursor reached
            # the boundary (fused batch, per-request replay after an
            # atomic reject, or an import that landed exactly on it),
            # and even when the queue is empty.
            await self._maybe_release_lease()
            if not self._granted or not queue:
                return
            cursor = partition.n_placed
            stale = [key for key in queue if key < cursor]
            for key in stale:
                entry = queue.pop(key)
                if key + len(entry.txs) <= cursor:
                    # A duplicate resubmission whose original placed
                    # while this copy waited in the reorder buffer:
                    # answer from the assignment record.
                    entry.resolve(
                        partition.assignment_slice(key, len(entry.txs))
                    )
                else:
                    entry.fail(
                        "engine",
                        f"transactions from {key} were already placed "
                        f"(next expected: {cursor})",
                    )
            entry = queue.pop(cursor, None)
            if entry is None:
                return
            group = [entry]
            segments = [entry.payload]
            total = len(entry.txs)
            run_next = cursor + total
            while total < self._max_batch_txs:
                follower = queue.pop(run_next, None)
                if follower is None:
                    break
                group.append(follower)
                segments.append(follower.payload)
                count = len(follower.txs)
                run_next += count
                total += count
            batch = _merge_members([member.txs for member in group])
            async with self._engine_lock:
                try:
                    started = perf_counter()
                    shards = await self._place_with_remotes(
                        batch, segments
                    )
                    # Includes acquire/writeback round-trips: this is
                    # the latency a client's batch actually observes
                    # at this partition.
                    self.metrics.record_batch(
                        len(batch), perf_counter() - started
                    )
                except RetryLaterError as exc:
                    # A foreign owner is recovering: nothing placed;
                    # the identical requests can be resubmitted once
                    # it is back.
                    for member in group:
                        member.fail("retry", str(exc))
                    continue
                except EngineError as exc:
                    self.metrics.error_replies += 1
                    if len(group) == 1:
                        entry.fail("engine", str(exc))
                        continue
                    # Atomic validation placed nothing; replay one
                    # request at a time so only the offender fails.
                    for member in group:
                        try:
                            member.resolve(
                                await self._place_with_remotes(
                                    member.txs, [member.payload]
                                )
                            )
                        except RetryLaterError as member_exc:
                            member.fail("retry", str(member_exc))
                        except EngineError as member_exc:
                            member.fail("engine", str(member_exc))
                        except ChannelClosed:
                            member.fail(
                                "engine", "coordinator link lost"
                            )
                    continue
                except ChannelClosed:
                    for member in group:
                        member.fail("engine", "coordinator link lost")
                    continue
                except Exception as exc:  # noqa: BLE001 - a placer bug
                    # must fail these requests, not kill the worker's
                    # dispatcher.
                    for member in group:
                        member.fail(
                            "engine",
                            f"internal error placing batch: {exc!r}",
                        )
                    continue
            offset = 0
            for member in group:
                count = len(member.txs)
                member.resolve(shards[offset : offset + count])
                offset += count
            await asyncio.sleep(0)

    async def _place_with_remotes(
        self,
        batch: "list[Transaction] | WireBatch",
        segments: "list[bytes] | None" = None,
    ) -> list[int]:
        """One batch through acquire -> place -> writeback."""
        partition = self._partition
        needed = partition.parents_needed(batch)
        states: dict[int, dict[str, Any]] = {}
        if needed:
            kind, payload = await self.channel.request(
                ch.W_ACQUIRE, ch.json_payload({"txids": needed})
            )
            response = decode_response(kind, payload)
            if not response.get("ok"):
                message = (
                    "cross-partition parent lookup failed: "
                    + response.get("error", "unknown error")
                )
                if response.get("code") == "retry":
                    # The owner is recovering: nothing was placed and
                    # nothing journaled - the same batch is retryable.
                    raise RetryLaterError(message)
                raise EngineError(message)
            states = decode_parent_states(response["states"])
        shards, writebacks = partition.place_batch(
            batch, states, raw_segments=segments
        )
        if self.faults is not None:
            self.faults.maybe_kill("place")
        if writebacks:
            kind, payload = await self.channel.request(
                ch.W_WRITEBACK, ch.json_payload({"updates": writebacks})
            )
            response = decode_response(kind, payload)
            if not response.get("ok"):
                # The batch is committed locally; a failed writeback
                # means an owner is gone or forked. The coordinator
                # buffers writebacks for a recovering owner (and
                # degrades the service on a refusal), so subsequent
                # placements are refused; surfacing an error here
                # would mis-report this already-placed batch.
                pass
        if self.faults is not None:
            self.faults.maybe_kill("writeback")
        return shards

    async def _maybe_release_lease(self) -> None:
        partition = self._partition
        if partition.n_partitions == 1:
            return
        cursor = partition.n_placed
        if cursor % partition.lease_length != 0:
            return
        if partition.owns_txid(cursor):
            return
        hot = partition.export_hot_state()
        self._granted = False
        kind, payload = await self.channel.request(
            ch.W_RELEASE, ch.json_payload({"hot": hot})
        )
        response = decode_response(kind, payload)
        if not response.get("ok"):
            # The coordinator could not pass the lease on; it owns
            # degradation policy. Nothing left for this worker to do.
            pass


async def _run_worker(
    host: str,
    port: int,
    token: str,
    partition_id: int,
    spec: dict[str, Any],
) -> None:
    partition = build_partition(partition_id, spec)
    checkpoint_path = spec.get("checkpoint")
    recovery: "dict[str, Any] | None" = None
    journal: "BatchJournal | None" = None
    if checkpoint_path and spec.get("wal", True):
        # Crash recovery: replay the WAL tail on top of whatever
        # build_partition restored (the checkpoint, or a fresh engine
        # when no checkpoint was ever written - the journal's base
        # nonce distinguishes the two), then keep appending to it.
        wal_path = journal_path_for(checkpoint_path)
        replay = replay_journal(wal_path, partition)
        if replay.replayed and (
            replay.n_batches or replay.n_grants or replay.n_applies
            or replay.torn_bytes
        ):
            recovery = {
                "writebacks": replay.writebacks,
                "n_batches": replay.n_batches,
                "n_grants": replay.n_grants,
                "n_applies": replay.n_applies,
                "torn_bytes": replay.torn_bytes,
            }
        journal = BatchJournal(
            wal_path,
            partition_id,
            spec["n_partitions"],
            spec["lease_length"],
            sync_every_bytes=spec.get("wal_sync_bytes", 1 << 20),
        )
        journal.open(
            partition.n_placed,
            partition.engine.last_snapshot_nonce or "",
        )
        partition.journal = journal
    sample_every = spec.get("drift_sample_every") or 0
    if sample_every > 0:
        # Attach after WAL replay: replay may import grants/pads that
        # bypass the engine's batch path, so the shadow starts at the
        # recovered cursor (a rebase also happens at every grant).
        from repro.obs.drift import DriftMonitor

        monitor = DriftMonitor(
            spec["n_shards"],
            method=spec["method"],
            sample_every=sample_every,
            window=spec.get("drift_window", 20_000),
            threshold=spec.get("drift_threshold", 0.01),
            min_samples=spec.get("drift_min_samples", 500),
        )
        if partition.n_placed:
            monitor.rebase(partition.n_placed)
        partition.engine.drift_monitor = monitor
    worker = PlacementWorker(
        partition,
        max_batch_txs=spec.get("max_batch_txs", 8192),
        max_reorder_requests=spec.get("max_reorder_requests", 1024),
        checkpoint_path=checkpoint_path,
        checkpoint_compress=spec.get("checkpoint_compress", False),
    )
    if spec.get("faults"):
        # Deferred import: production workers never pay for it.
        from repro.service.faults import FaultInjector, FaultPlan

        injector = FaultInjector(
            FaultPlan.from_spec(spec["faults"]), partition_id
        )
        if injector.active:
            worker.faults = injector
            if journal is not None:
                journal.on_batch_append = injector.on_batch_append
    reader, writer = await asyncio.open_connection(host, port)
    link = FrameChannel(
        reader, writer, worker.handle, on_close=worker.on_channel_closed
    )
    worker.channel = link
    hello: dict[str, Any] = {
        "partition_id": partition_id,
        "token": token,
        "n_placed": partition.n_placed,
        "pid": os.getpid(),
    }
    if recovery is not None:
        hello["recovery"] = recovery
    kind, payload = await link.request(
        ch.W_HELLO, ch.json_payload(hello)
    )
    response = decode_response(kind, payload)
    if not response.get("ok"):
        raise SystemExit(
            f"coordinator refused worker {partition_id}: "
            f"{response.get('error')}"
        )
    worker.start()
    await worker.wait_exit()
    await worker.join()
    await link.close()
    if journal is not None:
        journal.close()


def worker_main(
    host: str,
    port: int,
    token: str,
    partition_id: int,
    spec: dict[str, Any],
) -> None:
    """Process entry point (multiprocessing spawn target)."""
    asyncio.run(_run_worker(host, port, token, partition_id, spec))
