"""Command-line interface: ``optchain`` (or ``python -m repro``).

Subcommands:

- ``place``      - place a synthetic stream with a chosen strategy and
  print cross-shard/balance statistics.
- ``simulate``   - run one discrete-event simulation and print the §V
  metrics.
- ``experiment`` - regenerate a paper table/figure
  (``table1 table2 fig2 ... fig11`` or ``all``).
- ``generate``   - write a synthetic workload to JSONL or edge-list.
- ``stats``      - TaN statistics of a stream file.
- ``serve``      - run the long-lived placement service (binary +
  NDJSON codecs over TCP, checkpoint/restore, epoch-bounded T2S
  memory; ``--workers N`` shards it across partitioned worker
  processes behind a routing front-end).
- ``loadgen``    - replay a synthetic stream against a running service
  from many simulated users (open or closed loop, either codec).
"""

from __future__ import annotations

import argparse
import importlib
import sys

from repro import __version__

_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument grammar."""
    parser = argparse.ArgumentParser(
        prog="optchain",
        description="OptChain (ICDCS 2019) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    place = commands.add_parser(
        "place", help="place a synthetic stream and print statistics"
    )
    place.add_argument(
        "--method",
        "--strategy",
        default="optchain",
        help="strategy name or full spec string, e.g. "
        "optchain-topk:cap=auto:0.01,backend=numpy",
    )
    place.add_argument("--shards", type=int, default=16)
    place.add_argument("--transactions", type=int, default=20_000)
    place.add_argument("--seed", type=int, default=1)
    place.add_argument(
        "--support-cap",
        type=str,
        default=None,
        help="retained T2S entries per vector, or auto:<rate> for the "
        "adaptive cap (optchain-topk / t2s-topk; default: the "
        "strategy's built-in cap); shorthand for the cap= spec option",
    )
    place.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default=None,
        help="execution backend: python (the golden reference), numpy "
        "(typed-array state + compiled kernel, bit-identical), or auto "
        "(numpy when available); shorthand for the backend= spec option",
    )

    simulate = commands.add_parser(
        "simulate", help="run one discrete-event simulation"
    )
    simulate.add_argument(
        "--method",
        "--strategy",
        default="optchain",
        help="strategy name or full spec string (see place --method)",
    )
    simulate.add_argument("--shards", type=int, default=16)
    simulate.add_argument("--transactions", type=int, default=20_000)
    simulate.add_argument("--rate", type=float, default=300.0)
    simulate.add_argument("--block-capacity", type=int, default=200)
    simulate.add_argument(
        "--protocol", choices=("omniledger", "rapidchain"),
        default="omniledger",
    )
    simulate.add_argument(
        "--validate",
        action="store_true",
        help="full per-shard UTXO validation (dependency parking, "
        "natural double-spend rejection)",
    )
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument(
        "--support-cap",
        type=str,
        default=None,
        help="retained T2S entries per vector, or auto:<rate> "
        "(optchain-topk / t2s-topk)",
    )
    simulate.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default=None,
        help="execution backend (see place --backend)",
    )

    experiment = commands.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument(
        "name", choices=_EXPERIMENTS + ("all",)
    )
    experiment.add_argument(
        "--scale", default=None, help="tiny | default | paper"
    )

    generate = commands.add_parser(
        "generate", help="write a synthetic workload to disk"
    )
    generate.add_argument("path")
    generate.add_argument("--transactions", type=int, default=100_000)
    generate.add_argument("--seed", type=int, default=1)
    generate.add_argument(
        "--format", choices=("jsonl", "edges"), default="jsonl"
    )

    stats = commands.add_parser(
        "stats", help="TaN statistics of a stream file"
    )
    stats.add_argument("path")
    stats.add_argument(
        "--format", choices=("jsonl", "edges"), default="jsonl"
    )

    serve = commands.add_parser(
        "serve", help="run the long-lived placement service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9171)
    serve.add_argument(
        "--method",
        "--strategy",
        default="optchain",
        help="strategy name or full spec string (see place --method)",
    )
    serve.add_argument("--shards", type=int, default=16)
    serve.add_argument(
        "--support-cap",
        type=str,
        default=None,
        help="retained T2S entries per vector, or auto:<rate> for the "
        "adaptive cap (optchain-topk / t2s-topk; bounded-support "
        "scoring for the 64+-shard regime)",
    )
    serve.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default=None,
        help="execution backend (see place --backend)",
    )
    serve.add_argument(
        "--epoch-length",
        type=int,
        default=25_000,
        help="placements per truncation epoch",
    )
    serve.add_argument(
        "--horizon-epochs",
        type=int,
        default=None,
        help="drop T2S vectors older than this many epochs (bounded "
        "memory; omit for the exact fully-spent-only policy)",
    )
    serve.add_argument(
        "--no-truncate-spent",
        action="store_true",
        help="keep even fully-spent vectors (measurement baseline)",
    )
    serve.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="snapshot file: restored on startup when it exists, "
        "written on shutdown (SIGTERM/SIGINT/shutdown op)",
    )
    serve.add_argument(
        "--checkpoint-compress",
        action="store_true",
        help="zlib-compress snapshot array sections (smaller "
        "checkpoints at a few tens of ms of CPU; restore "
        "auto-detects)",
    )
    serve.add_argument(
        "--checkpoint-delta",
        type=int,
        default=None,
        metavar="N",
        help="epoch-aligned delta checkpoints: between full snapshots, "
        "write only state touched since the base (format v3); every "
        "Nth checkpoint compacts to a full one (single-process serve "
        "only)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=8192, dest="max_batch",
        help="micro-batch / request size ceiling in transactions",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="run N partitioned worker processes behind a routing "
        "front-end (0 = classic single-process server); partitions "
        "own contiguous txid leases with ownership handoff",
    )
    serve.add_argument(
        "--lease-length",
        type=int,
        default=25_000,
        help="txids per ownership lease in --workers mode",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        help="per-partition in-flight request window in --workers "
        "mode; beyond it requests are shed with an 'overload' reply",
    )
    serve.add_argument(
        "--heartbeat",
        type=float,
        default=5.0,
        help="worker liveness-probe interval in seconds in --workers "
        "mode (0 disables heartbeats)",
    )
    serve.add_argument(
        "--respawn-max",
        type=int,
        default=3,
        help="respawn attempts per crashed worker before the service "
        "degrades (--workers mode)",
    )
    serve.add_argument(
        "--no-wal",
        action="store_true",
        help="disable the per-partition write-ahead batch journal "
        "(crashed non-idle workers then cannot recover losslessly)",
    )

    loadgen = commands.add_parser(
        "loadgen", help="replay a synthetic stream against a service"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=9171)
    loadgen.add_argument("--transactions", type=int, default=20_000)
    loadgen.add_argument("--users", type=int, default=8)
    loadgen.add_argument("--chunk-size", type=int, default=256)
    loadgen.add_argument(
        "--mode", choices=("closed", "open"), default="closed"
    )
    loadgen.add_argument(
        "--rate",
        type=float,
        default=None,
        help="offered load in tx/s (open mode)",
    )
    loadgen.add_argument(
        "--proto",
        choices=("binary", "json"),
        default="binary",
        help="wire codec: binary frames (fast) or NDJSON (compat)",
    )
    loadgen.add_argument("--seed", type=int, default=1)
    loadgen.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request timeout in seconds (default: wait forever)",
    )
    loadgen.add_argument(
        "--retries",
        type=int,
        default=0,
        help="transparent per-request retries on retryable failures "
        "(retry/overload replies, timeouts, connection resets)",
    )
    loadgen.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        help="base of the jittered exponential retry backoff (s)",
    )

    chaos = commands.add_parser(
        "chaos",
        help="deterministic crash-recovery check: kill a non-idle "
        "worker mid-stream, verify bit-identical recovery",
    )
    chaos.add_argument("--workers", type=int, default=2)
    chaos.add_argument("--transactions", type=int, default=3_000)
    chaos.add_argument("--shards", type=int, default=4)
    chaos.add_argument(
        "--method",
        "--strategy",
        default="optchain",
        help="strategy name or full spec string (see place --method)",
    )
    chaos.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default=None,
        help="execution backend (see place --backend)",
    )
    chaos.add_argument("--lease-length", type=int, default=600)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--kill-partition",
        type=int,
        default=0,
        help="partition whose worker is SIGKILLed",
    )
    chaos.add_argument(
        "--kill-after",
        type=int,
        default=2,
        help="die on the Nth journaled batch",
    )
    chaos.add_argument(
        "--kill-point",
        choices=("journal", "place", "writeback"),
        default="journal",
        help="batch lifecycle point to die at",
    )
    chaos.add_argument(
        "--torn-wal-bytes",
        type=int,
        default=0,
        help="truncate this many bytes off the journal tail before "
        "dying (simulated torn write)",
    )
    chaos.add_argument(
        "--workdir",
        default=None,
        help="scratch directory for checkpoints + journals "
        "(default: a fresh temporary directory)",
    )
    chaos.add_argument(
        "--log",
        default=None,
        help="also append the chaos event log to this file",
    )
    return parser


def _build_spec(args):
    """One parsed :class:`StrategySpec` from the strategy flags.

    ``--method``/``--strategy`` accepts a full spec string
    (``optchain-topk:cap=auto:0.01,backend=numpy``); the loose
    ``--support-cap`` and ``--backend`` flags are kept as aliases that
    desugar into the same spec, so old invocations keep working. A cap
    given for a strategy that ignores it is flagged rather than
    silently dropped - same principle as the restored-checkpoint
    override warnings in ``serve``.
    """
    from repro.core.spec import TOPK_METHODS, StrategySpec
    from repro.errors import ConfigurationError

    try:
        spec = StrategySpec.parse(args.method)
    except ConfigurationError as exc:
        print(f"error: --method: {exc}", file=sys.stderr, flush=True)
        raise SystemExit(2)
    cap = getattr(args, "support_cap", None)
    if cap is not None:
        if spec.method not in TOPK_METHODS:
            print(
                f"warning: --support-cap={cap} ignored; only the topk "
                f"strategies bound vector support (got --method/"
                f"--strategy {spec.method})",
                file=sys.stderr,
                flush=True,
            )
        elif spec.cap is not None:
            print(
                f"error: --support-cap={cap} conflicts with "
                f"cap={spec.cap} inside --method {args.method!r}",
                file=sys.stderr,
                flush=True,
            )
            raise SystemExit(2)
        else:
            mode, value = _parse_cap_or_exit(cap)
            spec = spec.with_cap(cap if mode == "auto" else value)
    backend = getattr(args, "backend", None)
    if backend is not None:
        spec = spec.with_backend(backend)
    return spec


def _make_placer_or_exit(spec, n_shards: int, **kwargs):
    """Spec -> placer, with a clean CLI error (exit 2) on bad config
    (unknown strategy, explicit numpy backend without numpy, ...)."""
    from repro.core.placement import make_placer
    from repro.errors import ConfigurationError

    try:
        return make_placer(spec, n_shards, **kwargs)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr, flush=True)
        raise SystemExit(2)


def _resolve_backend_or_exit(spec):
    """Pin ``backend=auto`` to the concrete backend running here.

    Used where the spec crosses a process or persistence boundary
    (worker specs, chaos scenarios): the string handed over must name
    what actually runs, not re-resolve per consumer.
    """
    from repro.errors import ConfigurationError

    try:
        return spec.with_backend(spec.resolve_backend())
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr, flush=True)
        raise SystemExit(2)


def _parse_cap_or_exit(cap):
    """Validate a --support-cap value with a clean CLI error."""
    from repro.core.scorer import parse_support_cap
    from repro.errors import ConfigurationError

    try:
        return parse_support_cap(cap)
    except ConfigurationError as exc:
        print(f"error: --support-cap: {exc}", file=sys.stderr, flush=True)
        raise SystemExit(2)


def _cmd_place(args) -> int:
    from repro.datasets.synthetic import synthetic_stream
    from repro.partition.quality import balance_ratio, cross_shard_fraction

    spec = _build_spec(args)
    stream = synthetic_stream(args.transactions, seed=args.seed)
    kwargs = {}
    if spec.method in ("greedy", "t2s", "t2s-topk"):
        kwargs["expected_total"] = len(stream)
    if spec.method == "metis":
        from repro.partition.metis_like import partition_tan
        from repro.txgraph.tan import TaNGraph

        assignment = partition_tan(
            TaNGraph.from_transactions(stream), args.shards
        )
    else:
        placer = _make_placer_or_exit(spec, args.shards, **kwargs)
        assignment = placer.place_stream(stream)
        print(f"backend:      {placer.backend}")
    print(f"method:       {spec}")
    print(f"transactions: {len(stream)}")
    print(f"shards:       {args.shards}")
    print(
        f"cross-shard:  "
        f"{cross_shard_fraction(stream, assignment):.2%}"
    )
    print(
        f"balance:      {balance_ratio(assignment, args.shards):.3f}"
    )
    return 0


def _cmd_simulate(args) -> int:
    from repro.analysis.report import summarize_result
    from repro.datasets.synthetic import synthetic_stream
    from repro.simulator import SimulationConfig, run_simulation

    spec = _build_spec(args)
    stream = synthetic_stream(args.transactions, seed=args.seed)
    placer = _make_placer_or_exit(spec, args.shards)
    config = SimulationConfig(
        n_shards=args.shards,
        tx_rate=args.rate,
        block_capacity=args.block_capacity,
        block_size_bytes=args.block_capacity * 500,
        consensus_per_tx_s=min(0.01, 1.0 / args.block_capacity),
        max_sim_time_s=50_000.0,
        protocol=args.protocol,
        validate_ledger=args.validate,
        seed=args.seed,
    )
    result = run_simulation(stream, placer, config)
    print(summarize_result(result))
    return 0


def _cmd_experiment(args) -> int:
    names = _EXPERIMENTS if args.name == "all" else (args.name,)
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        module.main(args.scale)
        print()
    return 0


def _cmd_generate(args) -> int:
    from repro.datasets.io import save_edge_list, save_stream_jsonl
    from repro.datasets.synthetic import synthetic_stream

    stream = synthetic_stream(args.transactions, seed=args.seed)
    if args.format == "jsonl":
        count = save_stream_jsonl(stream, args.path)
        print(f"wrote {count} transactions to {args.path}")
    else:
        count = save_edge_list(stream, args.path)
        print(f"wrote {count} TaN edges to {args.path}")
    return 0


def _cmd_stats(args) -> int:
    from repro.datasets.io import load_edge_list, load_stream_jsonl
    from repro.txgraph.stats import graph_summary
    from repro.txgraph.tan import TaNGraph

    if args.format == "jsonl":
        stream = list(load_stream_jsonl(args.path))
    else:
        stream = load_edge_list(args.path)
    summary = graph_summary(TaNGraph.from_transactions(stream))
    print(f"nodes:            {summary.n_nodes}")
    print(f"edges:            {summary.n_edges}")
    print(f"average degree:   {summary.average_degree:.3f}")
    print(f"coinbase:         {summary.n_coinbase}")
    print(f"unspent frontier: {summary.n_unspent_frontier}")
    print(f"in-degree < 3:    {summary.fraction_in_degree_below_3:.1%}")
    print(f"out-degree < 10:  {summary.fraction_out_degree_below_10:.1%}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import os
    import signal

    from repro.service.engine import PlacementEngine
    from repro.service.server import PlacementServer

    spec = _build_spec(args)
    if args.workers:
        return _serve_sharded(args, spec)
    if args.checkpoint and os.path.exists(args.checkpoint):
        from repro.core.spec import StrategySpec

        engine = PlacementEngine.restore(args.checkpoint)
        print(
            f"restored {engine.n_placed} placements from "
            f"{args.checkpoint}",
            flush=True,
        )
        # The snapshot's configuration wins on restore (the placer's
        # identity is baked into its state); flag any CLI flags it
        # silently overrides so an operator expecting, say, a new
        # horizon policy finds out at startup, not from memory graphs.
        restored_spec = StrategySpec.of_placer(engine.placer)
        restored_config = dict(
            engine.export_config(),
            method=restored_spec.method,
            shards=engine.n_shards,
        )
        requested = {
            "method": spec.method,
            "shards": args.shards,
            "epoch_length": args.epoch_length,
            "horizon_epochs": args.horizon_epochs,
            "truncate_spent": not args.no_truncate_spent,
        }
        if spec.cap is not None:
            restored_config["support_cap"] = _restored_cap_setting(
                engine.placer
            )
            mode, value = _parse_cap_or_exit(spec.cap)
            requested["support_cap"] = (
                f"auto:{value!r}" if mode == "auto" else value
            )
        if spec.backend != "auto":
            # backend=auto means "whatever runs here", which the
            # restored configuration trivially satisfies; only an
            # explicit request can be overridden.
            restored_config["backend"] = restored_spec.backend
            requested["backend"] = spec.backend
        for key, wanted in requested.items():
            have = restored_config[key]
            if wanted != have:
                print(
                    f"warning: --{key.replace('_', '-')}={wanted} "
                    f"ignored; the checkpoint was taken with {have} "
                    "(delete the checkpoint to reconfigure)",
                    file=sys.stderr,
                    flush=True,
                )
    else:
        engine = PlacementEngine(
            _make_placer_or_exit(spec, args.shards),
            epoch_length=args.epoch_length,
            horizon_epochs=args.horizon_epochs,
            truncate_spent=not args.no_truncate_spent,
        )

    async def _run() -> None:
        server = PlacementServer(
            engine,
            args.host,
            args.port,
            max_batch_txs=args.max_batch,
            checkpoint_path=args.checkpoint,
            checkpoint_compress=args.checkpoint_compress,
            checkpoint_delta_every=args.checkpoint_delta,
        )
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: loop.create_task(server.stop())
            )
        print(
            f"serving {spec} (k={engine.n_shards}) on "
            f"{args.host}:{server.port}",
            flush=True,
        )
        await server.wait_stopped()
        stats = engine.stats()
        print(
            f"stopped after {stats.n_placed} placements"
            + (
                f"; checkpoint written to {args.checkpoint}"
                if args.checkpoint
                else ""
            ),
            flush=True,
        )

    asyncio.run(_run())
    return 0


def _restored_cap_setting(placer):
    """The restored placer's support-cap *configuration*, in the same
    canonical form as a parsed --support-cap argument - adaptive
    scorers compare by target rate (their current cap legitimately
    drifts), fixed ones by the cap itself."""
    scorer = getattr(placer, "scorer", None)
    if getattr(scorer, "kind", "") == "topk-adaptive":
        return f"auto:{scorer.target_rate!r}"
    return getattr(placer, "support_cap", None)


def _serve_sharded(args, strategy_spec) -> int:
    """``repro serve --workers N``: the partitioned service."""
    import asyncio
    import signal

    from repro.service.coordinator import ShardedPlacementServer

    if args.checkpoint_delta is not None:
        print(
            f"warning: --checkpoint-delta={args.checkpoint_delta} "
            "ignored; --workers mode writes full per-partition "
            "snapshots (delta checkpoints are single-process only)",
            file=sys.stderr,
            flush=True,
        )
    # The canonical spec string is the whole strategy configuration
    # (method, cap, backend): workers rebuild their placer from it via
    # make_placer, and the checkpoint-set manifest compares it against
    # later restores as one value. ``auto`` is resolved *here* so every
    # worker (including crash respawns) runs the same backend.
    strategy_spec = _resolve_backend_or_exit(strategy_spec)
    spec = {
        "method": str(strategy_spec),
        "n_shards": args.shards,
        "epoch_length": args.epoch_length,
        "horizon_epochs": args.horizon_epochs,
        "truncate_spent": not args.no_truncate_spent,
    }

    async def _run() -> None:
        server = ShardedPlacementServer(
            spec,
            args.workers,
            args.host,
            args.port,
            lease_length=args.lease_length,
            max_batch_txs=args.max_batch,
            checkpoint_path=args.checkpoint,
            checkpoint_compress=args.checkpoint_compress,
            max_inflight=args.max_inflight,
            heartbeat_interval=args.heartbeat,
            max_respawns=args.respawn_max,
            wal=not args.no_wal,
        )
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: loop.create_task(server.stop())
            )
        print(
            f"serving {strategy_spec} (k={args.shards}) on "
            f"{args.host}:{server.port} with {args.workers} workers "
            f"(lease {args.lease_length})",
            flush=True,
        )
        await server.wait_stopped()
        print(
            f"stopped after {server._cursor} placements"
            + (
                f"; checkpoints written to {args.checkpoint}.p*"
                if args.checkpoint
                else ""
            ),
            flush=True,
        )

    asyncio.run(_run())
    return 0


def _cmd_loadgen(args) -> int:
    from repro.errors import ServiceError
    from repro.service.loadgen import run_loadgen

    try:
        report = run_loadgen(
            host=args.host,
            port=args.port,
            n_txs=args.transactions,
            n_users=args.users,
            chunk_size=args.chunk_size,
            mode=args.mode,
            rate=args.rate,
            seed=args.seed,
            proto=args.proto,
            request_timeout=args.timeout,
            max_retries=args.retries,
            retry_backoff=args.retry_backoff,
        )
    except (ServiceError, ConnectionError, OSError) as exc:
        print(
            f"error: loadgen could not drive {args.host}:{args.port}: "
            f"{exc}",
            file=sys.stderr,
            flush=True,
        )
        return 1
    print(report.summary())
    if report.errors:
        # A lossy run must not look like a clean one to CI or scripts:
        # the summary above already names the last error.
        print(
            f"error: {report.errors} of {report.n_chunks} requests "
            "failed"
            + (
                f" (last: {report.last_error})"
                if report.last_error
                else ""
            ),
            file=sys.stderr,
            flush=True,
        )
        return 1
    return 0


def _cmd_chaos(args) -> int:
    import asyncio
    import json as json_module
    import tempfile

    from repro.service.faults import run_chaos_scenario

    spec = _resolve_backend_or_exit(_build_spec(args))

    def run(workdir: str) -> dict:
        return asyncio.run(
            run_chaos_scenario(
                workdir=workdir,
                n_workers=args.workers,
                n_txs=args.transactions,
                n_shards=args.shards,
                strategy=str(spec),
                lease_length=args.lease_length,
                seed=args.seed,
                kill_partition=args.kill_partition,
                kill_after=args.kill_after,
                kill_point=args.kill_point,
                torn_wal_bytes=args.torn_wal_bytes,
                log=lambda message: print(message, flush=True),
            )
        )

    if args.workdir:
        result = run(args.workdir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as d:
            result = run(d)
    if args.log:
        with open(args.log, "a") as fh:
            fh.write(
                json_module.dumps(result, separators=(",", ":")) + "\n"
            )
    if not result["ok"]:
        print(
            "error: chaos scenario failed: "
            + (
                f"service degraded ({result['degraded']})"
                if result["degraded"]
                else "recovered placements diverged from the golden "
                f"run (first at {result['first_divergence']})"
            ),
            file=sys.stderr,
            flush=True,
        )
        return 1
    print(
        f"chaos ok: {result['served']} placements bit-identical "
        f"through a '{result['kill_point']}' crash "
        f"({result['retries']} client retries, "
        f"{result['recovery_s']}s recovery)",
        flush=True,
    )
    return 0


_HANDLERS = {
    "place": _cmd_place,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "chaos": _cmd_chaos,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
