"""Baseline placement strategies the paper compares against (§IV-B, §V).

- :class:`OmniLedgerRandomPlacer` - the incumbent: hash the transaction
  to a shard. Balanced but blind to structure (94-99.98% cross-TXs).
- :class:`GreedyPlacer` - place with the most input transactions, under a
  ``(1 + epsilon) * n/k`` size cap (the paper's Greedy, §IV-B).
- :class:`T2SOnlyPlacer` - argmax of the T2S score under the same cap
  (the "T2S-based" method of Tables I/II; alpha = 0.5, epsilon = 0.1).
- :class:`MetisOfflinePlacer` - replays a precomputed offline partition
  (METIS k-way in the paper, our multilevel partitioner here). Unrealistic
  - it requires the whole future - but the paper's lower bound on
  cross-TXs.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.core._fenwick import FenwickFlags
from repro.core.placement import PlacementStrategy
from repro.core.scorer import DEFAULT_SUPPORT_CAP
from repro.core.t2s import T2SScorer, make_support_scorer
from repro.errors import ConfigurationError, PlacementError
from repro.rng import make_rng
from repro.utxo.transaction import Transaction

PAPER_EPSILON = 0.1


class OmniLedgerRandomPlacer(PlacementStrategy):
    """OmniLedger's default placement: ``hash(tx) mod k``."""

    name = "omniledger"

    def _choose(self, tx: Transaction) -> int:
        # Transaction.shard_hash inlined (same digest, same modulus):
        # n_shards > 0 is already enforced at construction.
        return int.from_bytes(tx.digest()[:8], "big") % self.n_shards

    def place(self, tx: Transaction) -> int:
        """Place one transaction; returns its shard.

        Overrides the base wrapper with the hash choice inlined - this
        is the per-issued-transaction path of every random-placement
        simulation, and the choice cannot go out of range, so the
        wrapper's range re-check and the ``_choose`` frame are skipped.
        Decisions and bookkeeping are identical to the base class (the
        simulator equivalence tests pin this).
        """
        assignment = self._assignment
        if tx.txid != len(assignment):
            raise PlacementError(
                f"transactions must be placed in dense stream order: got "
                f"{tx.txid}, expected {len(assignment)}"
            )
        shard = int.from_bytes(tx.digest()[:8], "big") % self.n_shards
        assignment.append(shard)
        self._bump_shard_size(shard)
        return shard


TIE_BREAKS = ("first", "lightest", "random")


class _CappedPlacer(PlacementStrategy):
    """Shared size-cap logic for Greedy and T2S-based placers.

    The paper caps each shard at ``(1 + epsilon) * floor(n / k)`` where
    ``n`` is the total number of transactions. ``expected_total`` supplies
    ``n`` when known (Table I/II runs know the stream length); without
    it the cap tracks the running count, keeping the same (1 + epsilon)
    headroom over the ideal share at every moment.

    ``tie_break`` decides among equal-score shards:

    - ``"random"`` (default, paper-faithful): a uniformly random shard
      among the tied ones. Transactions with no informative inputs (all
      coinbases, and every overflow past a capped favourite) scatter,
      which is how the paper's Greedy fragments wallet chains across
      shards and lands at 24-29% cross-TXs while the deep-ancestry T2S
      score re-coheres them (Table I).
    - ``"first"``: plain argmin-index argmax. Ties pile into the lowest
      shard id, producing wave-fill dynamics and the extreme temporal
      imbalance of the paper's Fig. 6c.
    - ``"lightest"``: prefer the smaller shard - a balance-aware variant
      measured in the ablation bench.
    """

    def __init__(
        self,
        n_shards: int,
        epsilon: float = PAPER_EPSILON,
        expected_total: int | None = None,
        tie_break: str = "random",
        seed: int = 0,
    ) -> None:
        super().__init__(n_shards)
        if epsilon < 0:
            raise ConfigurationError(f"epsilon must be >= 0, got {epsilon}")
        if expected_total is not None and expected_total <= 0:
            raise ConfigurationError(
                f"expected_total must be > 0, got {expected_total}"
            )
        if tie_break not in TIE_BREAKS:
            raise ConfigurationError(
                f"tie_break must be one of {TIE_BREAKS}, got {tie_break!r}"
            )
        self.epsilon = epsilon
        self.expected_total = expected_total
        self.tie_break = tie_break
        self._rng = make_rng(seed)
        # Lightest-shard queries (the all-capped fallback and the check
        # that some shard is still under the cap) are O(log n_shards).
        self.size_argmin()
        self._rebuild_allowed()

    def _cap(self) -> float:
        if self.expected_total is not None:
            # The paper's cap: (1 + eps) * floor(n / k) with n known.
            return (1.0 + self.epsilon) * (
                self.expected_total // self.n_shards
            )
        # Online variant: same headroom over the running ideal share,
        # with +1 slack so tiny prefixes (floor = 0) don't force every
        # placement through the all-capped fallback.
        total = self.n_placed + 1
        return (1.0 + self.epsilon) * math.ceil(total / self.n_shards) + 1.0

    def _under_cap(self, shard: int) -> bool:
        return self._shard_sizes[shard] + 1 <= self._cap()

    def _best_allowed(self, scores: Sequence[float]) -> int:
        """Highest score among shards under the cap.

        Falls back to the smallest shard when every shard is at the cap
        (possible early in a run when ``floor(n / k)`` is small).
        """
        cap = self._cap()
        sizes = self._shard_sizes
        allowed = [
            s for s in range(self.n_shards) if sizes[s] + 1 <= cap
        ]
        if not allowed:
            _, lightest = self.size_argmin().peek()
            return lightest
        top = max(scores[s] for s in allowed)
        tied = [s for s in allowed if scores[s] == top]
        return self._pick_tied(tied)

    def _best_allowed_sparse(self, sparse_scores: dict[int, float]) -> int:
        """``_best_allowed`` over a sparse score map; missing shards = 0.

        Fast path for the common case of a unique positive maximum: only
        the sparse support is inspected and the RNG is untouched, exactly
        as the dense scan behaves when ``len(tied) == 1``. Whenever a
        zero score could win (empty support, every scored shard capped,
        or a zero top), the dense scan runs instead so tie enumeration -
        and therefore RNG consumption - is byte-for-byte identical. The
        empty support (coinbase) case short-circuits further: see
        :meth:`_zero_support_choice`.
        """
        if not sparse_scores:
            return self._zero_support_choice()
        cap = self._cap()
        sizes = self._shard_sizes
        top = 0.0
        tied_count = 0
        for shard, score in sparse_scores.items():
            if sizes[shard] + 1 > cap:
                continue
            if score > top:
                top = score
                tied_count = 1
            elif score == top and top > 0.0:
                tied_count += 1
        if tied_count == 0 or top <= 0.0:
            # A zero score (some unscored shard) ties for the max, or
            # everything scored is capped: delegate to the dense scan.
            scores = [0.0] * self.n_shards
            for shard, score in sparse_scores.items():
                scores[shard] = score
            return self._best_allowed(scores)
        if tied_count == 1:
            for shard, score in sparse_scores.items():
                if score == top and sizes[shard] + 1 <= cap:
                    return shard
        tied = sorted(
            shard
            for shard, score in sparse_scores.items()
            if score == top and sizes[shard] + 1 <= cap
        )
        return self._pick_tied(tied)

    def _zero_support_choice(self) -> int:
        """Placement of a transaction with no scored shard (coinbase).

        Every shard ties at score zero, so the dense scan's tied list is
        exactly the under-cap ("allowed") shards in id order. That set
        is maintained incrementally as 0/1 flags in a Fenwick tree
        (:class:`~repro.core._fenwick.FenwickFlags`): its popcount is
        the dense ``len(tied)`` and ``select(i)`` its ``tied[i]``, so
        every tie-break reproduces the dense enumeration - including
        its RNG consumption - in O(log k) instead of the seed's
        O(n_shards) list builds per coinbase (measurable in bootstrap
        bursts at 256+ shards; see tests/core/test_capped_fallback.py):

        - ``random``: ``randrange(count)`` then ``select(i)`` - the
          same draw, and the i-th allowed shard *is* ``tied[i]``;
        - ``first``: ``select(0)``, the lowest allowed id;
        - ``lightest``: the lazy size-argmin's minimum. The globally
          smallest shard is always allowed while any shard is (its
          size is the minimum), and both structures break size ties
          toward the lower id, exactly like
          ``min(tied, key=sizes.__getitem__)``.

        With *every* shard capped (possible under a known-total cap on
        tiny prefixes) the dense scan falls back to the lightest shard;
        so does this.
        """
        self._sync_cap_limit()
        allowed = self._allowed
        count = allowed.total
        if count == 0:
            # All shards at the cap: the dense scan's explicit fallback.
            return self.size_argmin().peek()[1]
        if count == 1:
            # len(tied) == 1 never touches the RNG in the dense path.
            return allowed.select(0)
        tie_break = self.tie_break
        if tie_break == "random":
            return allowed.select(self._rng.randrange(count))
        if tie_break == "lightest":
            return self.size_argmin().peek()[1]
        return allowed.select(0)

    # -- allowed-set maintenance (under-cap shards) ------------------------

    def _rebuild_allowed(self) -> None:
        """Recompute the allowed flags from sizes + cap (init/restore).

        ``_cap_limit`` is the largest size a shard may hold and still
        accept one more transaction (``size + 1 <= cap``), i.e. the
        integer threshold the float cap collapses to; -1 means the cap
        admits nothing. Shards above it are parked in per-size buckets
        so a later cap rise can readmit exactly the levels it uncaps.
        """
        cap = self._cap()
        limit = -1
        if cap >= 1.0:
            limit = max(0, math.floor(cap - 1.0))
            while limit + 2 <= cap:
                limit += 1
            while limit >= 0 and limit + 1 > cap:
                limit -= 1
        self._cap_limit = limit
        sizes = self._shard_sizes
        capped_at: dict[int, set[int]] = {}
        if self.n_placed == 0 and limit >= 0:
            allowed = FenwickFlags(self.n_shards, initial=True)
        else:
            allowed = FenwickFlags(self.n_shards, initial=False)
            for shard, size in enumerate(sizes):
                if size <= limit:
                    allowed.add(shard, 1)
                else:
                    capped_at.setdefault(size, set()).add(shard)
        self._allowed = allowed
        self._capped_at = capped_at

    def _sync_cap_limit(self) -> None:
        """Raise the integer cap threshold to match the (monotone) cap,
        readmitting the size levels it uncapped. Amortized O(1): the
        online cap rises ~(1 + epsilon) per n_shards placements and
        each shard re-enters at most once per level."""
        cap = self._cap()
        limit = self._cap_limit
        if limit + 2 > cap:
            return
        allowed = self._allowed
        capped_at = self._capped_at
        while limit + 2 <= cap:
            limit += 1
            bucket = capped_at.pop(limit, None)
            if bucket:
                for shard in bucket:
                    allowed.add(shard, 1)
        self._cap_limit = limit

    def _bump_shard_size(self, shard: int) -> None:
        super()._bump_shard_size(shard)
        new_size = self._shard_sizes[shard]
        limit = self._cap_limit
        if new_size > limit:
            old_size = new_size - 1
            if old_size <= limit:
                self._allowed.add(shard, -1)
            else:
                self._capped_at[old_size].discard(shard)
            self._capped_at.setdefault(new_size, set()).add(shard)

    def _pick_tied(self, tied: Sequence[int]) -> int:
        if len(tied) == 1 or self.tie_break == "first":
            return tied[0]
        if self.tie_break == "lightest":
            return min(tied, key=self._shard_sizes.__getitem__)
        return tied[self._rng.randrange(len(tied))]

    # -- snapshot/restore --------------------------------------------------

    def export_state(self) -> dict[str, Any]:
        state = super().export_state()
        # getstate() is (version, (625 uint32 words...), gauss_next).
        state["rng_state"] = self._rng.getstate()
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        version, internal, gauss = state["rng_state"]
        self._rng.setstate((version, tuple(internal), gauss))
        # The allowed set is a pure function of sizes + cap (Fenwick
        # sums commute, so rebuild order cannot perturb it) - derived,
        # not serialized.
        self._rebuild_allowed()


class GreedyPlacer(_CappedPlacer):
    """Maximize input transactions already in the shard (§IV-B Greedy).

    The paper defines the cost ``f(u, j) = |Sin(u) \\ S_j|`` (inputs *not*
    in shard ``j``) and selects the extremal shard; minimizing that cost
    equals maximizing the inputs inside ``j``, which is what we compute.
    One-hop only - no global view - which is exactly the weakness the
    T2S score fixes.
    """

    name = "greedy"

    def _choose(self, tx: Transaction) -> int:
        assignment = self._assignment
        counts: dict[int, float] = {}
        get = counts.get
        for parent in tx.input_txids:
            shard = assignment[parent]
            counts[shard] = get(shard, 0.0) + 1.0
        return self._best_allowed_sparse(counts)


class T2SOnlyPlacer(_CappedPlacer):
    """Place at the T2S argmax under the Greedy size cap ("T2S-based").

    This is the method behind Tables I and II: like Greedy but scoring
    with the random-walk T2S instead of one-hop input counts.
    """

    name = "t2s"

    def __init__(
        self,
        n_shards: int,
        epsilon: float = PAPER_EPSILON,
        expected_total: int | None = None,
        tie_break: str = "random",
        seed: int = 0,
        alpha: float = 0.5,
        outdeg_mode: str = "spenders",
        scorer: T2SScorer | None = None,
    ) -> None:
        super().__init__(
            n_shards,
            epsilon=epsilon,
            expected_total=expected_total,
            tie_break=tie_break,
            seed=seed,
        )
        # ``scorer`` is the subclass hook (t2s-topk injects a
        # bounded-support one); external callers configure via
        # alpha/outdeg_mode.
        self.scorer = scorer or T2SScorer(
            n_shards, alpha=alpha, outdeg_mode=outdeg_mode
        )

    def _choose(self, tx: Transaction) -> int:
        raw = self.scorer.add_transaction_raw(
            tx.txid, tx.input_txids, len(tx.outputs)
        )
        scorer_sizes = self.scorer._shard_sizes
        sparse = {
            shard: mass / (scorer_sizes[shard] or 1)
            for shard, mass in raw.items()
        }
        shard = self._best_allowed_sparse(sparse)
        self.scorer.place(tx.txid, shard)
        return shard

    def _on_forced(self, tx: Transaction, shard: int) -> None:
        self.scorer.add_transaction_raw(
            tx.txid, tx.input_txids, len(tx.outputs)
        )
        self.scorer.place(tx.txid, shard)

    def export_state(self) -> dict[str, Any]:
        state = super().export_state()
        state["scorer"] = self.scorer.export_state()
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        super().restore_state(state)
        self.scorer.restore_state(state["scorer"])


class TopKT2SOnlyPlacer(T2SOnlyPlacer):
    """The capped "T2S-based" baseline with bounded-support scoring.

    The mirror of ``optchain-topk`` for the ``t2s`` lane: same
    size-capped argmax decision rule as :class:`T2SOnlyPlacer`, but the
    scorer retains only ``support_cap`` entries per vector
    (:class:`~repro.core.t2s.TopKT2SScorer`; ``"auto:<rate>"`` selects
    the adaptive cap). With ``support_cap >= n_shards`` placements are
    bit-identical to the exact baseline - vector keys are shard ids,
    so truncation never fires - which is the registration test's gate.
    """

    name = "t2s-topk"

    def __init__(
        self,
        n_shards: int,
        support_cap: "int | str" = DEFAULT_SUPPORT_CAP,
        epsilon: float = PAPER_EPSILON,
        expected_total: int | None = None,
        tie_break: str = "random",
        seed: int = 0,
        alpha: float = 0.5,
        outdeg_mode: str = "spenders",
        support_initial_cap: "int | None" = None,
        support_window: "int | None" = None,
    ) -> None:
        super().__init__(
            n_shards,
            epsilon=epsilon,
            expected_total=expected_total,
            tie_break=tie_break,
            seed=seed,
            alpha=alpha,
            outdeg_mode=outdeg_mode,
            scorer=make_support_scorer(
                n_shards,
                support_cap,
                alpha=alpha,
                outdeg_mode=outdeg_mode,
                initial_cap=support_initial_cap,
                window=support_window,
            ),
        )

    @property
    def support_cap(self) -> int:
        """Max retained entries per T2S vector (current value)."""
        return self.scorer.support_cap


class MetisOfflinePlacer(PlacementStrategy):
    """Replay a precomputed offline partition (the paper's Metis k-way).

    Build the assignment with
    :func:`repro.partition.metis_like.partition_tan` over the full TaN
    graph, then replay it through the simulator like any online placer.
    """

    name = "metis"

    def __init__(
        self, n_shards: int, precomputed: Sequence[int] | None = None
    ) -> None:
        super().__init__(n_shards)
        if precomputed is None:
            raise ConfigurationError(
                "MetisOfflinePlacer needs precomputed=<assignment list>; "
                "compute it with repro.partition.partition_tan"
            )
        for node, shard in enumerate(precomputed):
            if not 0 <= shard < n_shards:
                raise ConfigurationError(
                    f"precomputed assignment sends node {node} to shard "
                    f"{shard}, valid range is [0, {n_shards})"
                )
        self._precomputed = list(precomputed)

    def _choose(self, tx: Transaction) -> int:
        if tx.txid >= len(self._precomputed):
            raise PlacementError(
                f"precomputed assignment covers {len(self._precomputed)} "
                f"transactions; transaction {tx.txid} is beyond it"
            )
        return self._precomputed[tx.txid]
