"""Table II - cross-TXs when running from a warm-started system.

The paper partitions the first 30M Bitcoin transactions with Metis, then
places the next 1M with each online method and counts cross-TXs *in that
window* (absolute counts in the paper)::

    k   Greedy   Omniledger  T2S-based
    4   335,269  837,356     112,657
    8   407,747  922,073     172,978
    16  441,267  960,935     226,171
    32  449,032  979,323     282,108
    64  454,321  988,144     366,854

We scale prefix/window per the experiment scale and report both count
and fraction. Expected shape: T2S < Greedy << Omniledger at every k.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments.configs import ExperimentScale
from repro.experiments.runner import build_placer, stream_for
from repro.partition.metis_like import partition_tan
from repro.partition.quality import cross_shard_count
from repro.txgraph.tan import TaNGraph


def run(
    scale: ExperimentScale, seed: int = 1
) -> dict[int, dict[str, int]]:
    """Cross-TX count in the placement window per (shards, method)."""
    stream = stream_for(scale, seed)
    prefix_len = min(scale.warm_prefix, len(stream))
    window_len = min(scale.warm_window, len(stream) - prefix_len)
    prefix = stream[:prefix_len]
    window = stream[prefix_len : prefix_len + window_len]
    prefix_tan = TaNGraph.from_transactions(prefix)

    results: dict[int, dict[str, int]] = {}
    for n_shards in scale.table_shard_counts:
        warm = partition_tan(prefix_tan, n_shards)
        row: dict[str, int] = {}
        for method in ("greedy", "omniledger", "t2s"):
            placer = build_placer(
                method,
                n_shards,
                scale,
                expected_total=len(stream),
                seed=seed,
            )
            for tx, shard in zip(prefix, warm):
                placer.force_place(tx, shard)
            for tx in window:
                placer.place(tx)
            assignment = placer.assignment()
            # Count cross-TXs in the window only, like the paper.
            row[method] = cross_shard_count(window, assignment)
        results[n_shards] = row
    return results


def as_table(
    results: dict[int, dict[str, int]], window_len: int
) -> str:
    """Render the paper-style table (count and window fraction)."""
    rows = []
    for k, row in sorted(results.items()):
        rows.append(
            [
                k,
                f"{row['greedy']} ({row['greedy'] / window_len:.1%})",
                f"{row['omniledger']} ({row['omniledger'] / window_len:.1%})",
                f"{row['t2s']} ({row['t2s'] / window_len:.1%})",
            ]
        )
    return format_table(
        ["k", "Greedy", "Omniledger", "T2S-based"],
        rows,
        title=(
            "Table II: cross-TXs placing a window after a Metis-partitioned "
            "prefix"
        ),
    )


def main(scale_name: str | None = None) -> str:
    from repro.experiments.runner import scale_by_name

    scale = scale_by_name(scale_name)
    results = run(scale)
    window = min(
        scale.warm_window, scale.n_transactions - scale.warm_prefix
    )
    output = as_table(results, window)
    print(output)
    return output


if __name__ == "__main__":
    main()
