"""Regenerates Fig. 3: latency/throughput grids for all four methods.

Shape asserted: more shards help every method (latency at the top shard
count is no worse than at the bottom for the same rate), and OmniLedger's
random placement pays the highest latency at the top configuration.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import fig3


def test_fig3(benchmark, scale):
    cells = run_once(benchmark, lambda: fig3.run(scale))
    print()
    print(fig3.as_table(cells))
    by_key = {(c.method, c.n_shards, c.tx_rate): c for c in cells}
    shard_lo = min(scale.shard_counts)
    shard_hi = max(scale.shard_counts)
    for method in ("optchain", "omniledger", "greedy", "metis"):
        for rate in scale.tx_rates:
            lo = by_key[(method, shard_lo, rate)]
            hi = by_key[(method, shard_hi, rate)]
            assert hi.average_latency <= lo.average_latency * 1.1
    top_rate = max(scale.tx_rates)
    opt = by_key[("optchain", shard_hi, top_rate)]
    omni = by_key[("omniledger", shard_hi, top_rate)]
    assert opt.average_latency < omni.average_latency
    assert opt.cross_fraction < 0.5 * omni.cross_fraction
