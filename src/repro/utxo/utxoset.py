"""The UTXO set: authoritative spent/unspent ledger state.

This is the state every shard committee maintains for its slice of the
transaction history. The global (unsharded) variant here is used by the
dataset generator (to only ever create spendable workloads), by validation,
and by tests asserting that every generated stream is double-spend free.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import DoubleSpendError, UnknownOutputError, ValidationError
from repro.utxo.transaction import OutPoint, Transaction, TxId, TxOutput


class UTXOSet:
    """Tracks unspent outputs and which transaction spent each spent one.

    ``apply`` is transactional: a transaction that would double-spend or
    reference an unknown output is rejected without mutating state.
    """

    def __init__(self) -> None:
        self._unspent: dict[OutPoint, TxOutput] = {}
        # Spent outpoints map to the txid that consumed them; keeping the
        # spender (not just a flag) is what lets the TaN builder recover
        # edges and the simulator produce precise double-spend proofs.
        self._spent_by: dict[OutPoint, TxId] = {}
        self._applied: set[TxId] = set()

    def __len__(self) -> int:
        return len(self._unspent)

    def __contains__(self, outpoint: OutPoint) -> bool:
        return outpoint in self._unspent

    def __iter__(self) -> Iterator[OutPoint]:
        return iter(self._unspent)

    @property
    def n_spent(self) -> int:
        """Number of outputs consumed so far."""
        return len(self._spent_by)

    @property
    def n_applied(self) -> int:
        """Number of transactions applied so far."""
        return len(self._applied)

    def value_of(self, outpoint: OutPoint) -> int:
        """Value of an unspent output; raises if unknown or spent."""
        return self._lookup(outpoint).value

    def address_of(self, outpoint: OutPoint) -> int:
        """Owning address of an unspent output; raises if unknown/spent."""
        return self._lookup(outpoint).address

    def spender_of(self, outpoint: OutPoint) -> TxId | None:
        """Txid that spent ``outpoint``, or None if it is still unspent."""
        return self._spent_by.get(outpoint)

    def check(self, tx: Transaction) -> None:
        """Raise unless ``tx`` could be applied right now.

        Checks referenced outputs exist and are unspent, and that the
        transaction itself was not applied before. Does not mutate.
        """
        if tx.txid in self._applied:
            raise ValidationError(f"transaction {tx.txid} applied twice")
        seen: set[OutPoint] = set()
        for outpoint in tx.inputs:
            if outpoint in seen:
                raise DoubleSpendError(
                    f"transaction {tx.txid} spends {outpoint} twice internally"
                )
            seen.add(outpoint)
            self._check_spendable(tx.txid, outpoint)

    def apply(self, tx: Transaction) -> None:
        """Atomically spend ``tx``'s inputs and create its outputs."""
        self.check(tx)
        for outpoint in tx.inputs:
            del self._unspent[outpoint]
            self._spent_by[outpoint] = tx.txid
        for index, output in enumerate(tx.outputs):
            self._unspent[OutPoint(tx.txid, index)] = output
        self._applied.add(tx.txid)

    def apply_all(self, txs: Iterable[Transaction]) -> None:
        """Apply a sequence of transactions, stopping at the first error."""
        for tx in txs:
            self.apply(tx)

    def snapshot_unspent(self) -> dict[OutPoint, TxOutput]:
        """Shallow copy of the current unspent map (for inspection)."""
        return dict(self._unspent)

    def _lookup(self, outpoint: OutPoint) -> TxOutput:
        output = self._unspent.get(outpoint)
        if output is None:
            self._check_spendable(txid=None, outpoint=outpoint)
            raise AssertionError("unreachable")  # pragma: no cover
        return output

    def _check_spendable(self, txid: TxId | None, outpoint: OutPoint) -> None:
        if outpoint in self._unspent:
            return
        who = "lookup" if txid is None else f"transaction {txid}"
        spender = self._spent_by.get(outpoint)
        if spender is not None:
            raise DoubleSpendError(
                f"{who} references {outpoint} already spent by {spender}"
            )
        raise UnknownOutputError(f"{who} references unknown output {outpoint}")
