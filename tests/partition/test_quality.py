"""Unit tests for partition quality metrics."""

from __future__ import annotations

import pytest

from repro.errors import PartitionError
from repro.partition.graph import StaticGraph
from repro.partition.quality import (
    balance_ratio,
    cross_shard_count,
    cross_shard_fraction,
    edge_cut,
    edge_cut_fraction,
    input_shards,
    involved_shards,
    is_cross_shard,
    shard_sizes,
    validate_partition,
)
from repro.utxo.transaction import OutPoint, Transaction, TxOutput


def tx(txid, parents):
    return Transaction(
        txid=txid,
        inputs=tuple(OutPoint(p, 0) for p in parents),
        outputs=(TxOutput(1),),
    )


STREAM = [tx(0, []), tx(1, [0]), tx(2, [0, 1]), tx(3, [2])]


class TestValidatePartition:
    def test_valid(self):
        validate_partition([0, 1, 0], 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(PartitionError):
            validate_partition([0, 2], 2)
        with pytest.raises(PartitionError):
            validate_partition([-1], 2)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(PartitionError):
            validate_partition([], 0)


class TestBalance:
    def test_sizes(self):
        assert shard_sizes([0, 1, 1, 0], 3) == [2, 2, 0]

    def test_perfect_balance(self):
        assert balance_ratio([0, 1, 0, 1], 2) == pytest.approx(1.0)

    def test_imbalance(self):
        assert balance_ratio([0, 0, 0, 1], 2) == pytest.approx(1.5)

    def test_empty(self):
        assert balance_ratio([], 4) == 1.0


class TestEdgeCut:
    def graph(self):
        graph = StaticGraph(4)
        graph.add_edge(0, 1, 2)
        graph.add_edge(1, 2, 3)
        graph.add_edge(2, 3, 5)
        return graph

    def test_no_cut(self):
        assert edge_cut(self.graph(), [0, 0, 0, 0]) == 0

    def test_weighted_cut(self):
        assert edge_cut(self.graph(), [0, 0, 1, 1]) == 3

    def test_fraction(self):
        assert edge_cut_fraction(self.graph(), [0, 0, 1, 1]) == pytest.approx(
            0.3
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(PartitionError):
            edge_cut(self.graph(), [0, 0])

    def test_empty_graph_fraction(self):
        assert edge_cut_fraction(StaticGraph(2), [0, 0]) == 0.0


class TestCrossShard:
    def test_coinbase_never_cross(self):
        assert not is_cross_shard(STREAM[0], [0, 1, 1, 1])

    def test_same_shard_not_cross(self):
        assert not is_cross_shard(STREAM[1], [0, 0, 0, 0])

    def test_input_elsewhere_is_cross(self):
        assert is_cross_shard(STREAM[1], [1, 0, 0, 0])

    def test_partial_inputs_elsewhere_is_cross(self):
        # tx 2 spends from 0 and 1; own shard holds only one of them.
        assert is_cross_shard(STREAM[2], [0, 1, 1, 1])

    def test_count_and_fraction(self):
        assignment = [0, 0, 1, 1]
        # tx2 is cross (inputs 0,1 in shard 0, tx2 in shard 1);
        # tx3 is same-shard (input 2 in shard 1).
        assert cross_shard_count(STREAM, assignment) == 1
        assert cross_shard_fraction(STREAM, assignment) == pytest.approx(
            0.25
        )

    def test_empty_stream(self):
        assert cross_shard_fraction([], []) == 0.0

    def test_short_assignment_rejected(self):
        with pytest.raises(PartitionError):
            cross_shard_count(STREAM, [0, 0])

    def test_input_and_involved_shards(self):
        assignment = [0, 1, 2, 2]
        assert input_shards(STREAM[2], assignment) == {0, 1}
        assert involved_shards(STREAM[2], assignment) == {0, 1, 2}
        assert input_shards(STREAM[0], assignment) == set()
        assert involved_shards(STREAM[0], assignment) == {0}
