"""Property-based tests (hypothesis) on core invariants.

These cover the structural guarantees everything else leans on: DAG
validity of arbitrary streams, double-spend freedom, exactness of the
incremental T2S recurrence, partition-cover invariants, latency-model
math, and event-queue ordering.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.l2s import ShardLatencyModel, expected_max_acceptance
from repro.core.t2s import T2SScorer, t2s_reference_dense
from repro.datasets.synthetic import BitcoinLikeGenerator, GeneratorConfig
from repro.partition.graph import StaticGraph
from repro.partition.metis_like import MultilevelConfig, metis_kway
from repro.partition.quality import shard_sizes, validate_partition
from repro.simulator.events import EventQueue
from repro.txgraph.tan import TaNGraph
from repro.txgraph.topo import is_topological_stream, verify_dag
from repro.utxo.utxoset import UTXOSet


# -- strategies ------------------------------------------------------------

def dag_edge_lists(max_nodes: int = 40):
    """Random TaN-style edge lists: node i points at earlier nodes."""
    return st.integers(min_value=1, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(1, n - 1) if n > 1 else st.just(1),
                    st.integers(0, max(0, n - 2)),
                ).filter(lambda edge: edge[1] < edge[0]),
                max_size=3 * n,
            ),
        )
    )


generator_configs = st.builds(
    GeneratorConfig,
    n_wallets=st.integers(10, 200),
    coinbase_interval=st.integers(10, 200),
    bootstrap_coinbase=st.integers(2, 30),
    max_inputs=st.integers(1, 8),
    input_exponent=st.floats(1.0, 3.0),
    batch_payment_prob=st.floats(0.0, 0.2),
    consolidation_prob=st.floats(0.0, 0.2),
    intra_community_prob=st.floats(0.0, 1.0),
    n_communities=st.integers(1, 32),
    community_exponent=st.floats(0.0, 2.0),
    n_hubs=st.integers(0, 4),
    hub_payment_prob=st.floats(0.0, 0.5),
)


# -- TaN / UTXO invariants ---------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(config=generator_configs, seed=st.integers(0, 2**16), n=st.integers(1, 400))
def test_generated_stream_always_valid(config, seed, n):
    """Any generator configuration yields topological, double-spend-free
    streams whose TaN is a DAG."""
    stream = BitcoinLikeGenerator(config=config, seed=seed).generate(n)
    assert len(stream) == n
    assert is_topological_stream(stream)
    UTXOSet().apply_all(stream)  # raises on violations
    graph = TaNGraph.from_transactions(stream)
    verify_dag(graph)
    assert graph.n_nodes == n


@settings(max_examples=50, deadline=None)
@given(data=dag_edge_lists())
def test_tan_degrees_consistent(data):
    """Sum of in-degrees == sum of out-degrees == edge count, for any
    backwards edge list."""
    n, edges = data
    graph = TaNGraph()
    by_node: dict[int, list[int]] = {}
    for spender, parent in edges:
        by_node.setdefault(spender, []).append(parent)
    for txid in range(n):
        graph.add_node(txid, by_node.get(txid, []))
    total_in = sum(graph.in_degree(u) for u in graph.nodes())
    total_out = sum(graph.out_degree(u) for u in graph.nodes())
    assert total_in == total_out == graph.n_edges
    verify_dag(graph)


# -- T2S -------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_shards=st.integers(1, 8),
    alpha=st.floats(0.05, 1.0),
)
def test_t2s_incremental_matches_dense(seed, n_shards, alpha):
    """The sparse engine equals the dense oracle on random workloads."""
    stream = BitcoinLikeGenerator(
        config=GeneratorConfig(
            n_wallets=50, coinbase_interval=20, bootstrap_coinbase=5
        ),
        seed=seed,
    ).generate(120)
    scorer = T2SScorer(n_shards, alpha=alpha, prune_epsilon=0.0)
    arrivals = []
    placements = []
    for tx in stream:
        arrivals.append((tx.txid, tx.input_txids, len(tx.outputs)))
        sparse = scorer.add_transaction(
            tx.txid, tx.input_txids, len(tx.outputs)
        )
        shard = max(sparse, key=sparse.get) if sparse else (
            tx.txid % n_shards
        )
        scorer.place(tx.txid, shard)
        placements.append(shard)
    dense = t2s_reference_dense(arrivals, placements, n_shards, alpha=alpha)
    for txid in range(len(stream)):
        sparse = scorer.p_prime_of(txid)
        for shard in range(n_shards):
            assert math.isclose(
                sparse.get(shard, 0.0),
                dense[txid][shard],
                rel_tol=1e-9,
                abs_tol=1e-12,
            )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**16), alpha=st.floats(0.1, 1.0))
def test_t2s_support_confined_to_ancestor_shards(seed, alpha):
    """The random-walk semantics: a transaction's T2S mass can only sit
    on shards that hold one of its ancestors (or its own shard, after
    placement). Mass is non-negative everywhere."""
    stream = BitcoinLikeGenerator(
        config=GeneratorConfig(
            n_wallets=40, coinbase_interval=25, bootstrap_coinbase=5
        ),
        seed=seed,
    ).generate(150)
    scorer = T2SScorer(4, alpha=alpha, prune_epsilon=0.0)
    ancestor_shards: list[set[int]] = []
    placements: list[int] = []
    for tx in stream:
        sparse = scorer.add_transaction(
            tx.txid, tx.input_txids, len(tx.outputs)
        )
        ancestors: set[int] = set()
        for parent in tx.input_txids:
            ancestors |= ancestor_shards[parent]
            ancestors.add(placements[parent])
        assert all(mass >= 0.0 for mass in sparse.values())
        assert set(sparse) <= ancestors
        shard = max(sparse, key=sparse.get) if sparse else 0
        scorer.place(tx.txid, shard)
        placements.append(shard)
        ancestor_shards.append(ancestors)
        support = set(scorer.p_prime_of(tx.txid))
        assert support <= ancestors | {shard}


# -- partitioning -------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_parts=st.integers(1, 6),
    n=st.integers(8, 60),
)
def test_metis_partition_is_cover(seed, n_parts, n):
    """Any multilevel partition is a disjoint cover with valid ids and
    every part non-trivially bounded."""
    stream = BitcoinLikeGenerator(
        config=GeneratorConfig(
            n_wallets=30, coinbase_interval=15, bootstrap_coinbase=4
        ),
        seed=seed,
    ).generate(n)
    graph = StaticGraph.from_tan(TaNGraph.from_transactions(stream))
    if n_parts > graph.n_nodes:
        return
    assignment = metis_kway(
        graph, n_parts, MultilevelConfig(seed=seed, epsilon=0.2)
    )
    assert len(assignment) == graph.n_nodes
    validate_partition(assignment, n_parts)
    sizes = shard_sizes(assignment, n_parts)
    assert sum(sizes) == graph.n_nodes


# -- L2S ---------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    rates=st.lists(
        st.tuples(st.floats(0.1, 50.0), st.floats(0.01, 10.0)),
        min_size=1,
        max_size=5,
    )
)
def test_expected_max_bounds(rates):
    """max_i E[T_i] <= E[max T_i] <= sum_i E[T_i] for any rate set."""
    models = [ShardLatencyModel(lc, lv) for lc, lv in rates]
    expected = expected_max_acceptance(models)
    individual = [m.expected_total for m in models]
    assert expected >= max(individual) - 1e-6 * max(individual)
    assert expected <= sum(individual) + 1e-6 * sum(individual)


@settings(max_examples=50, deadline=None)
@given(
    lc=st.floats(0.1, 50.0),
    lv=st.floats(0.01, 10.0),
    t=st.floats(0.0, 100.0),
)
def test_cdf_in_unit_interval(lc, lv, t):
    model = ShardLatencyModel(lc, lv)
    value = model.cdf(t)
    assert -1e-12 <= value <= 1.0 + 1e-12


# -- event queue ---------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
def test_event_queue_executes_in_order(delays):
    queue = EventQueue()
    seen: list[float] = []
    for delay in delays:
        queue.schedule(delay, lambda d=delay: seen.append(queue.now))
    queue.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)
