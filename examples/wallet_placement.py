"""Wallet-side placement: what OptChain computes for one transaction.

The paper deploys OptChain inside the user's wallet: the wallet watches
its own transactions plus per-shard round trips and queue estimates, then
scores each shard before submitting. This example walks through that
decision for a handful of transactions, printing the T2S score, the L2S
expected latency, and the combined Temporal Fitness per shard - the
quantities of Algorithm 1.

Run::

    python examples/wallet_placement.py
"""

from __future__ import annotations

from repro import synthetic_stream
from repro.core.fitness import TemporalFitness
from repro.core.l2s import L2SEstimator, ShardLatencyModel
from repro.core.t2s import T2SScorer

N_SHARDS = 4
LATENCY_WEIGHT = 0.01


def wallet_observed_models(loads: list[float]) -> list[ShardLatencyModel]:
    """What the wallet's sampling has measured, per shard.

    Verification slows with the shard's queue (here proxied by recent
    placements, decayed); shard 2 additionally suffers a 5x slower
    committee - a statically congested shard.
    """
    models = []
    for shard in range(N_SHARDS):
        base_rate = 0.05 if shard == 2 else 0.25
        verify_rate = base_rate / (1.0 + loads[shard] / 200.0)
        models.append(ShardLatencyModel(lambda_c=8.0, lambda_v=verify_rate))
    return models


def main() -> None:
    stream = synthetic_stream(3_000, seed=21)
    scorer = T2SScorer(N_SHARDS, alpha=0.5)
    fitness = TemporalFitness(latency_weight=LATENCY_WEIGHT)

    placements: dict[int, int] = {}
    loads = [0.0] * N_SHARDS
    shown = 0
    for tx in stream:
        t2s = scorer.add_transaction(
            tx.txid, tx.input_txids, len(tx.outputs)
        )
        input_shards = {placements[parent] for parent in tx.input_txids}
        estimator = L2SEstimator(
            wallet_observed_models(loads), mode="shard_load"
        )
        l2s = estimator.scores_all(input_shards)
        shard = fitness.best_shard(t2s, l2s)
        scorer.place(tx.txid, shard)
        placements[tx.txid] = shard
        loads = [load * 0.995 for load in loads]
        loads[shard] += 1.0

        # Print the decision for a few interesting (multi-input) txs.
        if len(tx.input_txids) >= 2 and shown < 5 and tx.txid > 500:
            shown += 1
            print(
                f"transaction {tx.txid}: inputs from shards "
                f"{sorted(input_shards)}"
            )
            for candidate in range(N_SHARDS):
                combined = (
                    t2s.get(candidate, 0.0)
                    - LATENCY_WEIGHT * l2s[candidate]
                )
                marker = " <- chosen" if candidate == shard else ""
                print(
                    f"  shard {candidate}: "
                    f"T2S={t2s.get(candidate, 0.0):.4f}"
                    f"  E(j)={l2s[candidate]:6.2f}s"
                    f"  fitness={combined:+.4f}{marker}"
                )
            print()

    sizes = [0] * N_SHARDS
    for shard in placements.values():
        sizes[shard] += 1
    print(f"final shard sizes: {sizes}")
    print(
        "note how the congested shard 2 attracts fewer transactions: its "
        "L2S\npenalty outweighs small T2S advantages - the paper's "
        "temporal balancing."
    )


if __name__ == "__main__":
    main()
