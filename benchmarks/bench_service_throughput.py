"""Placement-service benchmark - serving throughput + bounded memory.

This is where the repo's two perf frontiers meet a serving interface:

- **throughput**: placements/s through the engine's batched in-process
  path (validation + truncation bookkeeping + the fused ``place_batch``
  hot path) at k=16, with the raw placer lane alongside so the serving
  overhead is measured, not guessed;
- **numpy engine lanes** (``--numpy``): the same batched engine path on
  the vectorized backend vs python, per shard count (default k=16,64),
  bit-identity gated - the recorded run gates a >= 5x speedup (kernel
  validation + zero-copy placement; see PERFORMANCE.md "Vectorized
  backend"). When the lane is not requested the result records
  ``{"skipped": reason}`` - never a silently-empty list - and
  ``--check`` with ``--min-engine-speedup`` fails loudly on a skipped
  or empty lane;
- **wal overhead**: the same engine lane with the per-partition
  write-ahead batch journal on vs off (pre-encoded payloads, so the
  delta is journal I/O alone) - the crash-safety tax on serving
  throughput;
- **snapshot**: checkpoint cost at the midpoint plus a
  restore-then-continue equivalence check;
- **memory bound**: a 1M+ transaction stream through the epoch/horizon
  truncation policy, sampling live T2S vectors per epoch - the gated
  claim is that the live count is bounded by the horizon window, not
  O(total transactions) like the seed store;
- **quality drift**: cross-shard fraction of horizon-truncated vs exact
  placements (what the bounded memory costs in placement quality);
- **codec**: isolated CPU cost per transaction of one full wire round
  trip (client encode, server decode, response encode, response
  decode) for the NDJSON and binary codecs. This is the number the
  binary protocol changes, measured without the engine's fixed cost -
  end to end, Amdahl caps the visible speedup once the codec is no
  longer the bottleneck (see PERFORMANCE.md "Sharded serving");
- **loadgen**: end-to-end placements/s over real sockets (server +
  closed-loop load generator in one process), one lane per codec;
- **workers sweep**: the sharded service (``--workers N``) under the
  binary-codec load generator, one row per worker count.

Results land in ``BENCH_service.json``. Run it directly::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --check
    PYTHONPATH=src python benchmarks/bench_service_throughput.py \
        --txs 20000 --memory-txs 60000 --loadgen-txs 5000 \
        --epoch-length 5000 --min-throughput 40000 \
        --check --out /tmp/smoke.json                          # CI smoke

``--check`` enforces the acceptance gates: engine throughput >=
``--min-throughput`` (100k/s by default) at k=16, the write-ahead
journal costing <= ``--max-wal-overhead-pct`` (15%) of engine
throughput, latency-histogram recording costing <=
``--max-hist-overhead-pct`` (5%), live vectors bounded
by the horizon window over the memory stream, snapshot round-trip
bit-identical (full and delta), engine placements identical to the raw
placer, binary codec CPU >= ``--min-codec-ratio`` (2.0x) cheaper than
JSON per round trip, binary socket lane >= the JSON lane, and the
sharded ``--workers 1`` lane error-free with every placement matching
the monolith's count.
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.placement import make_placer
from repro.datasets.replay import chunk_stream
from repro.datasets.synthetic import BitcoinLikeGenerator, synthetic_stream
from repro.partition.quality import cross_shard_fraction
from repro.service import wire
from repro.service.engine import PlacementEngine
from repro.service.loadgen import run_loadgen_async
from repro.service.server import PlacementServer
from repro.service.state import load_engine_snapshot

STREAM_SEED = 42
N_SHARDS = 16


def rss_kb() -> int:
    """Resident set size in kB (Linux; 0 where unsupported)."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def bench_throughput(stream, batch_size, repeats, epoch_length):
    """Best-of engine placements/s + raw placer lane + snapshot probe.

    Lanes alternate and the *gated* figure uses best-of CPU time
    (``process_time``), the same protocol the simulator bench adopted:
    wall-clock on this shared single-vCPU container fluctuates ±20%
    across runs with neighbor load, which is noise about the machine,
    not the code. Wall-clock is recorded alongside for context.
    """
    raw_cpu = raw_wall = float("inf")
    engine_cpu = engine_wall = float("inf")
    raw_assignment = None
    engine_assignment = None
    final_engine = None
    for _ in range(repeats):
        gc.collect()
        placer = make_placer("optchain", N_SHARDS)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        raw_assignment = placer.place_stream(stream)
        raw_cpu = min(raw_cpu, time.process_time() - cpu0)
        raw_wall = min(raw_wall, time.perf_counter() - wall0)

        gc.collect()
        engine = PlacementEngine(
            make_placer("optchain", N_SHARDS), epoch_length=epoch_length
        )
        shards = []
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        for offset in range(0, len(stream), batch_size):
            shards.extend(
                engine.place_batch(stream[offset : offset + batch_size])
            )
        engine_cpu = min(engine_cpu, time.process_time() - cpu0)
        engine_wall = min(engine_wall, time.perf_counter() - wall0)
        engine_assignment = shards
        final_engine = engine

    n_tx = len(stream)
    stats = final_engine.stats()
    return {
        "n_tx": n_tx,
        "n_shards": N_SHARDS,
        "batch_size": batch_size,
        "repeats": repeats,
        "engine_tx_per_s": round(n_tx / engine_cpu, 1),
        "raw_placer_tx_per_s": round(n_tx / raw_cpu, 1),
        "engine_tx_per_s_wall": round(n_tx / engine_wall, 1),
        "raw_placer_tx_per_s_wall": round(n_tx / raw_wall, 1),
        "serving_overhead_pct": round(
            100.0 * (engine_cpu / raw_cpu - 1.0), 1
        ),
        "identical_to_raw_placer": engine_assignment == raw_assignment,
        "live_vectors": stats.live_vectors,
        "released_vectors": stats.released_vectors,
    }, raw_assignment


def bench_numpy_engine(stream, batch_size, repeats, epoch_length, shards):
    """Vectorized-backend engine lanes, python vs numpy per shard count.

    The same batched engine path as the gated throughput lane, run with
    ``backend=python`` and ``backend=numpy`` side by side. The identity
    bit is the backend contract (bit-identical placements); the speedup
    is the recorded claim (>= 5x engine placements/s at k=16 and
    k=64 on the 100k-tx run). CPU best-of per the bench protocol.
    """
    rows = []
    n_tx = len(stream)
    for n_shards in shards:
        cpu = {}
        assignments = {}
        for backend in ("python", "numpy"):
            best_cpu = float("inf")
            placed = None
            for _ in range(repeats):
                gc.collect()
                engine = PlacementEngine(
                    make_placer("optchain", n_shards, backend=backend),
                    epoch_length=epoch_length,
                )
                placed = []
                cpu0 = time.process_time()
                for offset in range(0, n_tx, batch_size):
                    placed.extend(
                        engine.place_batch(
                            stream[offset : offset + batch_size]
                        )
                    )
                best_cpu = min(best_cpu, time.process_time() - cpu0)
            cpu[backend] = best_cpu
            assignments[backend] = placed
        identical = assignments["python"] == assignments["numpy"]
        speedup = cpu["python"] / cpu["numpy"]
        rows.append(
            {
                "n_tx": n_tx,
                "n_shards": n_shards,
                "batch_size": batch_size,
                "python_tx_per_s": round(n_tx / cpu["python"], 1),
                "numpy_tx_per_s": round(n_tx / cpu["numpy"], 1),
                "speedup": round(speedup, 2),
                "identical_to_python": identical,
            }
        )
        print(
            f"  k={n_shards:<3} python "
            f"{n_tx / cpu['python']:>12,.0f} tx/s   numpy "
            f"{n_tx / cpu['numpy']:>12,.0f} tx/s   "
            f"({speedup:.2f}x)"
            + ("  [== python]" if identical else "  !! DIVERGED"),
            flush=True,
        )
    return rows


def bench_wal_overhead(stream, batch_size, repeats, epoch_length, tmp_dir):
    """Serving cost of the write-ahead batch journal at k=16.

    Same stream, same partition path, WAL off vs on; the on lane feeds
    pre-encoded wire payloads (as the worker does - the journal never
    re-encodes on the hot path) and the encode cost sits *outside* the
    timed loop in both lanes so the delta is journal I/O alone: CRC,
    framing, buffered write, fsync every ``sync_every_bytes``. CPU
    best-of per the repo's bench protocol; wall recorded for context
    (fsync waits are invisible to ``process_time``).
    """
    from repro.service.journal import BatchJournal
    from repro.service.partition import EnginePartition
    from repro.service.wire import (
        FRAME_HEADER_BYTES,
        encode_place_request,
    )

    chunks = [
        stream[offset : offset + batch_size]
        for offset in range(0, len(stream), batch_size)
    ]
    payloads = [
        [encode_place_request(0, chunk)[FRAME_HEADER_BYTES:]]
        for chunk in chunks
    ]

    def build_partition():
        engine = PlacementEngine(
            make_placer("optchain", N_SHARDS), epoch_length=epoch_length
        )
        return EnginePartition(
            engine,
            partition_id=0,
            n_partitions=1,
            lease_length=len(stream),
        )

    off_cpu = off_wall = float("inf")
    on_cpu = on_wall = float("inf")
    wal_bytes = 0
    path = Path(tmp_dir) / "bench_service.wal"
    for _ in range(repeats):
        gc.collect()
        partition = build_partition()
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        for chunk, raw in zip(chunks, payloads):
            partition.place_batch(chunk, raw_segments=raw)
        off_cpu = min(off_cpu, time.process_time() - cpu0)
        off_wall = min(off_wall, time.perf_counter() - wall0)

        gc.collect()
        partition = build_partition()
        journal = BatchJournal(str(path), 0, 1, len(stream))
        journal.open(0, "")
        partition.journal = journal
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        for chunk, raw in zip(chunks, payloads):
            partition.place_batch(chunk, raw_segments=raw)
        on_cpu = min(on_cpu, time.process_time() - cpu0)
        on_wall = min(on_wall, time.perf_counter() - wall0)
        wal_bytes = journal.tell()
        journal.close()
        path.unlink()

    n_tx = len(stream)
    return {
        "n_tx": n_tx,
        "n_shards": N_SHARDS,
        "batch_size": batch_size,
        "wal_off_tx_per_s": round(n_tx / off_cpu, 1),
        "wal_on_tx_per_s": round(n_tx / on_cpu, 1),
        "wal_off_tx_per_s_wall": round(n_tx / off_wall, 1),
        "wal_on_tx_per_s_wall": round(n_tx / on_wall, 1),
        "overhead_pct": round(100.0 * (on_cpu / off_cpu - 1.0), 1),
        "overhead_pct_wall": round(
            100.0 * (on_wall / off_wall - 1.0), 1
        ),
        "wal_bytes": wal_bytes,
        "wal_bytes_per_tx": round(wal_bytes / n_tx, 1),
    }


def bench_hist_overhead(stream, repeats, epoch_length):
    """Serving cost of per-batch latency recording at k=16.

    The same batched engine loop with and without the bookkeeping the
    dispatcher does per micro-batch (two ``perf_counter`` reads, one
    log-histogram record, two counter bumps), at 256-tx batches - the
    loadgen chunk granularity, where the per-batch cost is most
    visible (at the 8192 coalescing ceiling it vanishes). The check
    gate holds it under ``--max-hist-overhead-pct`` (5%) of engine
    throughput. CPU best-of per the bench protocol.
    """
    from repro.obs.metrics import ServiceMetrics

    chunk = 256
    plain_cpu = timed_cpu = float("inf")
    metrics = None
    for _ in range(repeats):
        gc.collect()
        engine = PlacementEngine(
            make_placer("optchain", N_SHARDS), epoch_length=epoch_length
        )
        cpu0 = time.process_time()
        for offset in range(0, len(stream), chunk):
            engine.place_batch(stream[offset : offset + chunk])
        plain_cpu = min(plain_cpu, time.process_time() - cpu0)

        gc.collect()
        engine = PlacementEngine(
            make_placer("optchain", N_SHARDS), epoch_length=epoch_length
        )
        metrics = ServiceMetrics()
        cpu0 = time.process_time()
        for offset in range(0, len(stream), chunk):
            batch = stream[offset : offset + chunk]
            started = time.perf_counter()
            engine.place_batch(batch)
            metrics.record_batch(
                len(batch), time.perf_counter() - started
            )
        timed_cpu = min(timed_cpu, time.process_time() - cpu0)
    n_tx = len(stream)
    hist = metrics.batch_latency
    return {
        "n_tx": n_tx,
        "batch_size": chunk,
        "plain_tx_per_s": round(n_tx / plain_cpu, 1),
        "instrumented_tx_per_s": round(n_tx / timed_cpu, 1),
        "overhead_pct": round(100.0 * (timed_cpu / plain_cpu - 1.0), 2),
        "records": hist.count,
        "server_batch_ms_p50": round(hist.percentile(0.5) * 1e3, 3),
        "server_batch_ms_p99": round(hist.percentile(0.99) * 1e3, 3),
    }


def bench_snapshot(stream, tmp_dir, epoch_length):
    """Checkpoint cost at the midpoint + restore equivalence.

    Also measures the delta lane (format v3): a full snapshot at the
    40% mark, a delta after another 10% of stream - the delta write is
    O(activity since base) where the full write is O(n_placed), which
    is the bounded-checkpoint-cost claim.
    """
    split = len(stream) // 2
    base_at = int(len(stream) * 0.4)
    reference = make_placer("optchain", N_SHARDS)
    expected = reference.place_stream(stream)

    engine = PlacementEngine(
        make_placer("optchain", N_SHARDS), epoch_length=epoch_length
    )
    head = engine.place_batch(stream[:base_at])
    path = Path(tmp_dir) / "bench_service.snap"
    engine.checkpoint(path, track_delta=True)  # the delta's base
    head += engine.place_batch(stream[base_at:split])
    start = time.perf_counter()
    delta_size = engine.checkpoint(path, delta=True)
    delta_seconds = time.perf_counter() - start
    start = time.perf_counter()
    delta_restored = load_engine_snapshot(path)
    delta_load_seconds = time.perf_counter() - start
    delta_tail = delta_restored.place_batch(stream[split:])

    start = time.perf_counter()
    size = engine.checkpoint(path)
    save_seconds = time.perf_counter() - start
    start = time.perf_counter()
    restored = load_engine_snapshot(path)
    load_seconds = time.perf_counter() - start
    tail = restored.place_batch(stream[split:])
    loads_identical = (
        restored.placer._proxy.loads == reference._proxy.loads
    )
    path.unlink()
    return {
        "snapshot_at_tx": split,
        "bytes": size,
        "save_ms": round(save_seconds * 1e3, 2),
        "load_ms": round(load_seconds * 1e3, 2),
        "roundtrip_identical": head + tail == expected
        and loads_identical,
        "delta_base_at_tx": base_at,
        "delta_bytes": delta_size,
        "delta_save_ms": round(delta_seconds * 1e3, 2),
        "delta_load_ms": round(delta_load_seconds * 1e3, 2),
        "delta_roundtrip_identical": head + delta_tail == expected,
    }


def bench_memory_bound(n_tx, batch_size, epoch_length, horizon_epochs):
    """Stream n_tx through horizon truncation; sample live vectors."""
    generator = BitcoinLikeGenerator(seed=STREAM_SEED)
    engine = PlacementEngine(
        make_placer("optchain", N_SHARDS),
        epoch_length=epoch_length,
        horizon_epochs=horizon_epochs,
    )
    gc.collect()
    rss_start = rss_kb()
    samples = []
    sample_every = max(epoch_length, n_tx // 20)
    next_sample = sample_every
    start = time.perf_counter()
    for chunk in chunk_stream(generator.stream(n_tx), batch_size):
        engine.place_batch(chunk)
        if engine.n_placed >= next_sample:
            stats = engine.stats()
            samples.append(
                {
                    "n_placed": stats.n_placed,
                    "live_vectors": stats.live_vectors,
                    "rss_kb": rss_kb(),
                }
            )
            next_sample += sample_every
    elapsed = time.perf_counter() - start
    gc.collect()
    stats = engine.stats()
    live_bound = (horizon_epochs + 2) * epoch_length
    return {
        "n_tx": n_tx,
        "n_shards": N_SHARDS,
        "epoch_length": epoch_length,
        "horizon_epochs": horizon_epochs,
        "tx_per_s": round(n_tx / elapsed, 1),
        "final_live_vectors": stats.live_vectors,
        "peak_live_vectors": stats.peak_live_vectors,
        "released_vectors": stats.released_vectors,
        "live_vector_bound": live_bound,
        "rss_start_kb": rss_start,
        "rss_end_kb": rss_kb(),
        "samples": samples,
        # RSS caveat: the generator's wallet/UTXO model shares the
        # process and grows with the stream; the *gated* memory claim
        # is the live-vector bound, RSS is context.
    }


def bench_quality_drift(stream, raw_assignment, batch_size):
    """What the horizon policy costs in placement quality."""
    engine = PlacementEngine(
        make_placer("optchain", N_SHARDS),
        epoch_length=max(1_000, len(stream) // 20),
        horizon_epochs=4,
    )
    truncated = []
    for offset in range(0, len(stream), batch_size):
        truncated.extend(
            engine.place_batch(stream[offset : offset + batch_size])
        )
    exact_cross = cross_shard_fraction(stream, raw_assignment)
    truncated_cross = cross_shard_fraction(stream, truncated)
    changed = sum(
        1 for a, b in zip(raw_assignment, truncated) if a != b
    )
    return {
        "n_tx": len(stream),
        "epoch_length": engine.stats().epoch_length,
        "horizon_epochs": 4,
        "exact_cross_shard": round(exact_cross, 6),
        "truncated_cross_shard": round(truncated_cross, 6),
        "cross_shard_delta": round(truncated_cross - exact_cross, 6),
        "placements_changed_fraction": round(
            changed / len(stream), 6
        ),
    }


def bench_codec_cpu(n_tx, chunk_size):
    """CPU per transaction of one full wire round trip, per codec.

    Client-side request encode + server-side request decode +
    server-side response encode + client-side response decode, over
    the same chunked stream both socket lanes replay. CPU time
    (``process_time``), best of 3, per the repo's bench protocol.
    """
    stream = synthetic_stream(n_tx, seed=STREAM_SEED)
    chunks = [
        stream[offset : offset + chunk_size]
        for offset in range(0, n_tx, chunk_size)
    ]
    fake_shards = [
        [txid % N_SHARDS for txid in range(c[0].txid, c[-1].txid + 1)]
        for c in chunks
    ]

    def json_roundtrip():
        for chunk, shards in zip(chunks, fake_shards):
            line = json.dumps(
                {"op": "place", "id": 1, "txs": wire.encode_batch(chunk)},
                separators=(",", ":"),
            ).encode()
            wire.decode_batch(json.loads(line)["txs"])
            response = json.dumps(
                {"id": 1, "ok": True, "shards": shards},
                separators=(",", ":"),
            ).encode()
            json.loads(response)

    def binary_roundtrip():
        for chunk, shards in zip(chunks, fake_shards):
            frame = wire.encode_place_request(1, chunk)
            wire.decode_place_payload(frame[wire.FRAME_HEADER_BYTES :])
            response = wire.encode_shards_response(1, shards)
            wire.decode_response(
                wire.RESPONSE_FLAG | wire.STATUS_SHARDS,
                response[wire.FRAME_HEADER_BYTES :],
            )

    results = {}
    for name, fn in (("json", json_roundtrip), ("binary", binary_roundtrip)):
        best = float("inf")
        for _ in range(3):
            gc.collect()
            start = time.process_time()
            fn()
            best = min(best, time.process_time() - start)
        results[name] = best
    return {
        "n_tx": n_tx,
        "chunk_size": chunk_size,
        "json_us_per_tx": round(results["json"] / n_tx * 1e6, 3),
        "binary_us_per_tx": round(results["binary"] / n_tx * 1e6, 3),
        "cpu_ratio_json_over_binary": round(
            results["json"] / results["binary"], 2
        ),
    }


def bench_loadgen(n_tx, n_users, chunk_size, proto="json"):
    """End-to-end socket path: server + closed-loop loadgen."""
    stream = synthetic_stream(n_tx, seed=STREAM_SEED)

    async def run():
        engine = PlacementEngine(
            make_placer("optchain", N_SHARDS), epoch_length=25_000
        )
        server = PlacementServer(engine, port=0)
        await server.start()
        try:
            report = await run_loadgen_async(
                port=server.port,
                stream=stream,
                n_users=n_users,
                chunk_size=chunk_size,
                proto=proto,
            )
        finally:
            await server.stop()
        return report, server.metrics.batch_latency

    report, server_hist = asyncio.run(run())
    payload = report.as_dict()
    payload["transport"] = "tcp-localhost"
    # Server-side dispatch latency (engine place_batch per coalesced
    # micro-batch), from the always-on serving histogram - the other
    # side of the client-observed chunk latencies above.
    payload["server_batches"] = server_hist.count
    payload["server_batch_ms_p50"] = round(
        server_hist.percentile(0.5) * 1e3, 3
    )
    payload["server_batch_ms_p99"] = round(
        server_hist.percentile(0.99) * 1e3, 3
    )
    return payload


def bench_workers(workers_list, lease_length, n_tx, n_users, chunk_size):
    """Sharded-service sweep: loadgen through N worker processes.

    Single-vCPU caveat: this container cannot overlap worker decode
    with placement, so rows beyond one worker mostly measure protocol
    overhead (handoffs + cross-partition reads); on multi-core hosts
    the decode offload is real headroom. The per-row numbers are
    recorded as measured, with the remote-read context alongside.
    """
    from repro.service.coordinator import ShardedPlacementServer

    stream = synthetic_stream(n_tx, seed=STREAM_SEED)
    rows = []
    for n_workers in workers_list:
        async def run():
            server = ShardedPlacementServer(
                {
                    "method": "optchain",
                    "n_shards": N_SHARDS,
                    "epoch_length": 25_000,
                },
                n_workers,
                port=0,
                lease_length=lease_length,
            )
            await server.start()
            try:
                report = await run_loadgen_async(
                    port=server.port,
                    stream=stream,
                    n_users=n_users,
                    chunk_size=chunk_size,
                    proto="binary",
                )
                cursor = server._cursor
                # Merged worker histograms via the stats op - the same
                # aggregation a monitoring client sees.
                merged = await server._merged_stats()
                snap = merged["obs"]["metrics"]["batch_latency"]
            finally:
                await server.stop()
            return report, cursor, snap

        report, cursor, snap = asyncio.run(run())
        from repro.obs.hist import LogHistogram

        server_hist = LogHistogram.from_snapshot(snap)
        row = report.as_dict()
        row["workers"] = n_workers
        row["lease_length"] = lease_length
        row["placed_total"] = cursor
        row["server_batches"] = server_hist.count
        row["server_batch_ms_p50"] = round(
            server_hist.percentile(0.5) * 1e3, 3
        )
        row["server_batch_ms_p99"] = round(
            server_hist.percentile(0.99) * 1e3, 3
        )
        rows.append(row)
        print(
            f"  workers={n_workers}: "
            f"{row['placements_per_s']:>9,.0f} placements/s   "
            f"p50 {row['latency_ms_p50']}ms   errors {row['errors']}",
            flush=True,
        )
    return rows


def run(args):
    t0 = time.perf_counter()
    stream = synthetic_stream(args.txs, seed=STREAM_SEED)
    gen_seconds = time.perf_counter() - t0

    # Warm both lanes (allocator arenas + code paths) so the first
    # measured repeat is not penalized; 20k tx is enough to stabilize.
    warm = stream[: min(20_000, args.txs)]
    make_placer("optchain", N_SHARDS).place_stream(warm)
    warm_engine = PlacementEngine(make_placer("optchain", N_SHARDS))
    warm_engine.place_batch(warm)

    print(f"throughput (k={N_SHARDS}, {args.txs} tx) ...", flush=True)
    throughput, raw_assignment = bench_throughput(
        stream, args.batch_size, args.repeats, args.epoch_length
    )
    print(
        f"  engine {throughput['engine_tx_per_s']:>12,.0f} tx/s   "
        f"raw {throughput['raw_placer_tx_per_s']:>12,.0f} tx/s   "
        f"overhead {throughput['serving_overhead_pct']}%",
        flush=True,
    )

    # Never a silently-empty lane: unrequested records why it is
    # missing, and check() fails loudly when a speedup gate is set but
    # no rows exist to hold it (the BENCH_service.json regression).
    numpy_engine: "list | dict" = {
        "skipped": "lane not requested (pass --numpy)"
    }
    if args.numpy:
        from repro.core.backends import backend_unavailable_reason

        reason = backend_unavailable_reason("numpy")
        if reason is not None:
            print(
                f"--numpy requested but unavailable: {reason}",
                file=sys.stderr,
            )
            return 1
        shards = [int(item) for item in args.numpy_shards.split(",")]
        print(
            f"numpy engine lanes (k in {shards}, {args.txs} tx) ...",
            flush=True,
        )
        numpy_engine = bench_numpy_engine(
            stream, args.batch_size, args.repeats, args.epoch_length, shards
        )

    print("wal overhead ...", flush=True)
    wal_overhead = bench_wal_overhead(
        stream,
        args.batch_size,
        args.repeats,
        args.epoch_length,
        args.tmp_dir,
    )
    print(
        f"  off {wal_overhead['wal_off_tx_per_s']:>12,.0f} tx/s   "
        f"on {wal_overhead['wal_on_tx_per_s']:>12,.0f} tx/s   "
        f"overhead {wal_overhead['overhead_pct']}% "
        f"({wal_overhead['wal_bytes_per_tx']} B/tx journaled)",
        flush=True,
    )

    print("histogram recording overhead ...", flush=True)
    hist_overhead = bench_hist_overhead(
        stream, args.repeats, args.epoch_length
    )
    print(
        f"  plain {hist_overhead['plain_tx_per_s']:>12,.0f} tx/s   "
        f"instrumented {hist_overhead['instrumented_tx_per_s']:>12,.0f} "
        f"tx/s   overhead {hist_overhead['overhead_pct']}% "
        f"({hist_overhead['records']} records, server p50 "
        f"{hist_overhead['server_batch_ms_p50']}ms)",
        flush=True,
    )

    print("snapshot ...", flush=True)
    snapshot = bench_snapshot(stream, args.tmp_dir, args.epoch_length)
    print(
        f"  {snapshot['bytes']:,} bytes, save {snapshot['save_ms']}ms, "
        f"load {snapshot['load_ms']}ms, identical="
        f"{snapshot['roundtrip_identical']}",
        flush=True,
    )

    print("quality drift (horizon truncation) ...", flush=True)
    drift = bench_quality_drift(stream, raw_assignment, args.batch_size)
    print(
        f"  cross-shard {drift['exact_cross_shard']:.4f} -> "
        f"{drift['truncated_cross_shard']:.4f} "
        f"(delta {drift['cross_shard_delta']:+.4f})",
        flush=True,
    )

    print(f"memory bound ({args.memory_txs} tx stream) ...", flush=True)
    memory = bench_memory_bound(
        args.memory_txs,
        args.batch_size,
        args.epoch_length,
        args.horizon_epochs,
    )
    print(
        f"  {memory['tx_per_s']:,.0f} tx/s, live vectors "
        f"{memory['final_live_vectors']:,} (peak "
        f"{memory['peak_live_vectors']:,}, bound "
        f"{memory['live_vector_bound']:,}) of {args.memory_txs:,} tx; "
        f"rss {memory['rss_start_kb']//1024}->"
        f"{memory['rss_end_kb']//1024} MB",
        flush=True,
    )

    print("codec round-trip CPU ...", flush=True)
    codec = bench_codec_cpu(
        min(args.txs, 30_000), args.loadgen_chunk
    )
    print(
        f"  json {codec['json_us_per_tx']}us/tx   binary "
        f"{codec['binary_us_per_tx']}us/tx   ratio "
        f"{codec['cpu_ratio_json_over_binary']}x",
        flush=True,
    )

    loadgen = {}
    for proto in ("json", "binary"):
        print(
            f"loadgen over sockets ({args.loadgen_txs} tx, {proto}) ...",
            flush=True,
        )
        lane = bench_loadgen(
            args.loadgen_txs,
            args.loadgen_users,
            args.loadgen_chunk,
            proto=proto,
        )
        loadgen[proto] = lane
        print(
            f"  {lane['placements_per_s']:,.0f} placements/s, "
            f"p50 {lane['latency_ms_p50']}ms "
            f"p95 {lane['latency_ms_p95']}ms",
            flush=True,
        )

    workers_list = [
        int(item) for item in args.workers.split(",") if item
    ]
    workers_sweep = []
    if workers_list:
        print(
            f"sharded service sweep (workers {workers_list}, binary, "
            f"{args.loadgen_txs} tx) ...",
            flush=True,
        )
        workers_sweep = bench_workers(
            workers_list,
            args.lease_length,
            args.loadgen_txs,
            args.loadgen_users,
            args.loadgen_chunk,
        )

    payload = {
        "meta": {
            "stream_seed": STREAM_SEED,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "stream_generation_seconds": round(gen_seconds, 2),
        },
        "throughput": throughput,
        "numpy_engine": numpy_engine,
        "wal_overhead": wal_overhead,
        "hist_overhead": hist_overhead,
        "snapshot": snapshot,
        "quality_drift": drift,
        "memory_bound": memory,
        "codec": codec,
        "loadgen": loadgen,
        "workers_sweep": workers_sweep,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    if args.check:
        failures = check(payload, args)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("all checks passed")
    return 0


def check(payload, args):
    """The acceptance gates; returns a list of failure messages."""
    failures = []
    throughput = payload["throughput"]
    if throughput["engine_tx_per_s"] < args.min_throughput:
        failures.append(
            f"engine throughput {throughput['engine_tx_per_s']:,.0f} "
            f"tx/s < {args.min_throughput:,.0f} at k={N_SHARDS}"
        )
    if not throughput["identical_to_raw_placer"]:
        failures.append(
            "engine placements diverge from the raw placer (exact "
            "truncation must be invisible)"
        )
    numpy_rows = payload.get("numpy_engine") or []
    if isinstance(numpy_rows, dict):
        # A recorded skip marker; only a failure when the run demands
        # the lane.
        if args.min_numpy_speedup:
            failures.append(
                "numpy engine lane required (--min-engine-speedup "
                f"{args.min_numpy_speedup}) but skipped: "
                f"{numpy_rows.get('skipped', 'no rows recorded')}"
            )
        numpy_rows = []
    elif not numpy_rows and (args.numpy or args.min_numpy_speedup):
        failures.append(
            "numpy engine lane is empty - the lane ran no shard "
            "counts (or a stale result was recorded); rerun with "
            "--numpy"
        )
    for row in numpy_rows:
        if not row["identical_to_python"]:
            failures.append(
                f"numpy engine lane diverged from python at "
                f"k={row['n_shards']} (backend contract is bit-identity)"
            )
        if (
            args.min_numpy_speedup
            and row["speedup"] < args.min_numpy_speedup
        ):
            failures.append(
                f"numpy engine lane at k={row['n_shards']} is "
                f"{row['speedup']:.2f}x python < "
                f"{args.min_numpy_speedup}x"
            )
    wal_overhead = payload["wal_overhead"]
    if wal_overhead["overhead_pct"] > args.max_wal_overhead_pct:
        failures.append(
            f"write-ahead journal costs "
            f"{wal_overhead['overhead_pct']}% engine throughput "
            f"(> {args.max_wal_overhead_pct}% budget)"
        )
    hist_overhead = payload.get("hist_overhead")
    if (
        hist_overhead
        and hist_overhead["overhead_pct"] > args.max_hist_overhead_pct
    ):
        failures.append(
            f"latency-histogram recording costs "
            f"{hist_overhead['overhead_pct']}% engine throughput "
            f"(> {args.max_hist_overhead_pct}% budget)"
        )
    if not payload["snapshot"]["roundtrip_identical"]:
        failures.append("snapshot restore-then-continue diverged")
    if not payload["snapshot"]["delta_roundtrip_identical"]:
        failures.append(
            "delta-snapshot restore-then-continue diverged"
        )
    memory = payload["memory_bound"]
    if memory["peak_live_vectors"] > memory["live_vector_bound"]:
        failures.append(
            f"peak live vectors {memory['peak_live_vectors']:,} "
            f"exceed the horizon bound {memory['live_vector_bound']:,}"
        )
    if memory["final_live_vectors"] > 0.5 * memory["n_tx"]:
        failures.append(
            "live vectors are not meaningfully below the stream "
            "length - truncation is not bounding memory"
        )
    codec = payload["codec"]
    if codec["cpu_ratio_json_over_binary"] < args.min_codec_ratio:
        failures.append(
            f"binary codec is only "
            f"{codec['cpu_ratio_json_over_binary']}x cheaper than "
            f"JSON per round trip (< {args.min_codec_ratio}x)"
        )
    json_lane = payload["loadgen"]["json"]
    binary_lane = payload["loadgen"]["binary"]
    for name, lane in payload["loadgen"].items():
        if lane["errors"]:
            failures.append(
                f"{name} loadgen saw {lane['errors']} errors"
            )
    if (
        binary_lane["placements_per_s"]
        < json_lane["placements_per_s"]
    ):
        failures.append(
            "binary socket lane is slower than the JSON lane "
            f"({binary_lane['placements_per_s']:,.0f} vs "
            f"{json_lane['placements_per_s']:,.0f} placements/s)"
        )
    for row in payload["workers_sweep"]:
        if row["errors"]:
            failures.append(
                f"workers={row['workers']} sweep saw "
                f"{row['errors']} errors"
            )
        if row["placed_total"] < row["n_txs"]:
            failures.append(
                f"workers={row['workers']} placed "
                f"{row['placed_total']} of {row['n_txs']} transactions"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--txs", type=int, default=100_000)
    parser.add_argument("--memory-txs", type=int, default=1_000_000)
    parser.add_argument("--loadgen-txs", type=int, default=20_000)
    parser.add_argument("--loadgen-users", type=int, default=8)
    parser.add_argument("--loadgen-chunk", type=int, default=256)
    # 8192 matches the server's max_batch_txs coalescing ceiling and
    # measures best on this container (see PERFORMANCE.md).
    parser.add_argument("--batch-size", type=int, default=8_192)
    parser.add_argument("--epoch-length", type=int, default=25_000)
    parser.add_argument("--horizon-epochs", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--min-throughput", type=float, default=100_000)
    parser.add_argument(
        "--max-wal-overhead-pct",
        type=float,
        default=15.0,
        help="gate: the write-ahead journal may cost at most this "
        "percentage of engine throughput (CPU time)",
    )
    parser.add_argument(
        "--max-hist-overhead-pct",
        type=float,
        default=5.0,
        help="gate: latency-histogram recording may cost at most this "
        "percentage of engine throughput (CPU time)",
    )
    parser.add_argument(
        "--min-codec-ratio",
        type=float,
        default=2.0,
        help="gate: binary codec must be this much cheaper than JSON "
        "per wire round trip (CPU time)",
    )
    parser.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated worker counts for the sharded sweep "
        "(empty string skips it)",
    )
    parser.add_argument(
        "--lease-length",
        type=int,
        default=25_000,
        help="ownership lease length for the sharded sweep",
    )
    parser.add_argument(
        "--numpy",
        action="store_true",
        help="also run the vectorized-backend engine lanes "
        "(python vs numpy, bit-identity gated)",
    )
    parser.add_argument(
        "--numpy-shards",
        default="16,64",
        help="comma-separated shard counts for the numpy engine lanes",
    )
    parser.add_argument(
        "--min-engine-speedup",
        "--min-numpy-speedup",
        dest="min_numpy_speedup",
        type=float,
        default=0.0,
        help="--check: required numpy-vs-python engine speedup at "
        "every lane shard count (the recorded run gates 5x); fails "
        "loudly when the lane is skipped or empty",
    )
    parser.add_argument("--tmp-dir", default="/tmp")
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_service.json"
        ),
    )
    parser.add_argument("--check", action="store_true")
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":
    raise SystemExit(main())
