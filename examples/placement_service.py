"""The placement service, end to end: engine, truncation, checkpoint,
server, load generator.

Walks the full serving story in one script:

1. wrap an OptChain placer in a long-lived
   :class:`~repro.service.engine.PlacementEngine` and stream
   transactions through it in micro-batches: the *exact* truncation
   policy (drop fully-spent vectors) keeps placements bit-identical to
   a one-shot run while shrinking the T2S store;
2. add a spend *horizon* for hard-bounded memory, and measure the
   placement drift that trade buys;
3. checkpoint, restore, and continue - bit-identically;
4. serve the same engine over TCP and drive it with the multi-user
   closed-loop load generator.

Run::

    python examples/placement_service.py
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

from repro.api import PlacementEngine, make_placer, synthetic_stream
from repro.service.loadgen import run_loadgen_async
from repro.service.server import PlacementServer

N_TRANSACTIONS = 15_000
N_SHARDS = 16
BATCH = 512


def main() -> None:
    print(f"generating {N_TRANSACTIONS} Bitcoin-like transactions...")
    stream = synthetic_stream(N_TRANSACTIONS, seed=7)

    # -- 1: exact truncation - smaller store, identical placements -------
    reference = make_placer("optchain", N_SHARDS).place_stream(stream)
    engine = PlacementEngine(
        make_placer("optchain", N_SHARDS), epoch_length=1_000
    )
    placed = []
    for offset in range(0, N_TRANSACTIONS, BATCH):
        placed.extend(engine.place_batch(stream[offset : offset + BATCH]))
    stats = engine.stats()
    print(
        f"\nserved {stats.n_placed} transactions in micro-batches of "
        f"{BATCH}:"
    )
    print(
        f"  live T2S vectors: {stats.live_vectors} "
        f"(released {stats.released_vectors} fully-spent; an "
        f"untruncated store would hold {stats.n_placed})"
    )
    print(
        f"  placements identical to one-shot run: "
        f"{placed == reference}"
    )

    # -- 2: horizon mode - hard memory bound, measured drift -------------
    horizon = PlacementEngine(
        make_placer("optchain", N_SHARDS),
        epoch_length=1_000,
        horizon_epochs=6,
    )
    drifted = []
    for offset in range(0, N_TRANSACTIONS, BATCH):
        drifted.extend(
            horizon.place_batch(stream[offset : offset + BATCH])
        )
    horizon_stats = horizon.stats()
    changed = sum(1 for a, b in zip(placed, drifted) if a != b)
    print(
        f"\nwith a 6-epoch spend horizon (hard-bounded memory):"
        f"\n  live T2S vectors: {horizon_stats.live_vectors} "
        f"(horizon starts at txid {horizon_stats.horizon_start})"
        f"\n  placements changed vs exact: {changed} of "
        f"{N_TRANSACTIONS} ({changed / N_TRANSACTIONS:.2%})"
    )

    # -- 3: checkpoint / restore -----------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        snap = Path(tmp) / "engine.snap"
        size = engine.checkpoint(snap)
        restored = PlacementEngine.restore(snap)
        more = synthetic_stream(N_TRANSACTIONS + 2_000, seed=7)[
            N_TRANSACTIONS:
        ]
        continued = restored.place_batch(more)
        engine_continued = engine.place_batch(more)
        print(
            f"\ncheckpoint: {size:,} bytes; restored engine continues "
            f"bit-identically: {continued == engine_continued}"
        )

    # -- 4: serve over TCP, drive with the load generator ----------------
    async def serve_and_load() -> None:
        server = PlacementServer(
            PlacementEngine(
                make_placer("optchain", N_SHARDS), epoch_length=1_000
            ),
            port=0,
        )
        await server.start()
        try:
            report = await run_loadgen_async(
                port=server.port,
                stream=stream,
                n_users=6,
                chunk_size=250,
            )
        finally:
            await server.stop()
        print("\nload generator over TCP (6 closed-loop users):")
        print("  " + report.summary().replace("\n", "\n  "))

    asyncio.run(serve_and_load())


if __name__ == "__main__":
    main()
