"""Soak harness: long-running stability check of the sharded service.

``repro soak`` (or :mod:`scripts.soak`) drives a real in-process
:class:`~repro.service.coordinator.ShardedPlacementServer` with the
standard load generator in **waves**, injects kill/respawn chaos
mid-run, scrapes the live ``/metrics`` endpoint after every wave, and
gates the run on the invariants a long-lived deployment must hold:

- **Memory.** Worker RSS growth from the first to the last wave stays
  under a factor (leaks compound; epoch truncation must hold RSS
  roughly flat once warm), and per-partition live T2S vectors stay
  under the horizon bound ``(horizon_epochs + 2) * epoch_length``.
- **Quality.** The drift monitor's rolling cross-shard-rate delta
  (production vs the exact python shadow) stays under a threshold.
- **Latency.** Scrape-derived server-side p99 batch latency stays
  under a bound (derived from the histogram ladder alone - the "p999
  derivable from the scrape" contract, exercised here at p99).
- **Recovery.** Every injected SIGKILL turns into a counted respawn,
  the service never degrades, and no batch is answered with an error.

Every gate reads from the scrape, not from in-process state: the soak
doubles as an end-to-end test of the observability plane itself. The
only in-process touches are operational (picking a victim pid, waiting
for recovery to settle, shutdown).
"""

from __future__ import annotations

import asyncio
import os
import signal
import tempfile
import time
from typing import Any, Callable

from repro.datasets.synthetic import BitcoinLikeGenerator
from repro.errors import ConfigurationError
from repro.obs.prom import (
    quantile_from_scrape,
    sample_value,
    scrape_metrics,
)
from repro.service.coordinator import ShardedPlacementServer
from repro.service.loadgen import run_loadgen_async

__all__ = ["run_soak"]


def _labeled_values(
    families: dict[str, dict[str, Any]], family: str, label: str
) -> dict[str, float]:
    """All samples of a gauge/counter family, keyed by one label."""
    entry = families.get(family)
    if entry is None:
        return {}
    out: dict[str, float] = {}
    for (name, label_items), value in entry["samples"].items():
        if name != family:
            continue
        labels = dict(label_items)
        if label in labels:
            out[labels[label]] = value
    return out


async def run_soak(
    *,
    n_txs: int = 200_000,
    waves: int = 10,
    workers: int = 2,
    shards: int = 8,
    method: str = "optchain-topk:cap=auto:0.01",
    lease_length: int = 5_000,
    epoch_length: int = 5_000,
    horizon_epochs: "int | None" = 4,
    seed: int = 1,
    users: int = 4,
    chunk_size: int = 256,
    kills: int = 1,
    drift_sample: int = 8,
    drift_window: int = 20_000,
    drift_threshold: float = 0.05,
    drift_min_samples: int = 200,
    max_rss_growth: float = 1.6,
    max_drift_delta: float = 0.05,
    max_p99_s: float = 5.0,
    recovery_timeout: float = 120.0,
    workdir: "str | None" = None,
    log: "Callable[[str], None] | None" = print,
) -> dict[str, Any]:
    """Run one soak; returns a JSON-safe report with per-gate verdicts.

    The report's ``ok`` is True iff every gate passed. Scale the run
    with ``n_txs``/``waves`` - CI runs a tiny configuration with the
    same gates active, nightly runs go to millions of transactions.
    """
    if waves < 2:
        raise ConfigurationError(f"waves must be >= 2, got {waves}")
    if kills >= waves - 1:
        raise ConfigurationError(
            f"kills must leave at least one clean wave before and "
            f"after each ({kills} kills, {waves} waves)"
        )

    def say(message: str) -> None:
        if log is not None:
            log(message)

    if workdir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-soak-")
        workdir = scratch.name
    else:
        scratch = None
    spec: dict[str, Any] = {
        "method": method,
        "n_shards": shards,
        "epoch_length": epoch_length,
        "horizon_epochs": horizon_epochs,
        "truncate_spent": True,
    }
    if drift_sample:
        spec["drift_sample_every"] = drift_sample
        spec["drift_window"] = drift_window
        spec["drift_threshold"] = drift_threshold
        spec["drift_min_samples"] = drift_min_samples
    # Kills land on interior waves, evenly spread; wave 0 establishes
    # the RSS baseline and the final wave always runs on a healed
    # service.
    kill_waves = {
        1 + (index * (waves - 2)) // kills for index in range(kills)
    } if kills else set()

    server = ShardedPlacementServer(
        spec,
        workers,
        "127.0.0.1",
        0,
        lease_length=lease_length,
        checkpoint_path=os.path.join(workdir, "soak.ckpt"),
        metrics_port=0,
    )
    await server.start()
    say(
        f"soak: {n_txs:,} txs in {waves} waves against {workers} "
        f"workers (k={shards}, {method}), {kills} kill(s), metrics on "
        f":{server.metrics_port}"
    )
    generator = BitcoinLikeGenerator(seed=seed)
    wave_reports: list[dict[str, Any]] = []
    loadgen_errors = 0
    started = time.perf_counter()
    try:
        for wave in range(waves):
            remaining = n_txs - generator.n_generated
            wave_txs = remaining // (waves - wave)
            stream = generator.generate(wave_txs)
            report = await run_loadgen_async(
                "127.0.0.1",
                server.port,
                stream=stream,
                n_users=users,
                chunk_size=chunk_size,
                seed=seed + wave,
                request_timeout=60.0,
                max_retries=10,
                retry_backoff=0.05,
            )
            loadgen_errors += report.errors
            if wave in kill_waves:
                await _kill_one_worker(server, say, recovery_timeout)
            scrape = await scrape_metrics(
                "127.0.0.1", server.metrics_port
            )
            wave_reports.append(_wave_snapshot(wave, report, scrape))
            say(
                f"wave {wave + 1}/{waves}: "
                f"{report.placements_per_s:,.0f} tx/s, "
                f"{report.retries} retries, "
                f"{report.errors} errors"
            )
        final = wave_reports[-1]
        gates = _evaluate_gates(
            wave_reports,
            loadgen_errors=loadgen_errors,
            kills=kills,
            epoch_length=epoch_length,
            horizon_epochs=horizon_epochs,
            drift_enabled=bool(drift_sample),
            drift_min_samples=drift_min_samples,
            max_rss_growth=max_rss_growth,
            max_drift_delta=max_drift_delta,
            max_p99_s=max_p99_s,
        )
        elapsed = time.perf_counter() - started
        result = {
            "ok": all(gate["ok"] for gate in gates),
            "n_txs": generator.n_generated,
            "waves": waves,
            "workers": workers,
            "kills": kills,
            "elapsed_s": round(elapsed, 2),
            "placements_per_s": round(
                generator.n_generated / elapsed, 1
            ) if elapsed > 0 else 0.0,
            "gates": gates,
            "final": final,
        }
        for gate in gates:
            say(
                f"gate {gate['name']}: "
                + ("ok" if gate["ok"] else "FAIL")
                + f" ({gate['detail']})"
            )
        return result
    finally:
        await server.stop()
        if scratch is not None:
            scratch.cleanup()


async def _kill_one_worker(
    server: ShardedPlacementServer,
    say: Callable[[str], None],
    recovery_timeout: float,
) -> None:
    """SIGKILL the lease-holding worker, wait for the respawn to heal."""
    victim = server._workers[server._granted]
    process = victim.process
    if process is None or process.pid is None:  # pragma: no cover
        return
    say(f"killing worker {victim.partition_id} (pid {process.pid})")
    os.kill(process.pid, signal.SIGKILL)
    deadline = time.monotonic() + recovery_timeout
    while time.monotonic() < deadline:
        await asyncio.sleep(0.1)
        if server._degraded is not None:
            raise RuntimeError(
                f"service degraded after kill: {server._degraded}"
            )
        if victim.alive and not victim.recovering:
            say(f"worker {victim.partition_id} recovered")
            return
    raise RuntimeError(
        f"worker {victim.partition_id} did not recover within "
        f"{recovery_timeout}s"
    )


def _merged_or_sum(
    scrape: dict[str, dict[str, Any]], family: str
) -> "float | None":
    """The ``partition="all"`` sample when exported, else the sum of
    the per-partition samples (None when the family is absent)."""
    values = _labeled_values(scrape, family, "partition")
    if not values:
        return None
    if "all" in values:
        return values["all"]
    return sum(values.values())


def _wave_snapshot(
    wave: int, report: Any, scrape: dict[str, dict[str, Any]]
) -> dict[str, Any]:
    """Everything the gates need from one post-wave scrape."""
    p99 = quantile_from_scrape(
        scrape, "repro_batch_latency_seconds", 0.99, partition="all"
    )
    if p99 is None:
        p99 = quantile_from_scrape(
            scrape, "repro_batch_latency_seconds", 0.99, partition="0"
        )
    drift_deltas = _labeled_values(scrape, "repro_drift_delta", "partition")
    drift_delta = drift_deltas.get(
        "all", drift_deltas.get(next(iter(drift_deltas), ""), None)
    )
    return {
        "wave": wave,
        "client_tx_per_s": round(report.placements_per_s, 1),
        "client_errors": report.errors,
        "client_retries": report.retries,
        "rss_kb": _labeled_values(
            scrape, "repro_rss_kilobytes", "process"
        ),
        "live_vectors": _labeled_values(
            scrape, "repro_live_vectors", "partition"
        ),
        "p99_s": p99,
        "drift_delta": drift_delta,
        "drift_window_sampled": _merged_or_sum(
            scrape, "repro_drift_window_sampled"
        )
        or 0.0,
        "respawns": sample_value(
            scrape,
            "repro_worker_respawns_total",
            partition="coordinator",
        )
        or 0.0,
        "degraded": sample_value(scrape, "repro_degraded") or 0.0,
        "error_replies": _merged_or_sum(
            scrape, "repro_error_replies_total"
        )
        or 0.0,
    }


def _evaluate_gates(
    wave_reports: list[dict[str, Any]],
    *,
    loadgen_errors: int,
    kills: int,
    epoch_length: int,
    horizon_epochs: "int | None",
    drift_enabled: bool,
    drift_min_samples: int,
    max_rss_growth: float,
    max_drift_delta: float,
    max_p99_s: float,
) -> list[dict[str, Any]]:
    baseline, final = wave_reports[0], wave_reports[-1]
    gates: list[dict[str, Any]] = []

    def gate(name: str, ok: bool, detail: str) -> None:
        gates.append({"name": name, "ok": bool(ok), "detail": detail})

    growth = 0.0
    for process, base_kb in baseline["rss_kb"].items():
        last_kb = final["rss_kb"].get(process)
        if base_kb and last_kb:
            growth = max(growth, last_kb / base_kb)
    gate(
        "rss_growth",
        growth <= max_rss_growth,
        f"max process growth x{growth:.3f} (limit x{max_rss_growth})",
    )
    if horizon_epochs is not None:
        bound = (horizon_epochs + 2) * epoch_length
        worst = max(final["live_vectors"].values(), default=0.0)
        gate(
            "live_vectors",
            worst <= bound,
            f"max partition {worst:,.0f} (bound {bound:,} = "
            f"(horizon {horizon_epochs} + 2) * epoch {epoch_length:,})",
        )
    if drift_enabled:
        sampled = final["drift_window_sampled"]
        delta = final["drift_delta"]
        if sampled >= drift_min_samples and delta is not None:
            gate(
                "drift_delta",
                delta <= max_drift_delta,
                f"delta {delta:+.4f} over {sampled:,.0f} sampled "
                f"(limit {max_drift_delta})",
            )
        else:
            gate(
                "drift_delta",
                False,
                f"only {sampled:,.0f} sampled transactions in the "
                f"window (need {drift_min_samples}); run longer or "
                "raise --drift-sample frequency",
            )
    p99 = final["p99_s"]
    gate(
        "latency_p99",
        p99 is not None and p99 <= max_p99_s,
        f"server-side p99 {p99 if p99 is None else round(p99, 4)}s "
        f"(limit {max_p99_s}s)",
    )
    if kills:
        gate(
            "respawns",
            final["respawns"] >= kills,
            f"{final['respawns']:.0f} respawns counted for {kills} "
            "kill(s)",
        )
    gate(
        "no_errors",
        loadgen_errors == 0 and final["error_replies"] == 0,
        f"{loadgen_errors} client errors, "
        f"{final['error_replies']:.0f} server error replies",
    )
    gate(
        "not_degraded",
        final["degraded"] == 0.0,
        "degraded gauge is "
        + ("0" if final["degraded"] == 0.0 else "1"),
    )
    return gates
