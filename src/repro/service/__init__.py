"""Long-lived placement serving layer.

The paper frames OptChain as an *online* component that shards consult
per incoming transaction (§IV, Alg. 1); everything else in this repo
runs it inside one-shot experiment scripts. This package turns the
placement engine into a stateful service that can survive a stream of
millions of transactions:

- :mod:`repro.service.engine` - :class:`PlacementEngine`, the
  long-lived wrapper: batch validation against the serving contract,
  and the epoch/truncation policy that bounds the T2S store's memory
  (the seed store kept every sparse vector forever, ~1.5 GB at 10M
  transactions).
- :mod:`repro.service.state` - versioned snapshot/restore of the full
  placement state (T2S vectors, lazy-decay load-proxy clocks, shard
  sizes, RNG state) to a compact binary file, such that
  restore-then-continue is bit-identical to an uninterrupted run.
- :mod:`repro.service.wire` - the two wire codecs (NDJSON for compat,
  length-prefixed binary frames for throughput), sharing one port via
  first-byte sniffing.
- :mod:`repro.service.server` - the single-process asyncio server:
  dual-codec connections, micro-batched dispatch into the fused
  ``place_batch`` hot path, graceful drain and checkpoint-on-shutdown.
- :mod:`repro.service.partition` / :mod:`~repro.service.coordinator` /
  :mod:`~repro.service.worker` / :mod:`~repro.service.channel` - the
  horizontally sharded service (``repro serve --workers N``):
  partitioned engines owning contiguous txid leases behind a routing
  front-end, with ownership handoff, cross-partition parent lookups,
  per-partition checkpoints, heartbeat supervision with bounded-backoff
  respawn of crashed workers (including non-idle ones), and
  per-partition in-flight windows that shed excess load with explicit
  ``overload`` replies.
- :mod:`repro.service.journal` - the per-partition write-ahead batch
  journal (CRC-framed records, fsync batching, reset at checkpoints):
  a worker SIGKILLed mid-batch respawns from checkpoint + WAL replay
  bit-identical to never having crashed; torn tails are detected and
  discarded.
- :mod:`repro.service.faults` - deterministic, seedable fault
  injection (kill a chosen partition at a chosen point of the batch
  lifecycle, optionally tearing the journal tail) plus the end-to-end
  chaos harness behind ``repro chaos`` and the crash-recovery tests.
- :mod:`repro.service.client` - sync and async clients, one pair per
  codec, with optional transparent retry: jittered exponential
  backoff, reconnect on transport loss, idempotent re-submission of
  ``retry``/``overload`` replies and timed-out requests.
- :mod:`repro.service.loadgen` - an open/closed-loop load generator
  replaying :mod:`repro.datasets.synthetic` streams from many simulated
  users over either codec.

Quickstart (in-process)::

    from repro import OptChainPlacer
    from repro.service import PlacementEngine

    engine = PlacementEngine(
        OptChainPlacer(n_shards=16), epoch_length=25_000, horizon_epochs=8
    )
    shards = engine.place_batch(batch_of_transactions)
    engine.checkpoint("placement.snap")          # restartable
    engine = PlacementEngine.restore("placement.snap")

Over the wire: ``repro serve`` / ``repro loadgen`` (see the CLI), or
``examples/placement_service.py`` and ``examples/sharded_service.py``
for scripted walkthroughs.
"""

from repro.service.engine import EngineStats, PlacementEngine
from repro.service.partition import EnginePartition
from repro.service.state import (
    load_engine_snapshot,
    save_engine_delta,
    save_engine_snapshot,
)

__all__ = [
    "EngineStats",
    "EnginePartition",
    "PlacementEngine",
    "load_engine_snapshot",
    "save_engine_delta",
    "save_engine_snapshot",
]
