"""TaN network analysis and MIT-format interchange (§IV-A / Fig. 2).

Builds the Transactions-as-Nodes DAG from a synthetic workload, prints
the paper's §IV-A statistics, and demonstrates the edge-list round trip
through the MIT Bitcoin dump format - the path for running every
experiment in this repository on the real dataset.

Run::

    python examples/dataset_analysis.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.datasets.io import load_edge_list, save_edge_list
from repro.datasets.synthetic import BitcoinLikeGenerator, GeneratorConfig
from repro.txgraph.stats import (
    average_degree_timeline,
    degree_distribution,
    graph_summary,
)
from repro.txgraph.tan import TaNGraph

N_TRANSACTIONS = 30_000


def main() -> None:
    config = GeneratorConfig(
        flood_start=N_TRANSACTIONS // 2,
        flood_length=600,
        flood_inputs=25,
    )
    stream = BitcoinLikeGenerator(config=config, seed=13).generate(
        N_TRANSACTIONS
    )
    graph = TaNGraph.from_transactions(stream)
    summary = graph_summary(graph)

    print("TaN network summary (paper §IV-A, Bitcoin: 298M nodes/697M edges)")
    print(f"  nodes:            {summary.n_nodes}")
    print(f"  edges:            {summary.n_edges}")
    print(f"  average degree:   {summary.average_degree:.2f} (paper ~2.3)")
    print(f"  coinbase:         {summary.n_coinbase}")
    print(f"  unspent frontier: {summary.n_unspent_frontier}")
    print(
        f"  in-degree < 3:    "
        f"{summary.fraction_in_degree_below_3:.1%} (paper 93.1%)"
    )
    print(
        f"  out-degree < 10:  "
        f"{summary.fraction_out_degree_below_10:.1%} (paper 97.6%)"
    )

    print("\nin-degree histogram head (log-log power law in the paper):")
    histogram = degree_distribution(graph, "in")
    for degree in range(6):
        count = histogram.get(degree, 0)
        bar = "#" * max(1, int(40 * count / summary.n_nodes))
        print(f"  {degree}: {count:7d} {bar}")

    print("\naverage degree over time (flooding spike mid-stream, Fig. 2c):")
    for n, avg in average_degree_timeline(graph, n_points=12):
        print(f"  after {n:6d} txs: {avg:.2f}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "edges.txt"
        n_edges = save_edge_list(stream, path)
        reloaded = load_edge_list(path)
        rebuilt = TaNGraph.from_transactions(reloaded)
        print(
            f"\nMIT-format round trip: wrote {n_edges} edges, reloaded "
            f"{rebuilt.n_nodes} transactions, "
            f"{rebuilt.n_edges} edges (graph preserved: "
            f"{rebuilt.n_edges == graph.n_edges})"
        )


if __name__ == "__main__":
    main()
