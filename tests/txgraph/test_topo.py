"""Unit tests for topological verification helpers."""

from __future__ import annotations


from repro.txgraph.tan import TaNGraph
from repro.txgraph.topo import (
    is_topological_stream,
    kahn_topological_order,
    topological_positions,
    verify_dag,
)
from repro.utxo.transaction import OutPoint, Transaction, TxOutput


def tx(txid, parents):
    return Transaction(
        txid=txid,
        inputs=tuple(OutPoint(p, 0) for p in parents),
        outputs=(TxOutput(1),),
    )


class TestStreamCheck:
    def test_valid_stream(self):
        assert is_topological_stream([tx(0, []), tx(1, [0]), tx(2, [0])])

    def test_forward_reference_fails(self):
        # tx 1 spends from tx 2 which has not appeared yet.
        stream = [
            tx(0, []),
            Transaction(
                txid=1, inputs=(OutPoint(2, 0),), outputs=(TxOutput(1),)
            ),
            tx(2, [0]),
        ]
        # Transaction's own validation does not see the stream; the
        # stream checker must catch the ordering violation.
        assert not is_topological_stream(stream)

    def test_generated_stream_topological(self, small_stream):
        assert is_topological_stream(small_stream)

    def test_empty_stream(self):
        assert is_topological_stream([])


class TestVerifyDag:
    def test_valid_graph_passes(self, small_graph):
        verify_dag(small_graph)

    def test_empty_graph_passes(self):
        verify_dag(TaNGraph())


class TestKahn:
    def test_order_is_topological(self, small_graph):
        order = kahn_topological_order(small_graph)
        assert len(order) == small_graph.n_nodes
        position = topological_positions(order)
        for u in small_graph.nodes():
            for parent in small_graph.inputs_of(u):
                assert position[parent] < position[u]

    def test_chain_order(self):
        graph = TaNGraph()
        graph.add_node(0, [])
        graph.add_node(1, [0])
        graph.add_node(2, [1])
        assert kahn_topological_order(graph) == [0, 1, 2]

    def test_empty(self):
        assert kahn_topological_order(TaNGraph()) == []
