"""The sharded placement service: a routing front-end over N workers.

``repro serve --workers N`` runs this instead of the single-process
:class:`~repro.service.server.PlacementServer`. The coordinator owns
the client port (both codecs, same as the monolith) but does **no
placement work itself**: a binary ``place`` request is routed to the
owning worker by peeking the txid range at a fixed offset in the
payload - the raw bytes are forwarded without decoding. Workers own
partitioned engines (:mod:`repro.service.partition`), decode and queue
batches on arrival, and place them when they hold the write lease; the
coordinator shepherds the lease (grant on ``W_RELEASE``), relays
cross-partition parent reads and writebacks between workers, merges
``stats``, and orchestrates cross-partition checkpoints (pause the
active worker, snapshot every partition, write a manifest, resume).

Differences from the monolith, stated plainly:

- A client batch that crosses a lease boundary is split and the
  segments commit independently (atomic validation holds *per
  segment*). With the default lease of 25k transactions and the 8192
  batch ceiling this affects at most one request per lease.
- On shutdown, queued requests still waiting for a txid gap are failed
  (as in the monolith); in-flight batches complete first.
- If a worker dies, its in-flight requests fail and the coordinator
  respawns it from its per-partition checkpoint when one exists and
  matches the stream position; a dead *active* worker (or a stale
  checkpoint) leaves the service **degraded** - refusing placements
  with an explicit error - because continuing would fork the stream.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import secrets
import sys
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError, ProtocolError
from repro.service import channel as ch
from repro.service.channel import ChannelClosed, FrameChannel
from repro.service.server import DEFAULT_PORT, PlacementServer
from repro.service.wire import (
    FRAME_HEADER_BYTES,
    PROTOCOL_VERSION,
    decode_place_payload,
    decode_response,
    encode_place_request,
    encode_response_for,
    peek_place_header,
)
from repro.service.worker import worker_main
from repro.utxo.transaction import Transaction

MANIFEST_FORMAT = 1


class _WorkerHandle:
    """Coordinator-side view of one worker process."""

    __slots__ = (
        "partition_id",
        "process",
        "channel",
        "alive",
        "checkpoint_path",
        "_hello_cursor",
    )

    def __init__(self, partition_id: int, checkpoint_path: "str | None"):
        self.partition_id = partition_id
        self.process = None
        self.channel: "FrameChannel | None" = None
        self.alive = False
        self.checkpoint_path = checkpoint_path
        self._hello_cursor: "int | None" = None

    async def request_json(
        self, kind: int, body: "dict[str, Any] | None" = None
    ) -> dict:
        """One JSON request/response round trip (raises ChannelClosed)."""
        if not self.alive or self.channel is None:
            raise ChannelClosed(
                f"worker {self.partition_id} is not connected"
            )
        response_kind, payload = await self.channel.request(
            kind, ch.json_payload(body) if body else b""
        )
        return decode_response(response_kind, payload)


class ShardedPlacementServer(PlacementServer):
    """Client front-end + worker supervisor of the sharded service."""

    def __init__(
        self,
        spec: dict[str, Any],
        n_workers: int,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        lease_length: int = 25_000,
        max_batch_txs: int = 8192,
        max_line_bytes: int = 8 * 1024 * 1024,
        checkpoint_path: "str | None" = None,
        checkpoint_compress: bool = False,
        worker_start_timeout: float = 120.0,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        super().__init__(
            engine=None,
            host=host,
            port=port,
            max_batch_txs=max_batch_txs,
            max_line_bytes=max_line_bytes,
            checkpoint_path=checkpoint_path,
            checkpoint_compress=checkpoint_compress,
        )
        self._spec = dict(spec)
        self._n_workers = n_workers
        self._lease_length = lease_length
        self._start_timeout = worker_start_timeout
        self._token = secrets.token_hex(16)
        self._workers = [
            _WorkerHandle(index, self._partition_path(index))
            for index in range(n_workers)
        ]
        self._hello_waiters: dict[int, asyncio.Future] = {}
        self._worker_server: "asyncio.AbstractServer | None" = None
        self._worker_port = 0
        self._cursor = 0
        self._granted = 0
        self._degraded: "str | None" = None
        self._handoff_lock = asyncio.Lock()
        self._respawn_tasks: set[asyncio.Task] = set()
        self._mp = multiprocessing.get_context("spawn")

    # -- layout helpers ----------------------------------------------------

    def _partition_path(self, partition_id: int) -> "str | None":
        if self._checkpoint_path is None:
            return None
        return f"{self._checkpoint_path}.p{partition_id}"

    @property
    def _manifest_path(self) -> "str | None":
        if self._checkpoint_path is None:
            return None
        return f"{self._checkpoint_path}.manifest.json"

    def _owner_of(self, txid: int) -> int:
        return (txid // self._lease_length) % self._n_workers

    def _expected_cursor(self, partition_id: int) -> int:
        """Local cursor a healthy partition must be at, given the
        global cursor: the end of its last started lease, or the
        global cursor itself for the write-lease holder (which, at an
        exact lease boundary, is the *next* lease's owner - it has
        already imported the hot state and padded to the cursor)."""
        cursor = self._cursor
        if cursor == 0:
            return 0
        if partition_id == self._owner_of(cursor):
            return cursor
        lease = (cursor - 1) // self._lease_length
        while lease >= 0:
            if lease % self._n_workers == partition_id:
                return min(cursor, (lease + 1) * self._lease_length)
            lease -= 1
        return 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._load_manifest()
        self._worker_server = await asyncio.start_server(
            self._on_worker_connection, "127.0.0.1", 0
        )
        self._worker_port = self._worker_server.sockets[0].getsockname()[1]
        hellos = []
        for handle in self._workers:
            hellos.append(self._await_hello(handle.partition_id))
            self._spawn(handle)
        try:
            await asyncio.wait_for(
                asyncio.gather(*hellos), self._start_timeout
            )
        except asyncio.TimeoutError:
            raise ConfigurationError(
                f"workers did not all connect within "
                f"{self._start_timeout}s"
            )
        self._validate_worker_cursors()
        # Hand the write lease to the owner of the cursor's lease. Its
        # own (fresh or restored) state is current, so no hot payload.
        self._granted = self._owner_of(self._cursor)
        await self._workers[self._granted].request_json(ch.W_GRANT, {})
        self._server = await asyncio.start_server(
            self._on_connection,
            self._host,
            self._port,
            limit=self._max_line_bytes,
        )
        self._port = self._server.sockets[0].getsockname()[1]

    def _spawn(self, handle: _WorkerHandle) -> None:
        spec = dict(self._spec)
        spec["n_partitions"] = self._n_workers
        spec["lease_length"] = self._lease_length
        spec["max_batch_txs"] = self._max_batch_txs
        spec["checkpoint"] = handle.checkpoint_path
        spec["checkpoint_compress"] = self._checkpoint_compress
        process = self._mp.Process(
            target=worker_main,
            args=(
                "127.0.0.1",
                self._worker_port,
                self._token,
                handle.partition_id,
                spec,
            ),
            daemon=True,
        )
        process.start()
        handle.process = process

    def _await_hello(self, partition_id: int) -> asyncio.Future:
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        self._hello_waiters[partition_id] = future
        return future

    def _validate_worker_cursors(self) -> None:
        for handle in self._workers:
            expected = self._expected_cursor(handle.partition_id)
            reported = getattr(handle, "_hello_cursor", None)
            if reported is not None and reported != expected:
                raise ConfigurationError(
                    f"worker {handle.partition_id} restored cursor "
                    f"{reported}, expected {expected}; delete the "
                    f"checkpoint set to start fresh"
                )

    async def stop(self) -> None:
        """Drain, checkpoint (if configured), stop workers. Idempotent."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        # 1. Drain: workers fail their gapped queues and finish the
        #    batch in flight; every outstanding client response then
        #    resolves.
        for handle in self._workers:
            if handle.alive:
                try:
                    await handle.request_json(
                        ch.W_SHUTDOWN, {"drain": True}
                    )
                except ChannelClosed:
                    pass
        if self._line_tasks:
            await asyncio.gather(
                *list(self._line_tasks), return_exceptions=True
            )
        # 2. Checkpoint the drained partitions.
        if self._checkpoint_path is not None and self._degraded is None:
            try:
                await self._checkpoint_all()
            except ChannelClosed:
                pass
        # 3. Exit the workers and reap the processes.
        for handle in self._workers:
            if handle.alive:
                try:
                    await handle.request_json(
                        ch.W_SHUTDOWN, {"exit": True}
                    )
                except ChannelClosed:
                    pass
        for handle in self._workers:
            if handle.channel is not None:
                await handle.channel.close()
            if handle.process is not None:
                handle.process.join(timeout=10)
                if handle.process.is_alive():  # pragma: no cover
                    handle.process.kill()
                    handle.process.join(timeout=5)
        for task in list(self._respawn_tasks):
            task.cancel()
        if self._respawn_tasks:
            await asyncio.gather(
                *list(self._respawn_tasks), return_exceptions=True
            )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._worker_server is not None:
            self._worker_server.close()
            await self._worker_server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        self._stopped.set()

    # -- worker links ------------------------------------------------------

    async def _on_worker_connection(self, reader, writer) -> None:
        holder: dict[str, Any] = {"handle": None}

        async def handle_frame(
            kind: int, request_id: int, payload: bytes
        ) -> bytes:
            if kind == ch.W_HELLO:
                return await self._handle_hello(
                    holder, channel, request_id, payload
                )
            handle = holder["handle"]
            if handle is None:
                raise ProtocolError("worker must W_HELLO first")
            return await self._handle_worker_request(
                handle, kind, request_id, payload
            )

        def on_close() -> None:
            handle = holder["handle"]
            if handle is not None:
                task = asyncio.get_running_loop().create_task(
                    self._on_worker_lost(handle)
                )
                self._respawn_tasks.add(task)
                task.add_done_callback(self._respawn_tasks.discard)

        channel = FrameChannel(
            reader, writer, handle_frame, on_close=on_close
        )

    async def _handle_hello(
        self, holder, channel: FrameChannel, request_id: int, payload: bytes
    ) -> bytes:
        body = ch.parse_json_payload(payload)
        if body.get("token") != self._token:
            raise ProtocolError("bad worker token")
        partition_id = body.get("partition_id")
        if (
            not isinstance(partition_id, int)
            or not 0 <= partition_id < self._n_workers
        ):
            raise ProtocolError(f"bad partition id {partition_id!r}")
        handle = self._workers[partition_id]
        handle.channel = channel
        handle.alive = True
        handle._hello_cursor = body.get("n_placed", 0)
        holder["handle"] = handle
        waiter = self._hello_waiters.pop(partition_id, None)
        if waiter is not None and not waiter.done():
            waiter.set_result(handle)
        return encode_response_for(request_id, {"ok": True})

    async def _handle_worker_request(
        self,
        handle: _WorkerHandle,
        kind: int,
        request_id: int,
        payload: bytes,
    ) -> bytes:
        if kind == ch.W_ACQUIRE:
            body = ch.parse_json_payload(payload)
            states: dict[str, Any] = {}
            by_owner: dict[int, list[int]] = {}
            for txid in body["txids"]:
                by_owner.setdefault(self._owner_of(txid), []).append(txid)
            for owner_id, txids in by_owner.items():
                response = await self._workers[owner_id].request_json(
                    ch.W_READ, {"txids": txids}
                )
                if not response.get("ok"):
                    return encode_response_for(request_id, response)
                states.update(response["states"])
            return encode_response_for(
                request_id, {"ok": True, "states": states}
            )
        if kind == ch.W_WRITEBACK:
            body = ch.parse_json_payload(payload)
            by_owner: dict[int, list[dict]] = {}
            for update in body["updates"]:
                by_owner.setdefault(
                    self._owner_of(update["txid"]), []
                ).append(update)
            for owner_id, updates in by_owner.items():
                try:
                    response = await self._workers[
                        owner_id
                    ].request_json(ch.W_APPLY, {"updates": updates})
                except ChannelClosed:
                    self._degraded = (
                        f"partition {owner_id} lost a writeback; "
                        "restart from the last checkpoint"
                    )
                    return encode_response_for(
                        request_id,
                        {
                            "ok": False,
                            "code": "engine",
                            "error": self._degraded,
                        },
                    )
                if not response.get("ok"):
                    # The batch already committed on the active
                    # partition; an owner refusing its share of the
                    # mutations means the partitions have forked.
                    # Serving on would silently return wrong results.
                    self._degraded = (
                        f"partition {owner_id} rejected a writeback "
                        f"({response.get('error', 'unknown error')}); "
                        "restart from the last checkpoint"
                    )
                    return encode_response_for(request_id, response)
            return encode_response_for(request_id, {"ok": True})
        if kind == ch.W_RELEASE:
            body = ch.parse_json_payload(payload)
            hot = body["hot"]
            async with self._handoff_lock:
                self._cursor = max(self._cursor, hot["n_placed"])
                next_owner = self._owner_of(hot["n_placed"])
                try:
                    await self._workers[next_owner].request_json(
                        ch.W_GRANT, {"hot": hot}
                    )
                except ChannelClosed:
                    self._degraded = (
                        f"partition {next_owner} cannot accept the "
                        "write lease; restart from the last checkpoint"
                    )
                    return encode_response_for(
                        request_id,
                        {
                            "ok": False,
                            "code": "engine",
                            "error": self._degraded,
                        },
                    )
                self._granted = next_owner
            return encode_response_for(request_id, {"ok": True})
        raise ProtocolError(f"unexpected worker request kind 0x{kind:02x}")

    async def _on_worker_lost(self, handle: _WorkerHandle) -> None:
        handle.alive = False
        handle.channel = None
        if self._stopping:
            return
        if handle.partition_id == self._granted:
            self._degraded = (
                f"active partition {handle.partition_id} died with "
                "unplaced state; restart from the last checkpoint"
            )
            return
        path = handle.checkpoint_path
        if path is None or not os.path.exists(path):
            self._degraded = (
                f"partition {handle.partition_id} died with no "
                "checkpoint to respawn from"
            )
            return
        waiter = self._await_hello(handle.partition_id)
        self._spawn(handle)
        try:
            await asyncio.wait_for(waiter, self._start_timeout)
        except asyncio.TimeoutError:
            self._degraded = (
                f"partition {handle.partition_id} failed to respawn"
            )
            return
        expected = self._expected_cursor(handle.partition_id)
        if handle._hello_cursor != expected:
            self._degraded = (
                f"partition {handle.partition_id} respawned at cursor "
                f"{handle._hello_cursor} but the stream is at "
                f"{expected}; its checkpoint is stale - restart the "
                "service from a consistent checkpoint set"
            )

    # -- checkpoint orchestration ------------------------------------------

    async def _checkpoint_all(self) -> dict[str, Any]:
        """Pause-the-world cross-partition snapshot + manifest."""
        async with self._handoff_lock:
            active = self._workers[self._granted]
            total = 0
            cursor = self._cursor
            try:
                response = await active.request_json(
                    ch.W_CHECKPOINT,
                    {"hold": True, "compress": self._checkpoint_compress},
                )
                if not response.get("ok"):
                    return response
                total += response["bytes"]
                cursor = response["n_placed"]
                for handle in self._workers:
                    if handle is active:
                        continue
                    response = await handle.request_json(
                        ch.W_CHECKPOINT,
                        {"compress": self._checkpoint_compress},
                    )
                    if not response.get("ok"):
                        return response
                    total += response["bytes"]
                self._cursor = max(self._cursor, cursor)
                self._write_manifest(cursor)
            finally:
                if active.alive:
                    try:
                        await active.request_json(ch.W_RESUME, {})
                    except ChannelClosed:
                        pass
            return {
                "ok": True,
                "path": str(self._checkpoint_path),
                "bytes": total,
                "n_placed": cursor,
                "partitions": self._n_workers,
            }

    def _write_manifest(self, cursor: int) -> None:
        manifest = {
            "format": MANIFEST_FORMAT,
            "n_partitions": self._n_workers,
            "lease_length": self._lease_length,
            "cursor": cursor,
            "spec": self._spec,
            "files": [
                os.path.basename(self._partition_path(index))
                for index in range(self._n_workers)
            ],
        }
        path = Path(self._manifest_path)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=2) + "\n")
        os.replace(tmp, path)

    def _load_manifest(self) -> None:
        path = self._manifest_path
        if path is None or not os.path.exists(path):
            return
        manifest = json.loads(Path(path).read_text())
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ConfigurationError(
                f"unsupported checkpoint manifest format "
                f"{manifest.get('format')!r}"
            )
        if manifest["n_partitions"] != self._n_workers:
            raise ConfigurationError(
                f"checkpoint set was taken with "
                f"{manifest['n_partitions']} workers, requested "
                f"{self._n_workers}; delete it to repartition"
            )
        if manifest["lease_length"] != self._lease_length:
            raise ConfigurationError(
                f"checkpoint set was taken with lease_length "
                f"{manifest['lease_length']}, requested "
                f"{self._lease_length}"
            )
        # The snapshots' configuration wins on restore (each worker is
        # rebuilt entirely from its partition file); flag whatever the
        # requested spec silently overrides - same principle as the
        # single-process serve restore warnings.
        stored_spec = manifest.get("spec", {})
        for key in sorted(set(stored_spec) | set(self._spec)):
            stored = stored_spec.get(key)
            wanted = self._spec.get(key)
            if stored != wanted:
                print(
                    f"warning: {key}={wanted!r} ignored; the "
                    f"checkpoint set was taken with {stored!r} "
                    "(delete the checkpoints to reconfigure)",
                    file=sys.stderr,
                    flush=True,
                )
        self._spec = dict(stored_spec) or self._spec
        self._cursor = manifest["cursor"]

    # -- client request handling -------------------------------------------

    async def _handle(self, message: Any) -> dict:
        if not isinstance(message, dict):
            raise ProtocolError("request must be a JSON object")
        op = message.get("op")
        if op == "place":
            return await self._handle_place(message)
        if op == "stats":
            return await self._merged_stats()
        if op == "checkpoint":
            if self._checkpoint_path is None:
                raise ProtocolError(
                    "no checkpoint path: start the server with one "
                    "(per-request paths are not supported with "
                    "--workers)"
                )
            return await self._checkpoint_all()
        if op == "ping":
            return {
                "ok": True,
                "protocol": PROTOCOL_VERSION,
                "n_placed": self._cursor,
                "workers": self._n_workers,
                "granted": self._granted,
                "degraded": self._degraded,
                # partition id -> OS pid, for ops tooling (and the CI
                # kill-a-worker smoke).
                "worker_pids": {
                    str(handle.partition_id): (
                        handle.process.pid if handle.process else None
                    )
                    for handle in self._workers
                },
            }
        if op == "shutdown":
            asyncio.get_running_loop().create_task(self.stop())
            return {"ok": True}
        raise ProtocolError(
            f"unknown op {op!r}; expected one of place, stats, "
            "checkpoint, ping, shutdown"
        )

    async def _place_frame(self, payload: bytes) -> dict:
        first, count = peek_place_header(payload)
        if count > self._max_batch_txs:
            raise ProtocolError(
                f"batch of {count} exceeds max_batch_txs="
                f"{self._max_batch_txs}"
            )
        last = first + count - 1
        if first // self._lease_length == last // self._lease_length:
            # Entirely inside one lease: forward the raw bytes.
            return await self._route_segments([(first, count, payload)])
        txs = decode_place_payload(payload)
        return await self._route_segments(self._split_segments(txs))

    async def _place_request(self, txs: list[Transaction]) -> dict:
        if len(txs) > self._max_batch_txs:
            raise ProtocolError(
                f"batch of {len(txs)} exceeds max_batch_txs="
                f"{self._max_batch_txs}"
            )
        return await self._route_segments(self._split_segments(txs))

    def _split_segments(
        self, txs: list[Transaction]
    ) -> list[tuple[int, int, bytes]]:
        segments = []
        start = 0
        lease_length = self._lease_length
        while start < len(txs):
            first = txs[start].txid
            end_txid = (first // lease_length + 1) * lease_length
            sub = txs[start : start + (end_txid - first)]
            segments.append(
                (
                    first,
                    len(sub),
                    encode_place_request(0, sub)[FRAME_HEADER_BYTES:],
                )
            )
            start += len(sub)
        return segments

    async def _route_segments(
        self, segments: list[tuple[int, int, bytes]]
    ) -> dict:
        if self._stopping:
            return {
                "ok": False,
                "code": "shutdown",
                "error": "server is shutting down",
            }
        if self._degraded is not None:
            return {
                "ok": False,
                "code": "engine",
                "error": f"service is degraded: {self._degraded}",
            }
        shards: list[int] = []
        for first, count, payload in segments:
            handle = self._workers[self._owner_of(first)]
            try:
                kind, response_payload = await handle.channel.request(
                    ch.W_PLACE, payload
                )
            except (ChannelClosed, AttributeError):
                return {
                    "ok": False,
                    "code": "engine",
                    "error": (
                        f"partition {handle.partition_id} is "
                        "unavailable"
                    ),
                }
            response = decode_response(kind, response_payload)
            if not response.get("ok"):
                return response
            shards.extend(response["shards"])
            self._cursor = max(self._cursor, first + count)
        return {"ok": True, "shards": shards}

    # -- stats merge -------------------------------------------------------

    async def _merged_stats(self) -> dict:
        per_partition = []
        for handle in self._workers:
            try:
                response = await handle.request_json(ch.W_STATS)
            except ChannelClosed:
                per_partition.append(
                    {"partition_id": handle.partition_id, "dead": True}
                )
                continue
            if response.get("ok"):
                per_partition.append(response["stats"])
        merged = merge_partition_stats(
            per_partition, self._cursor, self._granted
        )
        merged["degraded"] = self._degraded
        return {"ok": True, "stats": merged}


def merge_partition_stats(
    per_partition: list[dict[str, Any]], cursor: int, granted: int
) -> dict[str, Any]:
    """Combine per-partition stats into one monolith-shaped view.

    Counters (live/released vectors, tracked unspent) are sums over the
    disjoint slices; stream-position fields (epoch, horizon) come from
    the partition holding the write lease, whose view is current.
    """
    alive = [
        stats for stats in per_partition if not stats.get("dead")
    ]
    active = next(
        (
            stats
            for stats in alive
            if stats.get("partition_id") == granted
        ),
        alive[0] if alive else {},
    )

    def _sum(key: str):
        values = [
            stats.get(key) for stats in alive if stats.get(key) is not None
        ]
        return sum(values) if values else None

    support = None
    supports = [
        stats["support"] for stats in alive if stats.get("support")
    ]
    if supports:
        live = sum(entry["live_vectors"] for entry in supports)
        support = {
            "live_vectors": live,
            "mean_nnz": (
                sum(
                    entry["mean_nnz"] * entry["live_vectors"]
                    for entry in supports
                )
                / live
                if live
                else 0.0
            ),
            "max_nnz": max(entry["max_nnz"] for entry in supports),
            "dropped_mass": active.get("support", {}).get(
                "dropped_mass", 0.0
            ),
            "truncated_vectors": active.get("support", {}).get(
                "truncated_vectors", 0
            ),
            "support_cap": active.get("support", {}).get("support_cap"),
        }
    return {
        "strategy": active.get("strategy"),
        "n_shards": active.get("n_shards"),
        "n_placed": cursor,
        "live_vectors": _sum("live_vectors"),
        "released_vectors": _sum("released_vectors"),
        "peak_live_vectors": _sum("peak_live_vectors"),
        "horizon_start": active.get("horizon_start", 0),
        "epoch": active.get("epoch", 0),
        "tracked_unspent": _sum("tracked_unspent"),
        "epoch_length": active.get("epoch_length"),
        "horizon_epochs": active.get("horizon_epochs"),
        "support": support,
        "partitions": per_partition,
    }


async def start_sharded_server(
    spec: dict[str, Any],
    n_workers: int,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    **kwargs: Any,
) -> ShardedPlacementServer:
    """Construct and start a :class:`ShardedPlacementServer`."""
    server = ShardedPlacementServer(
        spec, n_workers, host, port, **kwargs
    )
    await server.start()
    return server
