"""Unit tests for dataset IO round-trips and the MIT-format loader."""

from __future__ import annotations

import pytest

from repro.datasets.io import (
    load_edge_list,
    load_stream_jsonl,
    save_edge_list,
    save_stream_jsonl,
)
from repro.errors import DatasetError
from repro.txgraph.tan import TaNGraph
from repro.txgraph.topo import is_topological_stream
from repro.utxo.utxoset import UTXOSet


class TestJsonlRoundTrip:
    def test_round_trip_exact(self, small_stream, tmp_path):
        path = tmp_path / "stream.jsonl"
        written = save_stream_jsonl(small_stream, path)
        assert written == len(small_stream)
        loaded = list(load_stream_jsonl(path))
        assert loaded == small_stream

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text(
            '{"txid":0,"inputs":[],"outputs":[[5,0]]}\n'
            "\n"
            '{"txid":1,"inputs":[[0,0]],"outputs":[[5,0]]}\n'
        )
        assert len(list(load_stream_jsonl(path))) == 2

    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"txid":0,"inputs":[],"outputs":[[5,0]]}\nnot json\n')
        with pytest.raises(DatasetError, match=":2"):
            list(load_stream_jsonl(path))

    def test_out_of_order_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"txid":5,"inputs":[],"outputs":[[5,0]]}\n')
        with pytest.raises(DatasetError, match="out of order"):
            list(load_stream_jsonl(path))

    def test_forward_spend_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"txid":0,"inputs":[[3,0]],"outputs":[[5,0]]}\n'
        )
        with pytest.raises(DatasetError, match="non-earlier"):
            list(load_stream_jsonl(path))


class TestEdgeList:
    def test_round_trip_preserves_graph(self, small_stream, tmp_path):
        path = tmp_path / "edges.txt"
        save_edge_list(small_stream, path)
        loaded = load_edge_list(path)
        original = TaNGraph.from_transactions(small_stream)
        rebuilt = TaNGraph.from_transactions(loaded)
        assert rebuilt.n_nodes == original.n_nodes
        assert rebuilt.n_edges == original.n_edges
        for txid in range(0, original.n_nodes, 37):
            assert rebuilt.inputs_of(txid) == original.inputs_of(txid)

    def test_loaded_stream_is_valid(self, small_stream, tmp_path):
        """Reconstructed transactions replay against a UTXO set."""
        path = tmp_path / "edges.txt"
        save_edge_list(small_stream, path)
        loaded = load_edge_list(path)
        assert is_topological_stream(loaded)
        UTXOSet().apply_all(loaded)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n\n1 0\n2 0\n")
        loaded = load_edge_list(path)
        assert len(loaded) == 3

    def test_forward_edge_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n")
        with pytest.raises(DatasetError, match="backwards"):
            load_edge_list(path)

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("42\n")
        with pytest.raises(DatasetError, match="expected"):
            load_edge_list(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("a b\n")
        with pytest.raises(DatasetError, match="non-integer"):
            load_edge_list(path)

    def test_shared_parent_no_double_spend(self, tmp_path):
        """Two spenders of the same parent consume different outputs."""
        path = tmp_path / "edges.txt"
        path.write_text("1 0\n2 0\n3 0\n")
        loaded = load_edge_list(path)
        UTXOSet().apply_all(loaded)


class TestWallets:
    def test_balance_and_utxo_count(self):
        import random

        from repro.datasets.wallets import WalletModel
        from repro.utxo.transaction import OutPoint

        model = WalletModel(10, random.Random(1))
        model.deposit(3, OutPoint(0, 0), 100)
        model.deposit(3, OutPoint(1, 0), 50)
        assert model.balance_of(3) == 150
        assert model.utxo_count(3) == 2
        assert model.n_funded == 1
        taken = model.withdraw(3, 5)
        assert len(taken) == 2
        assert model.n_funded == 0

    def test_pick_spender_empty_population(self):
        import random

        from repro.datasets.wallets import WalletModel

        model = WalletModel(5, random.Random(1))
        assert model.pick_spender() is None

    def test_bad_configs_rejected(self):
        import random

        from repro.datasets.wallets import WalletModel
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            WalletModel(1, random.Random(1))
        with pytest.raises(ConfigurationError):
            WalletModel(5, random.Random(1), partner_stickiness=2.0)
        with pytest.raises(ConfigurationError):
            WalletModel(5, random.Random(1), recency_bias=1.0)
