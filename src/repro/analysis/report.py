"""One-page textual report of a simulation result.

Collects the §V metrics (throughput, latency distribution, cross-shard
economics, queue balance) into a single printable summary. Used by the
CLI's ``simulate`` command and the examples; keeps presentation out of
the simulator itself.
"""

from __future__ import annotations

from repro.analysis.distribution import fraction_below, percentile
from repro.analysis.tables import format_table
from repro.analysis.timeseries import queue_extrema_series
from repro.simulator.engine import SimulationResult


def summarize_result(result: SimulationResult, title: str = "") -> str:
    """Render the headline metrics of one run."""
    rows: list[list[object]] = [
        ["transactions", f"{result.n_committed}/{result.n_issued}"],
        ["aborted", result.n_aborted],
        ["cross-shard", f"{result.cross_fraction:.1%}"],
        ["throughput", f"{result.throughput:.1f} tps"],
        ["sim duration", f"{result.duration:.1f} s"],
        ["drained", "yes" if result.drained else "no"],
    ]
    if result.latencies:
        rows.extend(
            [
                ["avg latency", f"{result.average_latency:.2f} s"],
                [
                    "p50/p95/p99 latency",
                    (
                        f"{percentile(result.latencies, 50):.1f} / "
                        f"{percentile(result.latencies, 95):.1f} / "
                        f"{percentile(result.latencies, 99):.1f} s"
                    ),
                ],
                ["max latency", f"{result.max_latency:.2f} s"],
                [
                    "confirmed < 10 s",
                    f"{fraction_below(result.latencies, 10.0):.1%}",
                ],
            ]
        )
    if result.bytes_same_shard and result.bytes_cross:
        rows.append(
            ["cross/same bandwidth", f"{result.bandwidth_ratio:.2f}x"]
        )
    if result.queue_samples:
        extrema = queue_extrema_series(
            result.queue_sample_times, result.queue_samples
        )
        peak = max(biggest for _, biggest, _ in extrema)
        rows.append(["peak queue", peak])
    rows.append(
        [
            "blocks per shard",
            "/".join(str(b) for b in result.blocks_per_shard),
        ]
    )
    heading = title or (
        f"{result.placer_name} @ {result.config.tx_rate:.0f} tps, "
        f"{result.config.n_shards} shards"
    )
    return format_table(["metric", "value"], rows, title=heading)


def compare_results(results: dict[str, SimulationResult]) -> str:
    """Side-by-side comparison table of several runs."""
    if not results:
        return ""
    headers = ["metric"] + list(results)
    metric_rows = [
        ("cross-shard", lambda r: f"{r.cross_fraction:.1%}"),
        ("throughput (tps)", lambda r: f"{r.throughput:.0f}"),
        ("avg latency (s)", lambda r: f"{r.average_latency:.1f}"),
        ("max latency (s)", lambda r: f"{r.max_latency:.1f}"),
        (
            "confirmed < 10 s",
            lambda r: f"{fraction_below(r.latencies, 10.0):.1%}",
        ),
        ("drained", lambda r: "yes" if r.drained else "no"),
    ]
    rows = [
        [name] + [extract(result) for result in results.values()]
        for name, extract in metric_rows
    ]
    return format_table(headers, rows, title="Comparison")
