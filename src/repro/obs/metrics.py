"""The counter/histogram bundle a serving process maintains.

One :class:`ServiceMetrics` lives in the single-process server, one in
every partition worker, and one (for coordinator-side counters) in the
sharded front-end. The bundle is deliberately a plain-attribute struct:
the hot path does ``metrics.record_batch(n, dt)`` - one histogram
record and two integer bumps - and everything else happens at scrape
or stats time.

Worker bundles travel to the coordinator as JSON dicts inside the
W_STATS reply; :func:`merge_metric_dicts` folds any number of them
into one service-level view whose histogram percentiles are exactly
the percentiles of the union of all recorded batches (the
:class:`~repro.obs.hist.LogHistogram` merge guarantee).
"""

from __future__ import annotations

from typing import Any

from repro.obs.drift import merge_drift_dicts
from repro.obs.hist import LogHistogram
from repro.obs.prom import Family

__all__ = [
    "ServiceMetrics",
    "merge_metric_dicts",
    "rss_kb",
    "service_families",
]

#: Plain additive counters carried by every bundle (wire dict keys).
COUNTER_FIELDS = (
    "batches",
    "placed",
    "retry_replies",
    "overload_replies",
    "error_replies",
    "respawns",
    "heartbeat_timeouts",
)


class ServiceMetrics:
    """Live serving metrics owned by one process."""

    __slots__ = (
        "batch_latency",
        "batches",
        "placed",
        "retry_replies",
        "overload_replies",
        "error_replies",
        "respawns",
        "heartbeat_timeouts",
    )

    def __init__(self, precision: int = 5) -> None:
        self.batch_latency = LogHistogram(precision)
        self.batches = 0
        self.placed = 0
        self.retry_replies = 0
        self.overload_replies = 0
        self.error_replies = 0
        self.respawns = 0
        self.heartbeat_timeouts = 0

    def record_batch(self, n_txs: int, seconds: float) -> None:
        """Record one placed batch (the dispatch hot-path call)."""
        self.batch_latency.record(seconds)
        self.batches += 1
        self.placed += n_txs

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe wire form (rides the W_STATS / stats replies)."""
        data: dict[str, Any] = {
            field: getattr(self, field) for field in COUNTER_FIELDS
        }
        data["batch_latency"] = self.batch_latency.snapshot()
        return data


def merge_metric_dicts(
    dicts: "list[dict[str, Any]]", precision: int = 5
) -> dict[str, Any]:
    """Fold per-partition metric dicts into one service-level dict.

    Counters sum exactly; histograms merge element-wise. The result has
    the same shape as :meth:`ServiceMetrics.as_dict`, so it can itself
    be merged again (associativity is what makes windowed roll-ups
    cheap).
    """
    merged: dict[str, Any] = {field: 0 for field in COUNTER_FIELDS}
    snapshots = []
    for data in dicts:
        if not data:
            continue
        for field in COUNTER_FIELDS:
            merged[field] += int(data.get(field, 0))
        snap = data.get("batch_latency")
        if snap is not None:
            snapshots.append(snap)
    merged["batch_latency"] = LogHistogram.merged(
        snapshots, precision=precision
    ).snapshot()
    return merged


_QUANTILES = (0.5, 0.99, 0.999)

#: Engine-stats fields exported as per-partition gauges (None skipped).
_ENGINE_GAUGES = (
    ("n_placed", "repro_engine_placed", "transactions placed"),
    ("live_vectors", "repro_live_vectors", "sparse T2S vectors in memory"),
    (
        "peak_live_vectors",
        "repro_peak_live_vectors",
        "high-water mark of live vectors",
    ),
    (
        "tracked_unspent",
        "repro_tracked_unspent",
        "transactions with unspent outputs in the validation index",
    ),
    ("epoch", "repro_engine_epoch", "truncation epochs completed"),
    (
        "horizon_start",
        "repro_horizon_start",
        "first txid retained by the horizon policy",
    ),
)

_METRIC_COUNTERS = (
    ("batches", "repro_batches_total", "micro-batches placed"),
    ("placed", "repro_placed_total", "transactions placed"),
    ("retry_replies", "repro_retry_replies_total", "retry replies sent"),
    (
        "overload_replies",
        "repro_overload_replies_total",
        "overload replies sent",
    ),
    ("error_replies", "repro_error_replies_total", "error replies sent"),
    (
        "respawns",
        "repro_worker_respawns_total",
        "worker processes respawned",
    ),
    (
        "heartbeat_timeouts",
        "repro_heartbeat_timeouts_total",
        "worker heartbeat timeouts",
    ),
)

_WAL_COUNTERS = (
    ("bytes_appended", "repro_wal_bytes_appended_total", "WAL bytes appended"),
    ("records_appended", "repro_wal_records_total", "WAL records appended"),
    ("fsyncs", "repro_wal_fsyncs_total", "WAL fsync calls"),
    ("resets", "repro_wal_resets_total", "WAL truncations at checkpoints"),
)

_DRIFT_GAUGES = (
    (
        "production_cross_rate",
        "repro_drift_production_cross_rate",
        "windowed cross-shard rate of production placements (sampled)",
    ),
    (
        "shadow_cross_rate",
        "repro_drift_shadow_cross_rate",
        "windowed cross-shard rate of the exact-path shadow choices",
    ),
    (
        "delta",
        "repro_drift_delta",
        "production minus shadow cross-shard rate (positive = worse)",
    ),
    (
        "disagreement_rate",
        "repro_drift_disagreement_rate",
        "fraction of sampled placements where the exact path disagrees",
    ),
    (
        "window_sampled",
        "repro_drift_window_sampled",
        "sampled transactions in the rolling window",
    ),
)

_DRIFT_COUNTERS = (
    (
        "sampled_txs_total",
        "repro_drift_sampled_txs_total",
        "transactions replayed through the exact path",
    ),
    (
        "breaches_total",
        "repro_drift_breaches_total",
        "window evaluations with delta above threshold",
    ),
    (
        "rebases_total",
        "repro_drift_rebases_total",
        "shadow restarts (grants, respawns, restores)",
    ),
)


def _drift_rates(data: dict[str, Any]) -> dict[str, Any]:
    """Fill derived rate fields for a raw per-partition drift dict."""
    if "production_cross_rate" in data:
        return data
    return merge_drift_dicts([data])


def service_families(
    info: dict[str, Any],
    partitions: "list[dict[str, Any]]",
    coordinator: "dict[str, Any] | None" = None,
) -> list[Family]:
    """Assemble the full scrape for one service.

    ``info`` labels the deployment (``spec``, ``mode``, ``workers``);
    ``partitions`` carries one dict per partition with optional
    ``engine`` (stats dict), ``metrics``, ``wal``, ``drift``, and
    ``rss_kb`` entries; ``coordinator`` carries front-end counters and
    lease/health gauges in sharded mode. Single-process servers pass
    one partition and no coordinator.
    """
    latency = Family(
        "repro_batch_latency_seconds",
        "histogram",
        "server-side place_batch latency per micro-batch",
    )
    quantiles = Family(
        "repro_batch_latency_quantile_seconds",
        "gauge",
        "precomputed latency quantiles (bucket precision, not octave)",
    )
    families: list[Family] = [
        Family(
            "repro_service_info",
            "gauge",
            "deployment identity (value is always 1)",
        ).add(1, **{k: str(v) for k, v in info.items()}),
        latency,
        quantiles,
    ]
    counter_families = {
        name: Family(name, "counter", help)
        for _, name, help in (
            _METRIC_COUNTERS + _WAL_COUNTERS + _DRIFT_COUNTERS
        )
    }
    gauge_families: dict[str, Family] = {}

    def gauge(name: str, help: str, value: float, **labels: Any) -> None:
        family = gauge_families.get(name)
        if family is None:
            family = gauge_families[name] = Family(name, "gauge", help)
        family.add(value, **labels)

    def counters(
        table: tuple, data: "dict[str, Any] | None", **labels: Any
    ) -> None:
        if not data:
            return
        for key, name, _help in table:
            value = data.get(key)
            if value is not None:
                counter_families[name].add(value, **labels)

    latency_dicts = []
    drift_dicts = []
    for entry in partitions:
        label = str(entry.get("partition", "0"))
        metrics = entry.get("metrics")
        if metrics:
            counters(_METRIC_COUNTERS, metrics, partition=label)
            snap = metrics.get("batch_latency")
            if snap is not None:
                latency_dicts.append(snap)
                hist = LogHistogram.from_snapshot(snap)
                latency.add_histogram(hist, partition=label)
                for q in _QUANTILES:
                    quantiles.add(
                        hist.percentile(q), partition=label, quantile=q
                    )
        engine = entry.get("engine")
        if engine:
            for key, name, help in _ENGINE_GAUGES:
                value = engine.get(key)
                if value is not None:
                    gauge(name, help, value, partition=label)
            if engine.get("released_vectors") is not None:
                gauge(
                    "repro_released_vectors",
                    "T2S vectors released by truncation sweeps",
                    engine["released_vectors"],
                    partition=label,
                )
            support = engine.get("support")
            if isinstance(support, dict):
                for key, value in sorted(support.items()):
                    if isinstance(value, (int, float)) and not isinstance(
                        value, bool
                    ):
                        gauge(
                            f"repro_support_{key}",
                            f"support-strategy stat {key}",
                            value,
                            partition=label,
                        )
        counters(_WAL_COUNTERS, entry.get("wal"), partition=label)
        drift = entry.get("drift")
        if drift:
            drift = _drift_rates(drift)
            drift_dicts.append(drift)
            for key, name, help in _DRIFT_GAUGES:
                gauge(name, help, drift.get(key, 0.0), partition=label)
            counters(_DRIFT_COUNTERS, drift, partition=label)
        if entry.get("rss_kb") is not None:
            gauge(
                "repro_rss_kilobytes",
                "resident set size",
                entry["rss_kb"],
                process=f"worker-{label}",
            )
    if len(latency_dicts) > 1:
        merged = LogHistogram.merged(latency_dicts)
        latency.add_histogram(merged, partition="all")
        for q in _QUANTILES:
            quantiles.add(merged.percentile(q), partition="all", quantile=q)
    if len(drift_dicts) > 1:
        merged_drift = merge_drift_dicts(drift_dicts)
        for key, name, help in _DRIFT_GAUGES:
            gauge(name, help, merged_drift.get(key, 0.0), partition="all")
    if coordinator is not None:
        counters(
            _METRIC_COUNTERS, coordinator.get("metrics"), partition="coordinator"
        )
        if coordinator.get("rss_kb") is not None:
            gauge(
                "repro_rss_kilobytes",
                "resident set size",
                coordinator["rss_kb"],
                process="coordinator",
            )
        for key, name, help in (
            ("granted", "repro_granted_partition", "partition holding the write lease (-1 none)"),
            ("cursor", "repro_lease_cursor", "global placement cursor"),
            ("degraded", "repro_degraded", "1 when the service refuses writes"),
            ("recovering", "repro_recovering_workers", "workers mid-respawn"),
        ):
            value = coordinator.get(key)
            if value is not None:
                gauge(name, help, value)
    families.extend(counter_families.values())
    families.extend(gauge_families.values())
    return families


def rss_kb() -> "int | None":
    """Resident set size of this process in kB (linux; None elsewhere).

    Reads ``/proc/self/status`` - no dependency and cheap enough to do
    per scrape; the soak harness gates growth of this number across a
    multi-million-transaction run.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None
