"""Stream chunking for service replay.

The placement service consumes one globally ordered transaction stream,
but a load test wants *many* clients hitting it concurrently. The
resolution: split the stream into contiguous chunks and deal them
round-robin to the simulated users. Each user submits its chunks in
order over its own connection; the server's reorder buffer re-merges
the interleaved arrivals into the global order. Every transaction is
sent exactly once, and chunk boundaries never split the dense-txid runs
the ``place`` op requires.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")


def chunk_stream(
    stream: Iterable[T], chunk_size: int
) -> Iterator[list[T]]:
    """Yield consecutive chunks of at most ``chunk_size`` items.

    Works on lazy iterables (a generator's ``stream()``) without
    materializing the whole stream - the serving benchmarks rely on
    this to keep generator-side memory flat over 1M+ transactions.
    """
    if chunk_size < 1:
        raise ConfigurationError(
            f"chunk_size must be >= 1, got {chunk_size}"
        )
    chunk: list[T] = []
    append = chunk.append
    for item in stream:
        append(item)
        if len(chunk) == chunk_size:
            yield chunk
            chunk = []
            append = chunk.append
    if chunk:
        yield chunk


def round_robin_chunks(
    stream: Sequence[T], n_users: int, chunk_size: int
) -> list[list[list[T]]]:
    """Deal the stream's chunks round-robin across ``n_users``.

    Returns one chunk list per user: user ``u`` gets chunks ``u``,
    ``u + n_users``, ``u + 2*n_users``, ... Users submitting their own
    lists in order collectively cover the stream exactly once, in an
    arrival order the server's sequencer can always re-merge (no chunk
    is withheld forever).
    """
    if n_users < 1:
        raise ConfigurationError(f"n_users must be >= 1, got {n_users}")
    chunks = list(chunk_stream(stream, chunk_size))
    return [chunks[user::n_users] for user in range(n_users)]
