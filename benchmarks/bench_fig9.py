"""Regenerates Fig. 9: maximum transaction latency.

Shape asserted: OptChain's worst-case latency at the top configuration
beats OmniLedger's (paper: 100.9 s vs 1309.5 s).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import fig9


def test_fig9(benchmark, scale):
    cells = run_once(benchmark, lambda: fig9.run(scale))
    print()
    print(fig9.as_table(cells))
    worst = fig9.worst_case(cells)
    assert worst["optchain"] <= worst["omniledger"]
    series = fig9.max_latency_at_max_shards(cells)
    for method, points in series.items():
        assert all(latency > 0 for _, latency in points), method
