"""Coordinator stats aggregation: merged histograms and counters across
worker processes, including across a mid-run respawn.

The contract under test is the one the scrape and ``repro stats`` rely
on: the coordinator's merged ``batch_latency`` must be *exactly* the
element-wise merge of the per-partition histograms (union percentiles),
and every counter must be the exact sum of the per-partition counters
plus the coordinator's own.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.datasets.synthetic import synthetic_stream
from repro.obs.hist import LogHistogram
from repro.obs.metrics import COUNTER_FIELDS
from repro.service.client import AsyncBinaryPlacementClient
from repro.service.coordinator import ShardedPlacementServer

N_SHARDS = 4
LEASE = 600
SPEC = {"method": "optchain", "n_shards": N_SHARDS, "epoch_length": 500}


@pytest.fixture(scope="module")
def stream():
    return synthetic_stream(3_600, seed=7)


def run_sharded(test_coro, n_workers=2, **kwargs):
    async def main():
        server = ShardedPlacementServer(
            dict(SPEC), n_workers, port=0, lease_length=LEASE, **kwargs
        )
        await server.start()
        try:
            await test_coro(server)
        finally:
            await server.stop()

    asyncio.run(main())


def assert_obs_consistent(obs, coordinator_metrics):
    """Merged view == exact fold of partitions + coordinator counters."""
    partitions = obs["partitions"]
    merged = obs["metrics"]
    sources = [part["metrics"] for part in partitions] + [
        coordinator_metrics
    ]
    for field in COUNTER_FIELDS:
        assert merged[field] == sum(
            source[field] for source in sources
        ), field
    merged_hist = LogHistogram.from_snapshot(merged["batch_latency"])
    expected = LogHistogram.merged(
        [source["batch_latency"] for source in sources]
    )
    assert merged_hist.count == expected.count
    assert merged_hist.counts == expected.counts
    for q in (0.5, 0.9, 0.99, 0.999):
        assert merged_hist.percentile(q) == expected.percentile(q)


class TestMergeAcrossWorkers:
    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_merged_equals_fold_of_partitions(self, stream, n_workers):
        async def scenario(server):
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            for offset in range(0, len(stream), 200):
                await client.place(stream[offset : offset + 200])
            reply = await client.request({"op": "stats"})
            obs = reply["obs"]
            assert len(obs["partitions"]) == n_workers
            assert obs["metrics"]["placed"] == len(stream)
            assert_obs_consistent(obs, server.metrics.as_dict())
            if n_workers > 1:
                # Leases rotated, so more than one partition recorded.
                active = [
                    part
                    for part in obs["partitions"]
                    if part["metrics"]["batches"] > 0
                ]
                assert len(active) > 1
            await client.close()

        run_sharded(scenario, n_workers=n_workers)

    def test_counters_sum_not_average(self, stream):
        """Regression guard: two equally loaded partitions must report
        the sum, not either side or a mean."""

        async def scenario(server):
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            # Exactly two leases: one full lease per partition.
            await client.place(stream[: 2 * LEASE])
            reply = await client.request({"op": "stats"})
            obs = reply["obs"]
            per_part = [
                part["metrics"]["placed"] for part in obs["partitions"]
            ]
            assert sorted(per_part) == [LEASE, LEASE]
            assert obs["metrics"]["placed"] == 2 * LEASE
            await client.close()

        run_sharded(scenario, n_workers=2)


class TestMergeAcrossRespawn:
    def test_respawned_worker_rejoins_the_merge(self, stream, tmp_path):
        """Kill an idle worker mid-run: the respawn restores it from the
        checkpoint+journal, the respawn counter increments, and the
        post-respawn merged stats are again an exact fold (the dead
        window simply contributes the replayed worker's fresh bundle).
        """

        async def scenario(server):
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            for offset in range(0, 1_800, 200):
                await client.place(stream[offset : offset + 200])
            await client.checkpoint()

            granted = (await client.ping())["granted"]
            victim = server._workers[1 - granted]
            old_pid = victim.process.pid
            victim.process.kill()
            for _ in range(300):
                if (
                    victim.alive
                    and victim.process.pid != old_pid
                    and (await client.ping())["degraded"] is None
                ):
                    break
                await asyncio.sleep(0.1)
            else:
                raise AssertionError("worker never respawned")

            for offset in range(1_800, len(stream), 200):
                await client.place(stream[offset : offset + 200])
            reply = await client.request({"op": "stats"})
            obs = reply["obs"]
            assert reply["stats"]["n_placed"] == len(stream)
            assert obs["metrics"]["respawns"] >= 1
            assert len(obs["partitions"]) == 2
            # Every partition is live again and reporting a bundle.
            assert all(
                "metrics" in part and not part.get("dead")
                for part in obs["partitions"]
            )
            assert_obs_consistent(obs, server.metrics.as_dict())
            await client.close()

        run_sharded(
            scenario,
            n_workers=2,
            checkpoint_path=str(tmp_path / "svc.ckpt"),
        )

    def test_dead_worker_reported_not_dropped(self, stream):
        """While a worker is down (no checkpoint -> degraded), the stats
        op must still answer, flagging the dead partition."""

        async def scenario(server):
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            await client.place(stream[:1_500])
            server._workers[1].process.kill()
            for _ in range(100):
                if (await client.ping())["degraded"]:
                    break
                await asyncio.sleep(0.1)
            reply = await client.request({"op": "stats"})
            flags = {
                part["partition_id"]: part.get("dead", False)
                for part in reply["stats"]["partitions"]
            }
            assert flags[1] is True
            assert flags[0] is False
            # Merged obs folds the survivors only.
            assert reply["obs"]["metrics"]["placed"] <= 1_500
            await client.close()

        run_sharded(scenario, n_workers=2)
