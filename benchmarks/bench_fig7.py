"""Regenerates Fig. 7: queue-size max/min ratio over time.

Shape asserted: OptChain's median imbalance ratio is no worse than
Metis's and Greedy's (the paper's temporal-balance result).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import fig7


def test_fig7(benchmark, scale):
    series = run_once(benchmark, lambda: fig7.run(scale))
    print()
    print(fig7.as_table(series))
    stats = {
        method: fig7.summarize(points) for method, points in series.items()
    }
    assert (
        stats["optchain"]["median_ratio"]
        <= stats["metis"]["median_ratio"] * 1.05
    )
    assert (
        stats["optchain"]["fraction_idle_shard"]
        <= stats["metis"]["fraction_idle_shard"] + 0.05
    )
