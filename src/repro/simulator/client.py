"""Transaction issuers (the simulated client/wallet population).

Clients replay a transaction stream into the system at a configured rate
(the paper's "transactions rate" axis). At each issue instant the client
runs the placement strategy - user-side, instantaneous - and hands the
transaction to the atomic-commit protocol. Arrival spacing is
deterministic (``1/rate``) by default, Poisson optionally.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.placement import PlacementStrategy
from repro.errors import ConfigurationError
from repro.rng import make_rng
from repro.simulator.config import SimulationConfig
from repro.simulator.events import EventQueue
from repro.simulator.metrics import MetricsCollector
from repro.simulator.protocol import AtomicCommitProtocol
from repro.utxo.transaction import Transaction


class TransactionIssuer:
    """Feeds the stream through the placer into the protocol."""

    def __init__(
        self,
        stream: Sequence[Transaction],
        placer: PlacementStrategy,
        config: SimulationConfig,
        events: EventQueue,
        protocol: AtomicCommitProtocol,
        metrics: MetricsCollector,
    ) -> None:
        if placer.n_shards != config.n_shards:
            raise ConfigurationError(
                f"placer has {placer.n_shards} shards, simulation has "
                f"{config.n_shards}"
            )
        self._stream = stream
        self._placer = placer
        self._config = config
        self._events = events
        self._protocol = protocol
        self._metrics = metrics
        self._rng = make_rng(config.seed)
        self._cursor = 0

    def start(self) -> None:
        """Schedule the first issue event."""
        if self._stream:
            self._events.schedule(0.0, self._issue_next)

    @property
    def n_issued(self) -> int:
        """Transactions issued so far."""
        return self._cursor

    def _issue_next(self) -> None:
        tx = self._stream[self._cursor]
        self._cursor += 1
        now = self._events.now
        # Placement is a user-side computation on already-known data; the
        # paper treats it as free relative to network and consensus time.
        shard = self._placer.place(tx)
        input_shards = self._placer.input_shards(tx)
        inputs_by_shard = None
        if self._protocol.validate_ledger:
            inputs_by_shard = {}
            for outpoint in tx.inputs:
                owner = self._placer.shard_of(outpoint.txid)
                inputs_by_shard.setdefault(owner, []).append(outpoint)
        self._metrics.record_issue(tx.txid, now)
        self._protocol.submit(tx, shard, input_shards, inputs_by_shard)
        if self._cursor < len(self._stream):
            self._events.schedule(self._next_gap(), self._issue_next)

    def _next_gap(self) -> float:
        if self._config.arrivals == "poisson":
            return self._rng.expovariate(self._config.tx_rate)
        return 1.0 / self._config.tx_rate
