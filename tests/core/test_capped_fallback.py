"""The capped baselines' coinbase/empty-support fast path.

ROADMAP item: the dense fallback in ``_best_allowed_sparse`` built an
O(n_shards) score list per coinbase, measurable during bootstrap bursts
at 256+ shards. The fix answers the empty-support case in O(1) (random
/ first tie-breaks) or O(log k) (lightest) when every shard is under
the cap, and must stay *byte-identical* - same placements, same RNG
consumption - to the dense enumeration it replaces, which the seed
implementations still use.
"""

from __future__ import annotations

import pytest

from repro.core._seed_reference import SeedGreedyPlacer, SeedT2SOnlyPlacer
from repro.core.baselines import GreedyPlacer, T2SOnlyPlacer
from repro.datasets.synthetic import GeneratorConfig, synthetic_stream

N_SHARDS = 256


@pytest.fixture(scope="module")
def burst_stream():
    """A coinbase-heavy stream: long bootstrap era plus a tight
    coinbase cadence keeps the empty-support path hot throughout."""
    config = GeneratorConfig(
        n_wallets=300,
        coinbase_interval=5,
        bootstrap_coinbase=400,
    )
    return synthetic_stream(3_000, seed=99, config=config)


@pytest.mark.parametrize("tie_break", ["random", "first", "lightest"])
@pytest.mark.parametrize(
    "fast_cls,seed_cls",
    [(GreedyPlacer, SeedGreedyPlacer), (T2SOnlyPlacer, SeedT2SOnlyPlacer)],
)
def test_256_shard_coinbase_burst_matches_seed(
    burst_stream, fast_cls, seed_cls, tie_break
):
    fast = fast_cls(N_SHARDS, tie_break=tie_break, seed=5)
    seed = seed_cls(N_SHARDS, tie_break=tie_break, seed=5)
    assert fast.place_stream(burst_stream) == seed.place_stream(
        burst_stream
    )
    # Same RNG consumption, not just same placements: the generators
    # must sit at the same point of the Mersenne sequence.
    assert fast._rng.random() == seed._rng.random()


@pytest.mark.parametrize("tie_break", ["random", "first", "lightest"])
def test_known_total_cap_still_matches_seed(burst_stream, tie_break):
    """With expected_total set, tiny caps force the capped fallback -
    the fast path must detect the at-cap shard and fall back densely."""
    total = len(burst_stream)
    fast = GreedyPlacer(
        8, expected_total=total, tie_break=tie_break, seed=2
    )
    seed = SeedGreedyPlacer(
        8, expected_total=total, tie_break=tie_break, seed=2
    )
    assert fast.place_stream(burst_stream) == seed.place_stream(
        burst_stream
    )
    assert fast._rng.random() == seed._rng.random()


def test_single_shard_consumes_no_rng(burst_stream):
    """k=1: the dense tied list has one element, so the seed never
    touches the RNG - the fast path must not either."""
    fast = GreedyPlacer(1, tie_break="random", seed=3)
    seed = SeedGreedyPlacer(1, tie_break="random", seed=3)
    fast.place_stream(burst_stream[:500])
    seed.place_stream(burst_stream[:500])
    assert fast._rng.random() == seed._rng.random()


def test_empty_support_is_sublinear_in_shards(burst_stream):
    """The structural claim behind the fix: a coinbase placement no
    longer enumerates shards. Instrument ``_best_allowed`` (the dense
    fallback) and count how often a pure-coinbase prefix reaches it."""
    placer = GreedyPlacer(N_SHARDS, tie_break="random", seed=7)
    calls = 0
    original = placer._best_allowed

    def counting(scores):
        nonlocal calls
        calls += 1
        return original(scores)

    placer._best_allowed = counting
    coinbase_prefix = burst_stream[:400]
    assert all(tx.is_coinbase for tx in coinbase_prefix)
    placer.place_stream(coinbase_prefix)
    assert calls == 0, (
        f"{calls} coinbase placements fell back to the dense scan"
    )
